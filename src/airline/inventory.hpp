// Seat inventory with temporary holds.
//
// This is the feature Seat Spinning exploits (paper §IV-A): selecting seats
// reserves them for a hold window (30 minutes to several hours depending on
// the domain) before payment is required. Holds that expire release their
// seats; attackers re-hold immediately after expiry to keep stock depleted.
//
// Invariants (enforced and property-tested):
//   held(f) + sold(f) <= capacity(f)            for every flight f
//   a reservation is in exactly one state; transitions are
//     Held -> {Ticketed, Cancelled, Expired}, terminal states never change
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "airline/flight.hpp"
#include "airline/passenger.hpp"
#include "airline/pnr.hpp"
#include "fingerprint/fingerprint.hpp"
#include "net/ip.hpp"
#include "sim/time.hpp"
#include "util/result.hpp"
#include "web/request.hpp"

namespace fraudsim::airline {

enum class ReservationState : std::uint8_t { Held, Ticketed, Cancelled, Expired };

[[nodiscard]] const char* to_string(ReservationState s);

struct Reservation {
  std::string pnr;
  FlightId flight;
  std::vector<Passenger> passengers;
  sim::SimTime created = 0;
  sim::SimTime hold_expiry = 0;
  ReservationState state = ReservationState::Held;
  sim::SimTime state_changed = 0;
  // Request provenance (what server telemetry would record).
  net::IpV4 source_ip;
  fp::FpHash source_fp;
  web::ActorId actor;  // ground truth

  [[nodiscard]] int nip() const { return static_cast<int>(passengers.size()); }
};

struct InventoryConfig {
  // How long a hold reserves seats before expiring unpaid.
  sim::SimDuration hold_duration = sim::minutes(30);
  // Maximum passengers per reservation (the NiP cap). 0 = no cap. Mutable at
  // runtime — imposing this cap mid-attack is the §IV-A mitigation.
  int max_nip = 9;
};

struct HoldRejection {
  enum class Reason { NoAvailability, NipCapExceeded, UnknownFlight, EmptyParty };
  Reason reason;
  std::string message;
};

class InventoryManager {
 public:
  InventoryManager(InventoryConfig config, sim::Rng pnr_rng);

  FlightId add_flight(std::string airline, int number, int capacity, sim::SimTime departure);
  [[nodiscard]] const Flight* flight(FlightId id) const;
  [[nodiscard]] std::vector<FlightId> flights() const;

  // Attempts to hold seats. On success returns the PNR.
  struct HoldOutcome {
    bool ok = false;
    std::string pnr;                      // set when ok
    std::optional<HoldRejection> rejection;  // set when !ok
  };
  // `ttl_override` replaces the configured hold_duration for this hold only
  // (brownout shortens hold TTLs while the platform is under load).
  HoldOutcome hold(sim::SimTime now, FlightId flight, std::vector<Passenger> passengers,
                   web::ActorId actor, net::IpV4 ip = {}, fp::FpHash fp = {},
                   std::optional<sim::SimDuration> ttl_override = {});

  // Expires all due holds; returns how many expired. Callers drive this from
  // the event loop (the platform schedules expiry sweeps).
  std::size_t expire_due(sim::SimTime now);

  // Held -> Ticketed (payment completed).
  util::Status ticket(sim::SimTime now, const std::string& pnr);
  // Held -> Cancelled (user abandoned explicitly).
  util::Status cancel(sim::SimTime now, const std::string& pnr);

  [[nodiscard]] int held_seats(FlightId flight) const;
  [[nodiscard]] int sold_seats(FlightId flight) const;
  [[nodiscard]] int available_seats(FlightId flight) const;

  [[nodiscard]] const Reservation* find(const std::string& pnr) const;
  [[nodiscard]] const std::vector<Reservation>& reservations() const { return reservations_; }
  [[nodiscard]] std::vector<const Reservation*> reservations_for(FlightId flight) const;

  // Runtime mitigation knobs.
  void set_max_nip(int max_nip) { config_.max_nip = max_nip; }
  [[nodiscard]] int max_nip() const { return config_.max_nip; }
  void set_hold_duration(sim::SimDuration d) { config_.hold_duration = d; }
  [[nodiscard]] sim::SimDuration hold_duration() const { return config_.hold_duration; }

  struct Stats {
    std::uint64_t holds_created = 0;
    std::uint64_t holds_rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t ticketed = 0;
    std::uint64_t cancelled = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Checkpoint support: serialises config knobs, the PNR stream, flights,
  // reservations and tallies; derived indexes (by_pnr_, expiry heap, per-
  // flight counters) are rebuilt on restore.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

  // TESTING ONLY: creates a hold that bypasses the availability check — the
  // oversell bug the seat-conservation invariant exists to catch. Returns the
  // PNR. Never call from production paths.
  std::string debug_force_hold(sim::SimTime now, FlightId flight,
                               std::vector<Passenger> passengers, web::ActorId actor);

 private:
  Reservation* find_mutable(const std::string& pnr);

  InventoryConfig config_;
  PnrGenerator pnr_gen_;
  std::vector<Flight> flights_;
  std::vector<Reservation> reservations_;
  std::unordered_map<std::string, std::size_t> by_pnr_;
  // Min-heap of (hold_expiry, reservation index) so expiry sweeps touch only
  // due holds instead of scanning all reservations.
  struct ExpiryEntry {
    sim::SimTime expiry;
    std::size_t index;
    bool operator>(const ExpiryEntry& o) const { return expiry > o.expiry; }
  };
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, std::greater<ExpiryEntry>>
      expiry_heap_;
  // Per-flight seat counters (kept incrementally; validated in tests).
  std::unordered_map<FlightId, int> held_;
  std::unordered_map<FlightId, int> sold_;
  Stats stats_;
};

}  // namespace fraudsim::airline
