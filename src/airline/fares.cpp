#include "airline/fares.hpp"

#include <algorithm>
#include <cmath>

namespace fraudsim::airline {

FareEngine::FareEngine(FareConfig config) : config_(config) {}

double FareEngine::load_multiplier(double load_factor) const {
  load_factor = std::clamp(load_factor, 0.0, 1.0);
  return config_.load_floor +
         (config_.load_ceiling - config_.load_floor) *
             std::pow(load_factor, config_.load_exponent);
}

double FareEngine::distress_multiplier(double load_factor,
                                       sim::SimDuration to_departure) const {
  if (to_departure >= config_.distress_window || to_departure < 0) return 1.0;
  load_factor = std::clamp(load_factor, 0.0, 1.0);
  if (load_factor >= config_.distress_load) return 1.0;
  // How empty the flight is, scaled by how close departure looms.
  const double emptiness = (config_.distress_load - load_factor) / config_.distress_load;
  const double urgency = 1.0 - static_cast<double>(to_departure) /
                                   static_cast<double>(config_.distress_window);
  return 1.0 - config_.max_discount * emptiness * urgency;
}

util::Money FareEngine::quote(const Flight& flight, int held, int sold,
                              sim::SimTime now) const {
  const double capacity = std::max(1, flight.capacity);
  const double load = (static_cast<double>(held) + static_cast<double>(sold)) / capacity;
  const auto to_departure = flight.departure - now;
  const double multiplier = load_multiplier(load) * distress_multiplier(load, to_departure);
  return config_.base_fare * multiplier;
}

}  // namespace fraudsim::airline
