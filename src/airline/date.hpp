// Calendar dates (birthdates, not simulation time).
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"

namespace fraudsim::airline {

struct Date {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  [[nodiscard]] std::string str() const;  // ISO "YYYY-MM-DD"

  friend bool operator==(const Date& a, const Date& b) {
    return a.year == b.year && a.month == b.month && a.day == b.day;
  }
  friend bool operator!=(const Date& a, const Date& b) { return !(a == b); }
  friend bool operator<(const Date& a, const Date& b) {
    if (a.year != b.year) return a.year < b.year;
    if (a.month != b.month) return a.month < b.month;
    return a.day < b.day;
  }
};

[[nodiscard]] int days_in_month(int year, int month);
[[nodiscard]] bool is_valid_date(const Date& d);

// A uniformly random valid date with year in [year_lo, year_hi].
[[nodiscard]] Date random_date(sim::Rng& rng, int year_lo, int year_hi);

// A plausible adult birthdate (ages roughly 18-75 relative to 2024).
[[nodiscard]] Date random_birthdate(sim::Rng& rng);

}  // namespace fraudsim::airline
