#include "airline/passenger.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace fraudsim::airline {

std::string Passenger::name_key() const {
  return util::to_lower(first_name) + "|" + util::to_lower(surname);
}

std::string Passenger::identity_key() const { return name_key() + "|" + birthdate.str(); }

void save_passenger(util::ByteWriter& out, const Passenger& p) {
  out.str(p.first_name);
  out.str(p.surname);
  out.i64(p.birthdate.year);
  out.i64(p.birthdate.month);
  out.i64(p.birthdate.day);
  out.str(p.email);
}

Passenger load_passenger(util::ByteReader& in) {
  Passenger p;
  p.first_name = in.str();
  p.surname = in.str();
  p.birthdate.year = static_cast<int>(in.i64());
  p.birthdate.month = static_cast<int>(in.i64());
  p.birthdate.day = static_cast<int>(in.i64());
  p.email = in.str();
  return p;
}

std::string party_key(const std::vector<Passenger>& party) {
  std::vector<std::string> keys;
  keys.reserve(party.size());
  for (const auto& p : party) keys.push_back(p.name_key());
  std::sort(keys.begin(), keys.end());
  return util::join(keys, "+");
}

}  // namespace fraudsim::airline
