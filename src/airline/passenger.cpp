#include "airline/passenger.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace fraudsim::airline {

std::string Passenger::name_key() const {
  return util::to_lower(first_name) + "|" + util::to_lower(surname);
}

std::string Passenger::identity_key() const { return name_key() + "|" + birthdate.str(); }

std::string party_key(const std::vector<Passenger>& party) {
  std::vector<std::string> keys;
  keys.reserve(party.size());
  for (const auto& p : party) keys.push_back(p.name_key());
  std::sort(keys.begin(), keys.end());
  return util::join(keys, "+");
}

}  // namespace fraudsim::airline
