#include "airline/pnr.hpp"

namespace fraudsim::airline {

namespace {
constexpr char kAlpha[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
constexpr char kAlnum[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ23456789";  // no 0/1 (GDS-style)
}  // namespace

PnrGenerator::PnrGenerator(sim::Rng rng) : rng_(std::move(rng)) {}

std::string PnrGenerator::next() {
  for (;;) {
    std::string pnr(6, 'A');
    pnr[0] = kAlpha[static_cast<std::size_t>(rng_.uniform_int(0, 25))];
    for (std::size_t i = 1; i < 6; ++i) {
      pnr[i] = kAlnum[static_cast<std::size_t>(rng_.uniform_int(0, 33))];
    }
    if (issued_.insert(pnr).second) return pnr;
  }
}

void PnrGenerator::checkpoint(util::ByteWriter& out) const {
  rng_.checkpoint(out);
  out.u64(issued_.size());
  for (const auto& pnr : issued_) out.str(pnr);
}

void PnrGenerator::restore(util::ByteReader& in) {
  rng_.restore(in);
  const auto n = in.u64();
  issued_.clear();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) issued_.insert(in.str());
}

}  // namespace fraudsim::airline
