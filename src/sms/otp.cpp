#include "sms/otp.hpp"

namespace fraudsim::sms {

OtpService::OtpService(SmsGateway& gateway, sim::Rng rng, sim::SimDuration validity,
                       obs::MetricsRegistry* metrics)
    : gateway_(gateway),
      rng_(std::move(rng)),
      validity_(validity),
      deliver_fault_(fault::FaultRegistry::global().point("otp.deliver")) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  requests_ = metrics->counter("otp.requests");
  verifications_ = metrics->counter("otp.verifications");
  delivery_faults_ = metrics->counter("otp.delivery_faults");
}

std::string OtpService::request(sim::SimTime now, const std::string& account, PhoneNumber number,
                                web::ActorId actor, overload::Deadline deadline) {
  const std::string code = rng_.random_digits(6);
  pending_[account] = Pending{code, now + validity_};
  requests_.inc();
  if (deliver_fault_.should_fail(now)) {
    // Code registered but the SMS never reaches the gateway: the caller
    // (holding the returned code) can still "know" it, but a simulated user
    // who relies on the text never sees it.
    delivery_faults_.inc();
    return code;
  }
  gateway_.send(now, std::move(number), SmsType::Otp, actor, {}, deadline);
  return code;
}

bool OtpService::verify(sim::SimTime now, const std::string& account, const std::string& code) {
  const auto it = pending_.find(account);
  if (it == pending_.end()) return false;
  if (now > it->second.expires) {
    pending_.erase(it);
    return false;
  }
  if (it->second.code != code) return false;
  pending_.erase(it);
  verifications_.inc();
  return true;
}

void OtpService::checkpoint(util::ByteWriter& out) const {
  rng_.checkpoint(out);
  out.i64(validity_);
  out.u64(pending_.size());
  for (const auto& [account, p] : pending_) {
    out.str(account);
    out.str(p.code);
    out.i64(p.expires);
  }
}

void OtpService::restore(util::ByteReader& in) {
  rng_.restore(in);
  validity_ = in.i64();
  const auto n = in.u64();
  pending_.clear();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    const std::string account = in.str();
    Pending p;
    p.code = in.str();
    p.expires = in.i64();
    pending_[account] = std::move(p);
  }
}

}  // namespace fraudsim::sms
