#include "sms/otp.hpp"

namespace fraudsim::sms {

OtpService::OtpService(SmsGateway& gateway, sim::Rng rng, sim::SimDuration validity)
    : gateway_(gateway),
      rng_(std::move(rng)),
      validity_(validity),
      deliver_fault_(fault::FaultRegistry::global().point("otp.deliver")) {}

std::string OtpService::request(sim::SimTime now, const std::string& account, PhoneNumber number,
                                web::ActorId actor, overload::Deadline deadline) {
  const std::string code = rng_.random_digits(6);
  pending_[account] = Pending{code, now + validity_};
  ++requests_;
  if (deliver_fault_.should_fail(now)) {
    // Code registered but the SMS never reaches the gateway: the caller
    // (holding the returned code) can still "know" it, but a simulated user
    // who relies on the text never sees it.
    ++delivery_faults_;
    return code;
  }
  gateway_.send(now, std::move(number), SmsType::Otp, actor, {}, deadline);
  return code;
}

bool OtpService::verify(sim::SimTime now, const std::string& account, const std::string& code) {
  const auto it = pending_.find(account);
  if (it == pending_.end()) return false;
  if (now > it->second.expires) {
    pending_.erase(it);
    return false;
  }
  if (it->second.code != code) return false;
  pending_.erase(it);
  ++verifications_;
  return true;
}

}  // namespace fraudsim::sms
