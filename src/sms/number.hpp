// Phone numbers with country affiliation.
#pragma once

#include <string>

#include "net/geo.hpp"
#include "sim/rng.hpp"

namespace fraudsim::sms {

struct PhoneNumber {
  net::CountryCode country;
  std::string subscriber;  // national significant number (digits)

  [[nodiscard]] std::string str() const;  // "+<cc-hash> <subscriber>"

  friend bool operator==(const PhoneNumber& a, const PhoneNumber& b) {
    return a.country == b.country && a.subscriber == b.subscriber;
  }
  friend bool operator<(const PhoneNumber& a, const PhoneNumber& b) {
    if (a.country != b.country) return a.country < b.country;
    return a.subscriber < b.subscriber;
  }
};

// Deterministically random subscriber numbers in a country. SMS-pumping rings
// hold *lists* of numbers per country (paper §II-B), so the generator can
// also pre-build a fixed pool to cycle through.
class NumberGenerator {
 public:
  explicit NumberGenerator(sim::Rng rng);

  [[nodiscard]] PhoneNumber random_number(net::CountryCode country);
  [[nodiscard]] std::vector<PhoneNumber> build_pool(net::CountryCode country, std::size_t size);

 private:
  sim::Rng rng_;
};

}  // namespace fraudsim::sms
