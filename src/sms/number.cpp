#include "sms/number.hpp"

namespace fraudsim::sms {

std::string PhoneNumber::str() const { return "+" + country.str() + "-" + subscriber; }

NumberGenerator::NumberGenerator(sim::Rng rng) : rng_(std::move(rng)) {}

PhoneNumber NumberGenerator::random_number(net::CountryCode country) {
  return PhoneNumber{country, rng_.random_digits(9)};
}

std::vector<PhoneNumber> NumberGenerator::build_pool(net::CountryCode country, std::size_t size) {
  std::vector<PhoneNumber> pool;
  pool.reserve(size);
  for (std::size_t i = 0; i < size; ++i) pool.push_back(random_number(country));
  return pool;
}

}  // namespace fraudsim::sms
