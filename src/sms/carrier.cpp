#include "sms/carrier.hpp"

namespace fraudsim::sms {

CarrierNetwork::CarrierNetwork(TariffTable tariffs, CarrierPolicy policy)
    : tariffs_(std::move(tariffs)), policy_(policy) {}

CarrierNetwork::Settlement CarrierNetwork::settle(net::CountryCode destination,
                                                  bool flagged) const {
  const Tariff& t = tariffs_.get(destination);
  Settlement s;
  s.app_cost = t.send_cost;
  if (flagged && policy_.withhold_flagged_compensation) {
    // Primary operator withholds the termination fee: the abuse earns nothing
    // downstream (the app still paid to inject the message).
    s.carrier_revenue = util::Money{};
    s.attacker_revenue = util::Money{};
    return s;
  }
  s.attacker_revenue = t.termination_fee * t.fraud_revenue_share;
  s.carrier_revenue = t.termination_fee - s.attacker_revenue;
  return s;
}

bool CarrierNetwork::fraud_carrier_admitted(double u) const {
  return u >= policy_.secondary_validation_strictness;
}

}  // namespace fraudsim::sms
