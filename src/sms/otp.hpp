// OTP service on top of the SMS gateway.
//
// The "easily accessible" SMS surface of §IV-C: any login attempt can trigger
// an OTP send. Verification state is tracked so the workload can complete
// legitimate logins and so pumping attempts show as never-verified sends.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sms/gateway.hpp"

namespace fraudsim::sms {

class OtpService {
 public:
  OtpService(SmsGateway& gateway, sim::Rng rng, sim::SimDuration validity = sim::minutes(10));

  // Sends an OTP to `number` for the given account key. Returns the code
  // (callers simulating a legitimate user pass it back to verify()).
  std::string request(sim::SimTime now, const std::string& account, PhoneNumber number,
                      web::ActorId actor);

  // True and consumes the code if it matches and hasn't expired.
  bool verify(sim::SimTime now, const std::string& account, const std::string& code);

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t verifications() const { return verifications_; }
  // Sends never followed by a successful verification — in aggregate, a
  // pumping signal.
  [[nodiscard]] std::uint64_t unverified() const { return requests_ - verifications_; }

 private:
  struct Pending {
    std::string code;
    sim::SimTime expires;
  };
  SmsGateway& gateway_;
  sim::Rng rng_;
  sim::SimDuration validity_;
  std::unordered_map<std::string, Pending> pending_;
  std::uint64_t requests_ = 0;
  std::uint64_t verifications_ = 0;
};

}  // namespace fraudsim::sms
