// OTP service on top of the SMS gateway.
//
// The "easily accessible" SMS surface of §IV-C: any login attempt can trigger
// an OTP send. Verification state is tracked so the workload can complete
// legitimate logins and so pumping attempts show as never-verified sends.
//
// The "otp.deliver" fault point models the message getting lost between code
// generation and the gateway (serialization, template rendering, handoff):
// the code is registered but the SMS never leaves — the user waits for a
// text that never comes, the login fails, and delivery_faults() counts the
// harm.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/fault/fault.hpp"
#include "sms/gateway.hpp"

namespace fraudsim::sms {

class OtpService {
 public:
  // `metrics` is the platform registry ("otp.*" series); when null the
  // service owns a private registry so standalone tests see isolated counts.
  OtpService(SmsGateway& gateway, sim::Rng rng, sim::SimDuration validity = sim::minutes(10),
             obs::MetricsRegistry* metrics = nullptr);

  // Sends an OTP to `number` for the given account key. Returns the code
  // (callers simulating a legitimate user pass it back to verify()).
  // The deadline budget (attached by overload admission; unbounded by
  // default) travels into the gateway's retry queue.
  std::string request(sim::SimTime now, const std::string& account, PhoneNumber number,
                      web::ActorId actor, overload::Deadline deadline = {});

  // True and consumes the code if it matches and hasn't expired.
  bool verify(sim::SimTime now, const std::string& account, const std::string& code);

  [[nodiscard]] std::uint64_t requests() const { return requests_.value(); }
  [[nodiscard]] std::uint64_t verifications() const { return verifications_.value(); }
  // Sends never followed by a successful verification — in aggregate, a
  // pumping signal.
  [[nodiscard]] std::uint64_t unverified() const { return requests_.value() - verifications_.value(); }
  // Requests whose SMS was lost to an injected "otp.deliver" fault.
  [[nodiscard]] std::uint64_t delivery_faults() const { return delivery_faults_.value(); }

  // Checkpoint support: pending codes + the code-generation stream.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  struct Pending {
    std::string code;
    sim::SimTime expires;
  };
  SmsGateway& gateway_;
  sim::Rng rng_;
  sim::SimDuration validity_;
  fault::FaultPoint& deliver_fault_;
  std::unordered_map<std::string, Pending> pending_;
  // "otp.*" counter handles; cells live in `metrics` (injected or owned).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter requests_;
  obs::Counter verifications_;
  obs::Counter delivery_faults_;
};

}  // namespace fraudsim::sms
