// SMS gateway: the application's outbound messaging service.
//
// Tracks every sent message with cost accounting and per-country volume
// series (the inputs to Table I), and enforces the contracted quota with the
// primary operator — when pumping exhausts the quota, legitimate OTPs start
// failing, the indirect harm §II-B describes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analytics/histogram.hpp"
#include "analytics/timeseries.hpp"
#include "sms/carrier.hpp"
#include "sms/number.hpp"
#include "sim/time.hpp"
#include "util/money.hpp"
#include "web/request.hpp"

namespace fraudsim::sms {

enum class SmsType : std::uint8_t { Otp, BoardingPass, Notification };

[[nodiscard]] const char* to_string(SmsType t);

struct SmsRecord {
  sim::SimTime time = 0;
  PhoneNumber destination;
  SmsType type = SmsType::Notification;
  web::ActorId actor;                     // ground truth
  std::optional<std::string> booking_ref; // for boarding-pass messages
  bool delivered = false;                 // false if quota-rejected
  util::Money app_cost;
  util::Money attacker_revenue;
};

struct GatewayConfig {
  // Messages per rolling day contracted with the primary operator;
  // 0 = unlimited.
  std::uint64_t daily_quota = 0;
  // Settlement-time abuse flagging is applied later by the economics layer;
  // at send time nothing is flagged.
};

class SmsGateway {
 public:
  SmsGateway(const CarrierNetwork& network, GatewayConfig config);

  // Sends an SMS at `now`. Returns the stored record (delivered=false when
  // the daily quota is exhausted).
  const SmsRecord& send(sim::SimTime now, PhoneNumber destination, SmsType type,
                        web::ActorId actor, std::optional<std::string> booking_ref = {});

  [[nodiscard]] const std::vector<SmsRecord>& log() const { return log_; }
  [[nodiscard]] std::uint64_t sent_count() const { return log_.size(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t rejected_count() const { return log_.size() - delivered_; }
  [[nodiscard]] util::Money total_app_cost() const { return total_app_cost_; }

  // Delivered volumes per destination country within [from, to).
  [[nodiscard]] analytics::CategoricalHistogram<net::CountryCode> volume_by_country(
      sim::SimTime from, sim::SimTime to, std::optional<SmsType> type = {}) const;

  // Delivered volume per day (all countries).
  [[nodiscard]] const analytics::TimeSeries& daily_series() const { return daily_; }

  // Distinct destination countries within [from, to).
  [[nodiscard]] std::size_t distinct_countries(sim::SimTime from, sim::SimTime to) const;

 private:
  const CarrierNetwork& network_;
  GatewayConfig config_;
  std::vector<SmsRecord> log_;
  std::uint64_t delivered_ = 0;
  util::Money total_app_cost_;
  analytics::TimeSeries daily_{sim::kDay};
  // Rolling-day quota bookkeeping.
  std::int64_t quota_day_ = -1;
  std::uint64_t quota_used_ = 0;
};

}  // namespace fraudsim::sms
