// SMS gateway: the application's outbound messaging service.
//
// Tracks every sent message with cost accounting and per-country volume
// series (the inputs to Table I), and enforces the contracted quota with the
// primary operator — when pumping exhausts the quota, legitimate OTPs start
// failing, the indirect harm §II-B describes.
//
// Resilience: every carrier submission passes the "sms.carrier.send" fault
// point. Transient carrier failures are re-queued with exponential backoff
// (RetryPolicy); an optional per-dependency CircuitBreaker fail-fasts while
// the carrier is down, bounding the retry amplification an outage would
// otherwise produce — amplification that is attacker-fuelled under SMS
// pumping, since every pumped message that fails retries on the app's dime.
// With no fault scenario armed the send path is byte-identical to the
// pre-fault-injection gateway.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analytics/histogram.hpp"
#include "analytics/timeseries.hpp"
#include "core/fault/circuit_breaker.hpp"
#include "core/fault/fault.hpp"
#include "core/fault/retry.hpp"
#include "core/obs/metrics.hpp"
#include "core/overload/overload.hpp"
#include "sms/carrier.hpp"
#include "sms/number.hpp"
#include "sim/time.hpp"
#include "util/money.hpp"
#include "util/result.hpp"
#include "web/request.hpp"

namespace fraudsim::sms {

enum class SmsType : std::uint8_t { Otp, BoardingPass, Notification };

[[nodiscard]] const char* to_string(SmsType t);

// Why a message is (currently) undelivered. CarrierTransient means a retry
// is still pending; the other reasons are terminal.
enum class SmsFailure : std::uint8_t {
  None,             // delivered
  QuotaExhausted,   // rolling-day contract quota hit (terminal; not retried)
  CarrierTransient, // carrier submission failed; retry queued
  CircuitOpen,      // breaker fail-fast, carrier never attempted (terminal)
  RetriesExhausted, // transient failures ate the whole retry budget (terminal)
  DeadlineExpired,  // the request's deadline budget lapsed before delivery
                    // could complete (terminal; pending retries are abandoned)
};

[[nodiscard]] const char* to_string(SmsFailure f);

// Typed-error mapping so callers dispatch on codes, never on failure text.
[[nodiscard]] util::ErrorCode to_error_code(SmsFailure f);

struct SmsRecord {
  sim::SimTime time = 0;                  // original request time
  PhoneNumber destination;
  SmsType type = SmsType::Notification;
  web::ActorId actor;                     // ground truth
  std::optional<std::string> booking_ref; // for boarding-pass messages
  // Completion budget attached by overload admission; unbounded by default.
  // Retries that cannot fire before it lapses are abandoned, not queued —
  // under overload the retry queue must not grow with work nobody is
  // waiting for any more.
  overload::Deadline deadline;
  bool delivered = false;                 // false if rejected or still pending
  SmsFailure failure = SmsFailure::None;
  int attempts = 0;                       // carrier submissions made so far
  sim::SimTime delivered_at = -1;         // set on successful delivery
  util::Money app_cost;
  util::Money attacker_revenue;
};

struct GatewayConfig {
  // Messages per rolling day contracted with the primary operator;
  // 0 = unlimited. Every carrier submission (retries included) counts.
  std::uint64_t daily_quota = 0;
  // Settlement-time abuse flagging is applied later by the economics layer;
  // at send time nothing is flagged.

  // Transient carrier failures are re-queued with backoff (drained by
  // process_retries, which the scenario Env sweeps periodically).
  bool retry_enabled = true;
  fault::RetryPolicy retry;
  // Seed of the gateway-local jitter stream (independent of scenario RNGs so
  // arming faults never shifts other subsystems' draws).
  std::uint64_t retry_jitter_seed = 0xF417;
  // Per-carrier circuit breaker: off by default (the vulnerable posture the
  // outage bench contrasts against).
  bool breaker_enabled = false;
  fault::CircuitBreakerConfig breaker;
};

class SmsGateway {
 public:
  // `metrics` is the platform registry ("sms.*" series); when null the
  // gateway owns a private registry so standalone tests see isolated counts.
  SmsGateway(const CarrierNetwork& network, GatewayConfig config,
             obs::MetricsRegistry* metrics = nullptr);

  // Sends an SMS at `now`. Returns the stored record (delivered=false when
  // the daily quota is exhausted, the breaker is open, or the carrier failed
  // transiently — in the last case a retry is pending and the record is
  // updated in place when it later delivers).
  const SmsRecord& send(sim::SimTime now, PhoneNumber destination, SmsType type,
                        web::ActorId actor, std::optional<std::string> booking_ref = {},
                        overload::Deadline deadline = {});

  // Drains retries due at or before `now`. Deterministic: entries fire in
  // (due time, record index) order. Call from a periodic sweep.
  void process_retries(sim::SimTime now);

  [[nodiscard]] const std::vector<SmsRecord>& log() const { return log_; }
  [[nodiscard]] std::uint64_t sent_count() const { return log_.size(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_.value(); }
  [[nodiscard]] std::uint64_t rejected_count() const { return log_.size() - delivered_.value(); }
  [[nodiscard]] util::Money total_app_cost() const { return total_app_cost_; }

  // --- Resilience telemetry (served from the metrics registry) ---------------
  [[nodiscard]] std::uint64_t carrier_attempts() const { return carrier_attempts_.value(); }
  [[nodiscard]] std::uint64_t carrier_failures() const { return carrier_failures_.value(); }
  [[nodiscard]] std::uint64_t first_attempt_failures() const {
    return first_attempt_failures_.value();
  }
  [[nodiscard]] std::uint64_t retries_enqueued() const { return retries_enqueued_.value(); }
  [[nodiscard]] std::uint64_t retries_delivered() const { return retries_delivered_.value(); }
  [[nodiscard]] std::uint64_t retries_exhausted() const { return retries_exhausted_.value(); }
  [[nodiscard]] std::uint64_t quota_rejected() const { return quota_rejected_.value(); }
  [[nodiscard]] std::uint64_t deadline_abandoned() const { return deadline_abandoned_.value(); }
  // Rolling-day quota window, exposed for the invariant oracle: submissions
  // charged against the contract in the current window, and the sim-day the
  // window covers (-1 before the first submission).
  [[nodiscard]] std::uint64_t quota_used() const { return quota_used_; }
  [[nodiscard]] std::int64_t quota_day() const { return quota_day_; }
  [[nodiscard]] const GatewayConfig& config() const { return config_; }
  [[nodiscard]] std::size_t pending_retries() const { return retries_.size(); }
  [[nodiscard]] const fault::CircuitBreaker& breaker() const { return breaker_; }

  // Delivered volumes per destination country within [from, to).
  [[nodiscard]] analytics::CategoricalHistogram<net::CountryCode> volume_by_country(
      sim::SimTime from, sim::SimTime to, std::optional<SmsType> type = {}) const;

  // Delivered volume per day (all countries).
  [[nodiscard]] const analytics::TimeSeries& daily_series() const { return daily_; }

  // Distinct destination countries within [from, to).
  [[nodiscard]] std::size_t distinct_countries(sim::SimTime from, sim::SimTime to) const;

  // Checkpoint support: message log, quota window, breaker, retry queue and
  // jitter stream. Counter cells live in the metrics registry and are
  // restored with it.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  // One carrier submission for log_[index]; `attempt` is 1-based.
  void attempt_delivery(sim::SimTime now, std::size_t index, int attempt);

  const CarrierNetwork& network_;
  GatewayConfig config_;
  std::vector<SmsRecord> log_;
  util::Money total_app_cost_;
  analytics::TimeSeries daily_{sim::kDay};
  // Rolling-day quota bookkeeping.
  std::int64_t quota_day_ = -1;
  std::uint64_t quota_used_ = 0;
  // Fault + resilience plumbing.
  fault::FaultPoint& carrier_fault_;
  fault::CircuitBreaker breaker_;
  sim::Rng retry_rng_;
  // Pending retries ordered by (due, record index) -> next attempt number.
  std::map<std::pair<sim::SimTime, std::size_t>, int> retries_;
  // "sms.*" counter handles; cells live in `metrics` (injected or owned).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter delivered_;
  obs::Counter carrier_attempts_;
  obs::Counter carrier_failures_;
  obs::Counter first_attempt_failures_;
  obs::Counter retries_enqueued_;
  obs::Counter retries_delivered_;
  obs::Counter retries_exhausted_;
  obs::Counter quota_rejected_;
  obs::Counter deadline_abandoned_;
};

}  // namespace fraudsim::sms
