#include "sms/tariff.hpp"

#include <algorithm>

namespace fraudsim::sms {

TariffTable TariffTable::standard() {
  TariffTable table;
  using util::Money;
  using net::CountryCode;

  // Premium fraud-friendly routes: the six countries Table I shows with
  // explosive surges. High termination fees + colluding-carrier share.
  struct PremiumSpec {
    CountryCode code;
    double send;   // USD the application pays per SMS
    double term;   // termination fee
    double share;  // attacker revenue share of the termination fee
  };
  // Exactly the six explosive-surge destinations of Table I: the paper's
  // attackers picked destinations by kickback availability, and these are
  // where the colluding routes live in this model.
  const PremiumSpec premium[] = {
      {{'U', 'Z'}, 0.22, 0.16, 0.75},
      {{'I', 'R'}, 0.20, 0.15, 0.70},
      {{'K', 'G'}, 0.18, 0.13, 0.70},
      {{'J', 'O'}, 0.16, 0.11, 0.60},
      {{'N', 'G'}, 0.14, 0.10, 0.60},
      {{'K', 'H'}, 0.13, 0.09, 0.55},
  };
  for (const auto& p : premium) {
    table.set(Tariff{p.code, Money::from_double(p.send), Money::from_double(p.term), true,
                     p.share});
  }

  // Everything else: ordinary A2P rates, honest carriers.
  for (const auto& c : net::world_countries()) {
    if (table.has(c.code)) continue;
    // Mature markets are cheap; emerging markets mid-range. Derive a stable
    // rate from the population weight (heavier = cheaper).
    const double send = c.population_weight >= 3.0 ? 0.03 : 0.06;
    const double term = send * 0.4;
    table.set(Tariff{c.code, Money::from_double(send), Money::from_double(term), false, 0.0});
  }
  return table;
}

void TariffTable::set(Tariff tariff) { tariffs_[tariff.country] = tariff; }

const Tariff& TariffTable::get(net::CountryCode country) const {
  const auto it = tariffs_.find(country);
  return it == tariffs_.end() ? default_ : it->second;
}

bool TariffTable::has(net::CountryCode country) const { return tariffs_.contains(country); }

util::Money TariffTable::attacker_revenue_per_sms(net::CountryCode country) const {
  const auto& t = get(country);
  return t.termination_fee * t.fraud_revenue_share;
}

std::vector<net::CountryCode> TariffTable::by_attacker_revenue() const {
  std::vector<net::CountryCode> codes;
  codes.reserve(tariffs_.size());
  for (const auto& [code, tariff] : tariffs_) {
    (void)tariff;
    codes.push_back(code);
  }
  std::sort(codes.begin(), codes.end());  // deterministic base order
  std::stable_sort(codes.begin(), codes.end(), [this](net::CountryCode a, net::CountryCode b) {
    return attacker_revenue_per_sms(a) > attacker_revenue_per_sms(b);
  });
  return codes;
}

}  // namespace fraudsim::sms
