#include "sms/gateway.hpp"

#include <set>

namespace fraudsim::sms {

const char* to_string(SmsType t) {
  switch (t) {
    case SmsType::Otp:
      return "otp";
    case SmsType::BoardingPass:
      return "boarding-pass";
    case SmsType::Notification:
      return "notification";
  }
  return "?";
}

const char* to_string(SmsFailure f) {
  switch (f) {
    case SmsFailure::None:
      return "none";
    case SmsFailure::QuotaExhausted:
      return "quota-exhausted";
    case SmsFailure::CarrierTransient:
      return "carrier-transient";
    case SmsFailure::CircuitOpen:
      return "circuit-open";
    case SmsFailure::RetriesExhausted:
      return "retries-exhausted";
    case SmsFailure::DeadlineExpired:
      return "deadline-expired";
  }
  return "?";
}

util::ErrorCode to_error_code(SmsFailure f) {
  switch (f) {
    case SmsFailure::None:
      return util::ErrorCode::kOk;
    case SmsFailure::QuotaExhausted:
      return util::ErrorCode::kQuotaExhausted;
    case SmsFailure::CarrierTransient:
    case SmsFailure::RetriesExhausted:
      return util::ErrorCode::kUpstreamFault;
    case SmsFailure::CircuitOpen:
      return util::ErrorCode::kUpstreamFault;
    case SmsFailure::DeadlineExpired:
      return util::ErrorCode::kDeadlineExceeded;
  }
  return util::ErrorCode::kUnknown;
}

SmsGateway::SmsGateway(const CarrierNetwork& network, GatewayConfig config,
                       obs::MetricsRegistry* metrics)
    : network_(network),
      config_(config),
      carrier_fault_(fault::FaultRegistry::global().point("sms.carrier.send")),
      breaker_(config.breaker),
      retry_rng_(config.retry_jitter_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  delivered_ = metrics->counter("sms.delivered");
  carrier_attempts_ = metrics->counter("sms.carrier.attempts");
  carrier_failures_ = metrics->counter("sms.carrier.failures");
  first_attempt_failures_ = metrics->counter("sms.carrier.first_attempt_failures");
  retries_enqueued_ = metrics->counter("sms.retry.enqueued");
  retries_delivered_ = metrics->counter("sms.retry.delivered");
  retries_exhausted_ = metrics->counter("sms.retry.exhausted");
  quota_rejected_ = metrics->counter("sms.quota.rejected");
  deadline_abandoned_ = metrics->counter("sms.deadline.abandoned");
}

const SmsRecord& SmsGateway::send(sim::SimTime now, PhoneNumber destination, SmsType type,
                                  web::ActorId actor, std::optional<std::string> booking_ref,
                                  overload::Deadline deadline) {
  SmsRecord record;
  record.time = now;
  record.destination = destination;
  record.type = type;
  record.actor = actor;
  record.booking_ref = std::move(booking_ref);
  record.deadline = deadline;
  log_.push_back(std::move(record));
  const std::size_t index = log_.size() - 1;
  attempt_delivery(now, index, /*attempt=*/1);
  return log_[index];
}

void SmsGateway::attempt_delivery(sim::SimTime now, std::size_t index, int attempt) {
  SmsRecord& record = log_[index];
  record.attempts = attempt;

  // A retry (or a very late send) whose deadline budget has lapsed is
  // abandoned: nobody is waiting for this message any more, and spending a
  // carrier submission on it steals quota from live traffic.
  if (record.deadline.expired(now)) {
    record.failure = SmsFailure::DeadlineExpired;
    deadline_abandoned_.inc();
    return;
  }

  // Quota: resets each sim day; every carrier submission (retries included)
  // counts against the contract. Quota rejection is a business rejection,
  // not a transient fault — it is terminal and never retried (a client
  // cannot buy more deliveries by hammering the gateway).
  const std::int64_t day = sim::day_of(now);
  if (day != quota_day_) {
    quota_day_ = day;
    quota_used_ = 0;
  }
  if (config_.daily_quota != 0 && quota_used_ >= config_.daily_quota) {
    record.failure = SmsFailure::QuotaExhausted;
    quota_rejected_.inc();
    return;
  }

  // Circuit breaker: while the carrier is down, fail fast without consuming
  // quota or touching the carrier. Terminal — bounding both carrier load and
  // retry-queue growth is the breaker's whole job.
  if (config_.breaker_enabled && !breaker_.allow(now)) {
    record.failure = SmsFailure::CircuitOpen;
    return;
  }

  ++quota_used_;
  carrier_attempts_.inc();
  const fault::FaultAction act = carrier_fault_.consult(now);
  if (act.error) {
    carrier_failures_.inc();
    if (attempt == 1) first_attempt_failures_.inc();
    if (config_.breaker_enabled) breaker_.record_failure(now);
    if (config_.retry_enabled && config_.retry.should_retry(attempt)) {
      const sim::SimDuration delay = config_.retry.delay(attempt, retry_rng_);
      if (record.deadline.expired(now + delay)) {
        // The retry could not fire before the deadline: abandon now instead
        // of parking dead work in the retry queue.
        record.failure = SmsFailure::DeadlineExpired;
        deadline_abandoned_.inc();
        return;
      }
      retries_.emplace(std::make_pair(now + delay, index), attempt + 1);
      retries_enqueued_.inc();
      record.failure = SmsFailure::CarrierTransient;
    } else {
      record.failure = SmsFailure::RetriesExhausted;
      retries_exhausted_.inc();
    }
    return;
  }
  if (config_.breaker_enabled) breaker_.record_success(now);

  // Latency spike: the submission succeeds, but `act.latency` of sim-time
  // later. A delivery that would land past the caller's deadline budget is
  // abandoned — a slow dependency fails deadlines exactly like a dead one.
  const sim::SimTime completed_at = now + act.latency;
  if (act.latency > 0 && record.deadline.expired(completed_at)) {
    record.failure = SmsFailure::DeadlineExpired;
    deadline_abandoned_.inc();
    return;
  }

  record.delivered = true;
  record.failure = SmsFailure::None;
  record.delivered_at = completed_at;
  // At send time nothing is flagged as abuse; settlement reflects the
  // default carrier economics. Retrospective flagging is handled by the
  // economics layer re-settling flagged records.
  const auto settlement = network_.settle(record.destination.country, /*flagged=*/false);
  record.app_cost = settlement.app_cost;
  record.attacker_revenue = settlement.attacker_revenue;
  total_app_cost_ += record.app_cost;
  delivered_.inc();
  daily_.add(completed_at);
  if (attempt > 1) retries_delivered_.inc();
}

void SmsGateway::process_retries(sim::SimTime now) {
  while (!retries_.empty() && retries_.begin()->first.first <= now) {
    const auto [key, attempt] = *retries_.begin();
    retries_.erase(retries_.begin());
    attempt_delivery(now, key.second, attempt);
  }
}

analytics::CategoricalHistogram<net::CountryCode> SmsGateway::volume_by_country(
    sim::SimTime from, sim::SimTime to, std::optional<SmsType> type) const {
  analytics::CategoricalHistogram<net::CountryCode> hist;
  for (const auto& r : log_) {
    if (!r.delivered) continue;
    if (r.time < from || r.time >= to) continue;
    if (type && r.type != *type) continue;
    hist.add(r.destination.country);
  }
  return hist;
}

std::size_t SmsGateway::distinct_countries(sim::SimTime from, sim::SimTime to) const {
  std::set<net::CountryCode> countries;
  for (const auto& r : log_) {
    if (!r.delivered) continue;
    if (r.time < from || r.time >= to) continue;
    countries.insert(r.destination.country);
  }
  return countries.size();
}

void SmsGateway::checkpoint(util::ByteWriter& out) const {
  out.u64(log_.size());
  for (const auto& r : log_) {
    out.i64(r.time);
    out.u16(r.destination.country.packed());
    out.str(r.destination.subscriber);
    out.u8(static_cast<std::uint8_t>(r.type));
    out.u64(r.actor.value());
    out.boolean(r.booking_ref.has_value());
    if (r.booking_ref) out.str(*r.booking_ref);
    out.i64(r.deadline.expires);
    out.boolean(r.delivered);
    out.u8(static_cast<std::uint8_t>(r.failure));
    out.i64(r.attempts);
    out.i64(r.delivered_at);
    out.i64(r.app_cost.micros());
    out.i64(r.attacker_revenue.micros());
  }
  out.i64(total_app_cost_.micros());
  daily_.checkpoint(out);
  out.i64(quota_day_);
  out.u64(quota_used_);
  breaker_.checkpoint(out);
  retry_rng_.checkpoint(out);
  out.u64(retries_.size());
  for (const auto& [key, attempt] : retries_) {
    out.i64(key.first);
    out.u64(key.second);
    out.i64(attempt);
  }
}

void SmsGateway::restore(util::ByteReader& in) {
  const auto n = in.u64();
  log_.clear();
  log_.reserve(n);
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    SmsRecord r;
    r.time = in.i64();
    const auto packed = in.u16();
    r.destination.country =
        net::CountryCode(static_cast<char>(packed >> 8), static_cast<char>(packed & 0xFF));
    r.destination.subscriber = in.str();
    r.type = static_cast<SmsType>(in.u8());
    r.actor = web::ActorId{in.u64()};
    if (in.boolean()) r.booking_ref = in.str();
    r.deadline.expires = in.i64();
    r.delivered = in.boolean();
    r.failure = static_cast<SmsFailure>(in.u8());
    r.attempts = static_cast<int>(in.i64());
    r.delivered_at = in.i64();
    r.app_cost = util::Money::from_micros(in.i64());
    r.attacker_revenue = util::Money::from_micros(in.i64());
    log_.push_back(std::move(r));
  }
  total_app_cost_ = util::Money::from_micros(in.i64());
  daily_.restore(in);
  quota_day_ = in.i64();
  quota_used_ = in.u64();
  breaker_.restore(in);
  retry_rng_.restore(in);
  const auto pending = in.u64();
  retries_.clear();
  for (std::uint64_t i = 0; i < pending && in.ok(); ++i) {
    const sim::SimTime due = in.i64();
    const std::size_t index = in.u64();
    retries_[{due, index}] = static_cast<int>(in.i64());
  }
}

}  // namespace fraudsim::sms
