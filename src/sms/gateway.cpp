#include "sms/gateway.hpp"

#include <set>

namespace fraudsim::sms {

const char* to_string(SmsType t) {
  switch (t) {
    case SmsType::Otp:
      return "otp";
    case SmsType::BoardingPass:
      return "boarding-pass";
    case SmsType::Notification:
      return "notification";
  }
  return "?";
}

SmsGateway::SmsGateway(const CarrierNetwork& network, GatewayConfig config)
    : network_(network), config_(config) {}

const SmsRecord& SmsGateway::send(sim::SimTime now, PhoneNumber destination, SmsType type,
                                  web::ActorId actor, std::optional<std::string> booking_ref) {
  SmsRecord record;
  record.time = now;
  record.destination = destination;
  record.type = type;
  record.actor = actor;
  record.booking_ref = std::move(booking_ref);

  // Quota: resets each sim day.
  const std::int64_t day = sim::day_of(now);
  if (day != quota_day_) {
    quota_day_ = day;
    quota_used_ = 0;
  }
  const bool within_quota = config_.daily_quota == 0 || quota_used_ < config_.daily_quota;
  if (within_quota) {
    ++quota_used_;
    record.delivered = true;
    // At send time nothing is flagged as abuse; settlement reflects the
    // default carrier economics. Retrospective flagging is handled by the
    // economics layer re-settling flagged records.
    const auto settlement = network_.settle(destination.country, /*flagged=*/false);
    record.app_cost = settlement.app_cost;
    record.attacker_revenue = settlement.attacker_revenue;
    total_app_cost_ += record.app_cost;
    ++delivered_;
    daily_.add(now);
  }
  log_.push_back(std::move(record));
  return log_.back();
}

analytics::CategoricalHistogram<net::CountryCode> SmsGateway::volume_by_country(
    sim::SimTime from, sim::SimTime to, std::optional<SmsType> type) const {
  analytics::CategoricalHistogram<net::CountryCode> hist;
  for (const auto& r : log_) {
    if (!r.delivered) continue;
    if (r.time < from || r.time >= to) continue;
    if (type && r.type != *type) continue;
    hist.add(r.destination.country);
  }
  return hist;
}

std::size_t SmsGateway::distinct_countries(sim::SimTime from, sim::SimTime to) const {
  std::set<net::CountryCode> countries;
  for (const auto& r : log_) {
    if (!r.delivered) continue;
    if (r.time < from || r.time >= to) continue;
    countries.insert(r.destination.country);
  }
  return countries.size();
}

}  // namespace fraudsim::sms
