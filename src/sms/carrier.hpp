// Carrier / operator model.
//
// Models the intercarrier chain of §II-B: the application contracts a primary
// operator; terminating (possibly fraudulent secondary) carriers collect
// termination fees per delivered SMS; colluding carriers share revenue with
// the attacker. Mitigations from §V (stricter secondary-operator validation,
// withholding compensation on flagged traffic) are modelled as policies.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/geo.hpp"
#include "sms/tariff.hpp"
#include "util/money.hpp"

namespace fraudsim::sms {

struct CarrierPolicy {
  // Primary operator refuses to compensate termination on traffic flagged as
  // functional abuse (§V "not compensate local carriers ... in abuse cases").
  bool withhold_flagged_compensation = false;
  // Fraction of newly registered secondary carriers rejected by stricter
  // validation (0 = today's laissez-faire, 1 = fully closed).
  double secondary_validation_strictness = 0.0;
};

class CarrierNetwork {
 public:
  CarrierNetwork(TariffTable tariffs, CarrierPolicy policy);

  // Settlement for one delivered SMS. `flagged` marks messages the
  // application has attributed to abuse by the time of settlement.
  struct Settlement {
    util::Money app_cost;          // paid by the application owner
    util::Money carrier_revenue;   // termination fee kept by the carrier
    util::Money attacker_revenue;  // kickback to the attacker (0 if honest)
  };
  [[nodiscard]] Settlement settle(net::CountryCode destination, bool flagged) const;

  // Whether a fraudulent secondary carrier for `destination` slips through
  // registration under the current validation strictness. Deterministic in
  // the draw `u` (pass rng.uniform()).
  [[nodiscard]] bool fraud_carrier_admitted(double u) const;

  [[nodiscard]] const TariffTable& tariffs() const { return tariffs_; }
  [[nodiscard]] const CarrierPolicy& policy() const { return policy_; }

 private:
  TariffTable tariffs_;
  CarrierPolicy policy_;
};

}  // namespace fraudsim::sms
