// Per-country SMS tariffs.
//
// The economics of SMS Pumping (paper §II-B) hinge on per-country termination
// pricing: the application owner pays the A2P send rate; the terminating
// carrier collects a termination fee; a colluding carrier kicks a share of it
// back to the attacker. High-cost destinations (premium routes) are exactly
// the countries Table I shows being disproportionately targeted.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/geo.hpp"
#include "util/money.hpp"

namespace fraudsim::sms {

struct Tariff {
  net::CountryCode country;
  util::Money send_cost;         // what the application owner pays per SMS
  util::Money termination_fee;   // what the terminating carrier collects
  bool premium_route = false;    // elevated-rate destination
  // Fraction of the termination fee a colluding carrier shares with the
  // attacker (0 for honest carriers).
  double fraud_revenue_share = 0.0;
};

class TariffTable {
 public:
  // Built-in table covering every world_countries() entry; Table I countries
  // carry premium routes with aggressive revenue share.
  [[nodiscard]] static TariffTable standard();

  void set(Tariff tariff);
  [[nodiscard]] const Tariff& get(net::CountryCode country) const;  // falls back to default
  [[nodiscard]] bool has(net::CountryCode country) const;

  // Countries ordered by attacker revenue per SMS, descending — the targeting
  // preference a profit-maximising pumping ring would use.
  [[nodiscard]] std::vector<net::CountryCode> by_attacker_revenue() const;

  [[nodiscard]] util::Money attacker_revenue_per_sms(net::CountryCode country) const;

 private:
  std::unordered_map<net::CountryCode, Tariff> tariffs_;
  Tariff default_{net::CountryCode{}, util::Money::from_cents(4), util::Money::from_cents(1),
                  false, 0.0};
};

}  // namespace fraudsim::sms
