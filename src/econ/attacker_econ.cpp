#include "econ/attacker_econ.hpp"

namespace fraudsim::econ {

util::Money sms_revenue_of(const sms::SmsGateway& gateway, web::ActorId actor) {
  util::Money revenue;
  for (const auto& r : gateway.log()) {
    if (!r.delivered || r.actor != actor) continue;
    revenue += r.attacker_revenue;
  }
  return revenue;
}

AttackerPnL sms_attacker_pnl(const sms::SmsGateway& gateway, web::ActorId actor,
                             const attack::BotCounters& counters, std::uint64_t stolen_cards,
                             const AttackerParams& params) {
  AttackerPnL pnl;
  pnl.sms_revenue = sms_revenue_of(gateway, actor);
  pnl.proxy_cost = params.proxy_cost_per_request * static_cast<std::int64_t>(counters.requests);
  pnl.captcha_cost = counters.captcha_spend;
  pnl.setup_cost = params.stolen_card_cost * static_cast<std::int64_t>(stolen_cards);
  return pnl;
}

}  // namespace fraudsim::econ
