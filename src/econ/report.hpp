// Economics report rendering.
#pragma once

#include <string>

#include "econ/attacker_econ.hpp"
#include "econ/defender_econ.hpp"

namespace fraudsim::econ {

[[nodiscard]] std::string render_attacker_pnl(const std::string& title, const AttackerPnL& pnl);
[[nodiscard]] std::string render_defender_pnl(const std::string& title, const DefenderPnL& pnl);

}  // namespace fraudsim::econ
