#include "econ/defender_econ.hpp"

namespace fraudsim::econ {

DefenderPnL defender_pnl(const app::Application& application, const app::ActorRegistry& registry,
                         const workload::LegitTrafficStats& legit, const DefenderParams& params) {
  DefenderPnL pnl;
  for (const auto& r : application.sms_gateway().log()) {
    if (!r.delivered) continue;
    if (registry.abuser(r.actor)) {
      pnl.sms_cost_abuse += r.app_cost;
      ++pnl.abuse_sms_count;
    } else {
      pnl.sms_cost_legit += r.app_cost;
      ++pnl.legit_sms_count;
    }
  }
  pnl.lost_sales_inventory =
      params.ticket_price * static_cast<std::int64_t>(legit.seats_lost_no_seats);
  const double blocked_value =
      static_cast<double>(legit.blocked + legit.challenge_abandoned) * params.blocked_conversion;
  pnl.false_positive_loss = params.ticket_price * blocked_value;
  return pnl;
}

}  // namespace fraudsim::econ
