#include "econ/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace fraudsim::econ {

std::string render_attacker_pnl(const std::string& title, const AttackerPnL& pnl) {
  util::AsciiTable table({"Item", "Amount"});
  table.add_row({"SMS kickback revenue", pnl.sms_revenue.str()});
  table.add_row({"Proxy cost", (-pnl.proxy_cost).str()});
  table.add_row({"CAPTCHA-solving cost", (-pnl.captcha_cost).str()});
  table.add_row({"Setup cost (cards)", (-pnl.setup_cost).str()});
  table.add_row({"NET", pnl.net().str()});
  std::ostringstream out;
  out << "=== " << title << " ===\n" << table.render();
  return out.str();
}

std::string render_defender_pnl(const std::string& title, const DefenderPnL& pnl) {
  util::AsciiTable table({"Item", "Amount"});
  table.add_row({"SMS spend on abuse (" + util::format_count(pnl.abuse_sms_count) + " msgs)",
                 pnl.sms_cost_abuse.str()});
  table.add_row({"SMS spend legit (" + util::format_count(pnl.legit_sms_count) + " msgs)",
                 pnl.sms_cost_legit.str()});
  table.add_row({"Lost sales (no seats)", pnl.lost_sales_inventory.str()});
  table.add_row({"False-positive loss", pnl.false_positive_loss.str()});
  table.add_row({"TOTAL attack loss", pnl.total_attack_loss().str()});
  std::ostringstream out;
  out << "=== " << title << " ===\n" << table.render();
  return out.str();
}

}  // namespace fraudsim::econ
