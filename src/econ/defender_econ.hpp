// Defender-side losses (§II).
//
// DoI: seats held by abusers are sales legitimate customers could not make;
// blocks/challenges on legitimate users are self-inflicted losses. SMS
// pumping: the application pays the A2P send rate for every pumped message.
#pragma once

#include <cstdint>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "util/money.hpp"
#include "workload/legit_traffic.hpp"

namespace fraudsim::econ {

struct DefenderParams {
  util::Money ticket_price = util::Money::from_units(140);
  // Fraction of blocked/abandoned legitimate sessions that would have
  // converted into a paid booking.
  double blocked_conversion = 0.5;
};

struct DefenderPnL {
  util::Money sms_cost_abuse;        // A2P spend attributable to abusers
  util::Money sms_cost_legit;        // normal operating spend
  util::Money lost_sales_inventory;  // parties turned away for lack of seats
  util::Money false_positive_loss;   // legit users blocked / abandoned
  std::uint64_t abuse_sms_count = 0;
  std::uint64_t legit_sms_count = 0;

  [[nodiscard]] util::Money total_attack_loss() const {
    return sms_cost_abuse + lost_sales_inventory + false_positive_loss;
  }
};

[[nodiscard]] DefenderPnL defender_pnl(const app::Application& application,
                                       const app::ActorRegistry& registry,
                                       const workload::LegitTrafficStats& legit,
                                       const DefenderParams& params = {});

}  // namespace fraudsim::econ
