// Attacker profit & loss (§II-B, §V).
//
// SMS Pumping is financially motivated: revenue is the colluding-carrier
// kickback per delivered SMS; costs are residential proxies, CAPTCHA solves,
// and setup (stolen cards, ticket purchases). §V argues the strongest
// deterrent is pushing this P&L negative — bench/exp_economics and
// bench/exp_mitigation_ablation quantify exactly that.
#pragma once

#include <cstdint>

#include "app/actors.hpp"
#include "attack/bot_base.hpp"
#include "sms/gateway.hpp"
#include "util/money.hpp"

namespace fraudsim::econ {

struct AttackerParams {
  util::Money proxy_cost_per_request = util::Money::from_double(0.0008);
  util::Money stolen_card_cost = util::Money::from_double(4.0);
  // Tickets bought with stolen cards are "free" until the chargeback; the
  // card itself is the cost.
};

struct AttackerPnL {
  util::Money sms_revenue;     // carrier kickbacks
  util::Money proxy_cost;
  util::Money captcha_cost;
  util::Money setup_cost;      // stolen cards etc.

  [[nodiscard]] util::Money total_cost() const {
    return proxy_cost + captcha_cost + setup_cost;
  }
  [[nodiscard]] util::Money net() const { return sms_revenue - total_cost(); }
  [[nodiscard]] bool profitable() const { return net() > util::Money{}; }
};

// P&L of one pumping actor from the gateway ledger + its bot counters.
[[nodiscard]] AttackerPnL sms_attacker_pnl(const sms::SmsGateway& gateway, web::ActorId actor,
                                           const attack::BotCounters& counters,
                                           std::uint64_t stolen_cards,
                                           const AttackerParams& params = {});

// Revenue a given actor earned from delivered SMS (kickbacks only).
[[nodiscard]] util::Money sms_revenue_of(const sms::SmsGateway& gateway, web::ActorId actor);

}  // namespace fraudsim::econ
