#include "core/fault/retry.hpp"

#include <algorithm>
#include <cmath>

namespace fraudsim::fault {

sim::SimDuration RetryPolicy::backoff(int retry) const {
  if (retry < 1) retry = 1;
  // Multiply iteratively and stop as soon as the cap is reached: pow() at
  // attempt ~60 overflows to inf, and casting inf to SimDuration is UB.
  const double cap = static_cast<double>(max_delay);
  double d = static_cast<double>(base_delay);
  if (multiplier > 1.0) {
    for (int i = 1; i < retry && d < cap; ++i) d *= multiplier;
  }
  d = std::min(d, cap);
  return std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(d));
}

sim::SimDuration RetryPolicy::delay(int retry, sim::Rng& rng) const {
  const auto base = backoff(retry);
  if (jitter <= 0.0) return base;
  const double factor = rng.uniform(1.0 - jitter, 1.0 + jitter);
  return std::max<sim::SimDuration>(1,
                                    static_cast<sim::SimDuration>(static_cast<double>(base) * factor));
}

}  // namespace fraudsim::fault
