#include "core/fault/crash.hpp"

namespace fraudsim::fault {

SimCrash::SimCrash(std::string point, sim::SimTime time)
    : point_(std::move(point)), time_(time) {
  message_ = "simulated crash at " + point_ + " (t=" + sim::format_time(time_) + ")";
}

bool crash_due(const std::string& point, sim::SimTime now) {
  FaultPoint& p = FaultRegistry::global().point(point);
  if (!p.armed()) return false;
  if (p.scenario().fault != FaultKind::kCrash) return false;
  // consult().fired, not should_fail(): a kCrash firing is routed to the
  // crash path and deliberately reads as a no-op to error-path callers.
  return p.consult(now).fired;
}

void maybe_crash(const std::string& point, sim::SimTime now) {
  if (crash_due(point, now)) throw SimCrash(point, now);
}

std::size_t torn_prefix(std::size_t size, std::uint64_t salt) {
  if (size == 0) return 0;
  // splitmix64 finalizer: avalanche the salt so consecutive hit counts give
  // well-spread cut points.
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % size);
}

}  // namespace fraudsim::fault
