#include "core/fault/fault.hpp"

#include <cassert>
#include <cstdio>

#include "util/format.hpp"

namespace fraudsim::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kLatency:
      return "latency";
  }
  return "?";
}

const char* to_string(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::Never:
      return "never";
    case ScenarioKind::Always:
      return "always";
    case ScenarioKind::Probabilistic:
      return "probabilistic";
    case ScenarioKind::EveryNth:
      return "every-nth";
    case ScenarioKind::OnNth:
      return "on-nth";
    case ScenarioKind::Window:
      return "window";
    case ScenarioKind::Burst:
      return "burst";
  }
  return "?";
}

FaultScenario FaultScenario::always() {
  FaultScenario s;
  s.kind = ScenarioKind::Always;
  return s;
}

FaultScenario FaultScenario::probabilistic(double p, std::uint64_t seed) {
  FaultScenario s;
  s.kind = ScenarioKind::Probabilistic;
  s.probability = p;
  s.seed = seed;
  return s;
}

FaultScenario FaultScenario::every_nth(std::uint64_t n) {
  FaultScenario s;
  s.kind = ScenarioKind::EveryNth;
  s.nth = n;
  return s;
}

FaultScenario FaultScenario::window(sim::SimTime from, sim::SimTime to) {
  FaultScenario s;
  s.kind = ScenarioKind::Window;
  s.from = from;
  s.to = to;
  return s;
}

FaultScenario FaultScenario::crash_at_hit(std::uint64_t n) {
  FaultScenario s;
  s.kind = ScenarioKind::OnNth;
  s.fault = FaultKind::kCrash;
  s.nth = n;
  return s;
}

FaultScenario FaultScenario::burst(sim::SimTime first, sim::SimDuration period,
                                   sim::SimDuration duration) {
  FaultScenario s;
  s.kind = ScenarioKind::Burst;
  s.from = first;
  s.period = period;
  s.duration = duration;
  return s;
}

FaultScenario FaultScenario::with_latency(sim::SimDuration delay) const {
  FaultScenario s = *this;
  s.fault = FaultKind::kLatency;
  s.latency = delay;
  return s;
}

void FaultScenario::checkpoint(util::ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(kind));
  out.u8(static_cast<std::uint8_t>(fault));
  out.f64(probability);
  out.u64(seed);
  out.u64(nth);
  out.i64(from);
  out.i64(to);
  out.i64(period);
  out.i64(duration);
  out.i64(latency);
}

void FaultScenario::restore(util::ByteReader& in) {
  kind = static_cast<ScenarioKind>(in.u8());
  fault = static_cast<FaultKind>(in.u8());
  probability = in.f64();
  seed = in.u64();
  nth = in.u64();
  from = in.i64();
  to = in.i64();
  period = in.i64();
  duration = in.i64();
  latency = in.i64();
}

std::string FaultScenario::describe() const {
  char buf[128];
  // Latency spikes keep the pattern description, prefixed with the charge.
  if (fault == FaultKind::kLatency) {
    FaultScenario pattern = *this;
    pattern.fault = FaultKind::kError;
    return "+" +
           util::format_fixed(static_cast<double>(latency) / static_cast<double>(sim::kSecond),
                              1) +
           "s latency, " + pattern.describe();
  }
  switch (kind) {
    case ScenarioKind::Never:
      return "never";
    case ScenarioKind::Always:
      return "always";
    case ScenarioKind::Probabilistic:
      return "p=" + util::format_fixed(probability, 3) + " seed=" + std::to_string(seed);
    case ScenarioKind::EveryNth:
      std::snprintf(buf, sizeof(buf), "every %llu-th hit", static_cast<unsigned long long>(nth));
      return buf;
    case ScenarioKind::OnNth:
      std::snprintf(buf, sizeof(buf), "%s on hit %llu",
                    fault == FaultKind::kCrash ? "crash" : "fail",
                    static_cast<unsigned long long>(nth));
      return buf;
    case ScenarioKind::Window:
      return "down " + sim::format_time(from) + " .. " + sim::format_time(to);
    case ScenarioKind::Burst:
      return "down " + util::format_fixed(sim::to_hours(duration), 1) + "h every " +
             util::format_fixed(sim::to_hours(period), 1) + "h from " + sim::format_time(from);
  }
  return "?";
}

FaultPoint::FaultPoint(std::string name) : name_(std::move(name)) {}

void FaultPoint::arm(FaultScenario scenario) {
  scenario_ = scenario;
  armed_hits_ = 0;
  if (scenario_.kind == ScenarioKind::Probabilistic) {
    rng_.emplace(scenario_.seed);
  } else {
    rng_.reset();
  }
}

void FaultPoint::reset_counters() {
  hits_ = 0;
  injected_ = 0;
  armed_hits_ = 0;
  if (scenario_.kind == ScenarioKind::Probabilistic) rng_.emplace(scenario_.seed);
}

FaultAction FaultPoint::consult(sim::SimTime now) {
  ++hits_;
  FaultAction action;
  if (scenario_.kind == ScenarioKind::Never) return action;
  ++armed_hits_;
  bool fire = false;
  switch (scenario_.kind) {
    case ScenarioKind::Never:
      break;
    case ScenarioKind::Always:
      fire = true;
      break;
    case ScenarioKind::Probabilistic:
      fire = rng_->bernoulli(scenario_.probability);
      break;
    case ScenarioKind::EveryNth:
      fire = scenario_.nth != 0 && armed_hits_ % scenario_.nth == 0;
      break;
    case ScenarioKind::OnNth:
      fire = scenario_.nth != 0 && armed_hits_ == scenario_.nth;
      break;
    case ScenarioKind::Window:
      fire = now >= scenario_.from && now < scenario_.to;
      break;
    case ScenarioKind::Burst: {
      if (scenario_.period <= 0 || now < scenario_.from) break;
      const sim::SimDuration phase = (now - scenario_.from) % scenario_.period;
      fire = phase < scenario_.duration;
      break;
    }
  }
  if (!fire) return action;
  ++injected_;
  action.fired = true;
  switch (scenario_.fault) {
    case FaultKind::kError:
      action.error = true;
      break;
    case FaultKind::kLatency:
      action.latency = scenario_.latency;
      break;
    case FaultKind::kCrash:
      // crash_due() owns the unwind; error-path callers see a no-op so the
      // two fault families stay disjoint on shared consult logic.
      break;
  }
  return action;
}

void FaultPoint::checkpoint(util::ByteWriter& out) const {
  scenario_.checkpoint(out);
  out.u64(hits_);
  out.u64(armed_hits_);
  out.u64(injected_);
  out.boolean(rng_.has_value());
  if (rng_.has_value()) rng_->checkpoint(out);
}

void FaultPoint::restore(util::ByteReader& in) {
  scenario_.restore(in);
  hits_ = in.u64();
  armed_hits_ = in.u64();
  injected_ = in.u64();
  if (in.boolean()) {
    rng_.emplace(scenario_.seed);
    rng_->restore(in);
  } else {
    rng_.reset();
  }
}

FaultPoint& FaultRegistry::point(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FaultPoint>(name)).first;
  }
  return *it->second;
}

const FaultPoint* FaultRegistry::find(const std::string& name) const {
  const auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

bool FaultRegistry::arm(const std::string& name, FaultScenario scenario) {
  point(name).arm(scenario);
  return true;
}

void FaultRegistry::disarm_all() {
  for (auto& [name, p] : points_) p->disarm();
}

void FaultRegistry::reset() {
  for (auto& [name, p] : points_) {
    p->disarm();
    p->reset_counters();
  }
}

std::size_t FaultRegistry::armed_count() const {
  std::size_t n = 0;
  for (const auto& [name, p] : points_) {
    if (p->armed()) ++n;
  }
  return n;
}

std::uint64_t FaultRegistry::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& [name, p] : points_) total += p->injected();
  return total;
}

void FaultRegistry::checkpoint(util::ByteWriter& out) const {
  // Only armed, non-crash points are captured. Pristine or merely-hit points
  // are omitted (their lifetime counters never influence future firing — the
  // cursor that does, armed_hits_, is zeroed by arm()), so the blob and every
  // journal checkpoint embedding it stay independent of which guarded code
  // paths merely exist. Crash-kind scenarios are excluded on purpose: they
  // model the external process killer, which a restarted process does not
  // re-inherit — and a recovery re-record whose blob had to byte-match the
  // crashed run's could otherwise never get past the kill point.
  const auto captured = [](const FaultPoint& p) {
    return p.armed() && p.scenario().fault != FaultKind::kCrash;
  };
  std::uint64_t live = 0;
  for (const auto& [name, p] : points_) {
    if (captured(*p)) ++live;
  }
  out.u64(live);
  for (const auto& [name, p] : points_) {
    if (!captured(*p)) continue;
    out.str(name);
    p->checkpoint(out);
  }
}

void FaultRegistry::restore(util::ByteReader& in) {
  reset();
  const std::uint64_t live = in.u64();
  for (std::uint64_t i = 0; i < live && in.ok(); ++i) {
    const std::string name = in.str();
    point(name).restore(in);
  }
}

FaultRegistry& FaultRegistry::global() {
  thread_local FaultRegistry registry;
  return registry;
}

ScopedFaultReset::ScopedFaultReset() {
  auto& registry = FaultRegistry::global();
  registry.for_each([this](const FaultPoint& p) {
    if (p.armed() || p.hits() != 0) leaked_on_entry_ = true;
  });
  assert(!leaked_on_entry_ && "fault scenario leaked into this job from a previous one");
  registry.reset();
}

ScopedFaultReset::~ScopedFaultReset() { FaultRegistry::global().reset(); }

}  // namespace fraudsim::fault
