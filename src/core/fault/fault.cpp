#include "core/fault/fault.hpp"

#include <cstdio>

namespace fraudsim::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

const char* to_string(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::Never:
      return "never";
    case ScenarioKind::Always:
      return "always";
    case ScenarioKind::Probabilistic:
      return "probabilistic";
    case ScenarioKind::EveryNth:
      return "every-nth";
    case ScenarioKind::OnNth:
      return "on-nth";
    case ScenarioKind::Window:
      return "window";
    case ScenarioKind::Burst:
      return "burst";
  }
  return "?";
}

FaultScenario FaultScenario::always() {
  FaultScenario s;
  s.kind = ScenarioKind::Always;
  return s;
}

FaultScenario FaultScenario::probabilistic(double p, std::uint64_t seed) {
  FaultScenario s;
  s.kind = ScenarioKind::Probabilistic;
  s.probability = p;
  s.seed = seed;
  return s;
}

FaultScenario FaultScenario::every_nth(std::uint64_t n) {
  FaultScenario s;
  s.kind = ScenarioKind::EveryNth;
  s.nth = n;
  return s;
}

FaultScenario FaultScenario::window(sim::SimTime from, sim::SimTime to) {
  FaultScenario s;
  s.kind = ScenarioKind::Window;
  s.from = from;
  s.to = to;
  return s;
}

FaultScenario FaultScenario::crash_at_hit(std::uint64_t n) {
  FaultScenario s;
  s.kind = ScenarioKind::OnNth;
  s.fault = FaultKind::kCrash;
  s.nth = n;
  return s;
}

FaultScenario FaultScenario::burst(sim::SimTime first, sim::SimDuration period,
                                   sim::SimDuration duration) {
  FaultScenario s;
  s.kind = ScenarioKind::Burst;
  s.from = first;
  s.period = period;
  s.duration = duration;
  return s;
}

std::string FaultScenario::describe() const {
  char buf[128];
  switch (kind) {
    case ScenarioKind::Never:
      return "never";
    case ScenarioKind::Always:
      return "always";
    case ScenarioKind::Probabilistic:
      std::snprintf(buf, sizeof(buf), "p=%.3f seed=%llu", probability,
                    static_cast<unsigned long long>(seed));
      return buf;
    case ScenarioKind::EveryNth:
      std::snprintf(buf, sizeof(buf), "every %llu-th hit", static_cast<unsigned long long>(nth));
      return buf;
    case ScenarioKind::OnNth:
      std::snprintf(buf, sizeof(buf), "%s on hit %llu",
                    fault == FaultKind::kCrash ? "crash" : "fail",
                    static_cast<unsigned long long>(nth));
      return buf;
    case ScenarioKind::Window:
      return "down " + sim::format_time(from) + " .. " + sim::format_time(to);
    case ScenarioKind::Burst:
      std::snprintf(buf, sizeof(buf), "down %.1fh every %.1fh from %s", sim::to_hours(duration),
                    sim::to_hours(period), sim::format_time(from).c_str());
      return buf;
  }
  return "?";
}

FaultPoint::FaultPoint(std::string name) : name_(std::move(name)) {}

void FaultPoint::arm(FaultScenario scenario) {
  scenario_ = scenario;
  armed_hits_ = 0;
  if (scenario_.kind == ScenarioKind::Probabilistic) {
    rng_.emplace(scenario_.seed);
  } else {
    rng_.reset();
  }
}

void FaultPoint::reset_counters() {
  hits_ = 0;
  injected_ = 0;
  armed_hits_ = 0;
  if (scenario_.kind == ScenarioKind::Probabilistic) rng_.emplace(scenario_.seed);
}

bool FaultPoint::should_fail(sim::SimTime now) {
  ++hits_;
  if (scenario_.kind == ScenarioKind::Never) return false;
  ++armed_hits_;
  bool fail = false;
  switch (scenario_.kind) {
    case ScenarioKind::Never:
      break;
    case ScenarioKind::Always:
      fail = true;
      break;
    case ScenarioKind::Probabilistic:
      fail = rng_->bernoulli(scenario_.probability);
      break;
    case ScenarioKind::EveryNth:
      fail = scenario_.nth != 0 && armed_hits_ % scenario_.nth == 0;
      break;
    case ScenarioKind::OnNth:
      fail = scenario_.nth != 0 && armed_hits_ == scenario_.nth;
      break;
    case ScenarioKind::Window:
      fail = now >= scenario_.from && now < scenario_.to;
      break;
    case ScenarioKind::Burst: {
      if (scenario_.period <= 0 || now < scenario_.from) break;
      const sim::SimDuration phase = (now - scenario_.from) % scenario_.period;
      fail = phase < scenario_.duration;
      break;
    }
  }
  if (fail) ++injected_;
  return fail;
}

FaultPoint& FaultRegistry::point(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FaultPoint>(name)).first;
  }
  return *it->second;
}

const FaultPoint* FaultRegistry::find(const std::string& name) const {
  const auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

bool FaultRegistry::arm(const std::string& name, FaultScenario scenario) {
  point(name).arm(scenario);
  return true;
}

void FaultRegistry::disarm_all() {
  for (auto& [name, p] : points_) p->disarm();
}

void FaultRegistry::reset() {
  for (auto& [name, p] : points_) {
    p->disarm();
    p->reset_counters();
  }
}

std::uint64_t FaultRegistry::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& [name, p] : points_) total += p->injected();
  return total;
}

FaultRegistry& FaultRegistry::global() {
  thread_local FaultRegistry registry;
  return registry;
}

}  // namespace fraudsim::fault
