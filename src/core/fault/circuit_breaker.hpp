// Per-dependency circuit breaker (closed / open / half-open).
//
// Bounds the retry amplification an outage produces: after
// `failure_threshold` consecutive failures the circuit opens and callers
// fail fast without touching the dependency; after `cooldown` of sim time a
// single probe is let through (half-open) and the circuit closes again only
// after `half_open_successes` consecutive successes. All timing is SimTime
// supplied by the caller — no wall clock, fully deterministic.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/archive.hpp"

namespace fraudsim::fault {

struct CircuitBreakerConfig {
  std::uint64_t failure_threshold = 5;           // consecutive failures to trip
  sim::SimDuration cooldown = sim::minutes(5);   // open -> half-open probe delay
  std::uint64_t half_open_successes = 2;         // probes to close again
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  // May the caller attempt the dependency at `now`? Transitions Open ->
  // HalfOpen once the cooldown elapsed. In HalfOpen only one in-flight probe
  // is admitted at a time. Denied calls are counted in rejected().
  [[nodiscard]] bool allow(sim::SimTime now);

  void record_success(sim::SimTime now);
  void record_failure(sim::SimTime now);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t consecutive_failures() const { return consecutive_failures_; }

  // Checkpoint support.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  void trip(sim::SimTime now);

  CircuitBreakerConfig config_;
  State state_ = State::Closed;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  sim::SimTime opened_at_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t rejected_ = 0;
};

[[nodiscard]] const char* to_string(CircuitBreaker::State s);

}  // namespace fraudsim::fault
