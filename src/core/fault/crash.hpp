// Simulated process death for crash-consistency testing.
//
// A FaultPoint armed with a kCrash scenario (e.g. FaultScenario::crash_at_hit)
// models "the process was killed at this I/O boundary". The consulting writer
// first tears its in-flight bytes exactly as a real kill would — a prefix of
// the frame/file lands on disk — then unwinds via SimCrash instead of calling
// _exit, so one harness process can die and recover hundreds of times per
// sweep. Crash points are dedicated names (crash.journal.frame, ...) and are
// never shared with kError outage points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

#include "core/fault/fault.hpp"
#include "sim/time.hpp"

namespace fraudsim::fault {

// Canonical crash-point names, one per I/O boundary class.
inline constexpr char kCrashJournalFrame[] = "crash.journal.frame";
inline constexpr char kCrashJournalCheckpoint[] = "crash.journal.checkpoint";
inline constexpr char kCrashArtifactBody[] = "crash.artifact.body";
inline constexpr char kCrashArtifactRename[] = "crash.artifact.rename";
inline constexpr char kCrashManifestWrite[] = "crash.manifest.write";

// The simulated kill. Thrown from inside a writer after it has torn its
// in-flight bytes; harnesses catch it at the run boundary and hand the
// directory to recover::RecoveryManager.
class SimCrash : public std::exception {
 public:
  SimCrash(std::string point, sim::SimTime time);

  [[nodiscard]] const char* what() const noexcept override { return message_.c_str(); }
  [[nodiscard]] const std::string& point() const { return point_; }
  [[nodiscard]] sim::SimTime time() const { return time_; }

 private:
  std::string point_;
  sim::SimTime time_;
  std::string message_;
};

// Consults `point` in the global registry: true when an armed kCrash scenario
// fires on this hit. Unarmed points never consume randomness. A kError
// scenario armed on a crash point never fires here (and vice versa in the
// error-path should_fail callers), keeping the two fault families disjoint.
[[nodiscard]] bool crash_due(const std::string& point, sim::SimTime now);

// crash_due + throw: the one-liner writers call at each boundary AFTER
// tearing their in-flight write.
void maybe_crash(const std::string& point, sim::SimTime now);

// Deterministic kill-at-any-byte offset: how many of `size` in-flight bytes
// land on disk before the death. Always in [0, size) for size > 0 — a crash
// mid-write never completes the write — and varies with `salt` so successive
// crashes at the same point tear at different offsets.
[[nodiscard]] std::size_t torn_prefix(std::size_t size, std::uint64_t salt);

}  // namespace fraudsim::fault
