#include "core/fault/circuit_breaker.hpp"

namespace fraudsim::fault {

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed:
      return "closed";
    case CircuitBreaker::State::Open:
      return "open";
    case CircuitBreaker::State::HalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {}

bool CircuitBreaker::allow(sim::SimTime now) {
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now - opened_at_ >= config_.cooldown) {
        state_ = State::HalfOpen;
        half_open_successes_ = 0;
        probe_in_flight_ = true;
        return true;
      }
      ++rejected_;
      return false;
    case State::HalfOpen:
      if (probe_in_flight_) {
        ++rejected_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(sim::SimTime) {
  consecutive_failures_ = 0;
  if (state_ == State::HalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.half_open_successes) {
      state_ = State::Closed;
    }
  }
}

void CircuitBreaker::record_failure(sim::SimTime now) {
  if (state_ == State::HalfOpen) {
    // The probe failed: the dependency is still down, reopen immediately.
    probe_in_flight_ = false;
    trip(now);
    return;
  }
  if (state_ == State::Closed && ++consecutive_failures_ >= config_.failure_threshold) {
    trip(now);
  }
}

void CircuitBreaker::trip(sim::SimTime now) {
  state_ = State::Open;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++trips_;
}

void CircuitBreaker::checkpoint(util::ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(state_));
  out.u64(consecutive_failures_);
  out.u64(half_open_successes_);
  out.boolean(probe_in_flight_);
  out.i64(opened_at_);
  out.u64(trips_);
  out.u64(rejected_);
}

void CircuitBreaker::restore(util::ByteReader& in) {
  state_ = static_cast<State>(in.u8());
  consecutive_failures_ = in.u64();
  half_open_successes_ = in.u64();
  probe_in_flight_ = in.boolean();
  opened_at_ = in.i64();
  trips_ = in.u64();
  rejected_ = in.u64();
}

}  // namespace fraudsim::fault
