// Retry policy: exponential backoff with deterministic jitter.
//
// The shape every platform daemon uses for transient dependency failures —
// base delay doubling per attempt up to a cap, plus a jitter fraction so
// synchronized clients do not retry in lockstep. All delays are sim-time and
// the jitter draw comes from a caller-owned sim::Rng, preserving the
// no-wall-clock determinism invariant. Unbounded retries are the attacker-
// amplifiable failure mode the outage bench measures; max_attempts is the
// first bound, the CircuitBreaker is the second.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace fraudsim::fault {

struct RetryPolicy {
  // Total delivery attempts per operation, including the first (0 = no
  // retries at all).
  int max_attempts = 4;
  sim::SimDuration base_delay = sim::seconds(30);
  double multiplier = 2.0;
  sim::SimDuration max_delay = sim::minutes(30);
  // Uniform jitter as a fraction of the backoff: delay * [1-j, 1+j).
  double jitter = 0.2;

  // True if another attempt is allowed after `attempts_made` tries.
  [[nodiscard]] bool should_retry(int attempts_made) const { return attempts_made < max_attempts; }

  // Backoff before retry number `retry` (1 = first retry), without jitter.
  [[nodiscard]] sim::SimDuration backoff(int retry) const;

  // Backoff with jitter drawn from `rng`. Never below 1 ms so a retry never
  // lands on the failing attempt's own timestamp.
  [[nodiscard]] sim::SimDuration delay(int retry, sim::Rng& rng) const;
};

}  // namespace fraudsim::fault
