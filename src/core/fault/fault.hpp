// KEDR-style deterministic fault injection.
//
// Production components declare named FaultPoints ("sms.carrier.send",
// "fp.store.record", ...) and consult them on every guarded operation; test
// harnesses and outage scenarios arm the points with a FaultScenario that
// decides, deterministically, which hits fail. Points live in a process-wide
// FaultRegistry so scenarios can reach into any layer without plumbing.
//
// Determinism invariants:
//   * an unarmed point never consumes randomness — with every scenario
//     disarmed the guarded code is a pass-through and byte-identical to a
//     build without fault injection;
//   * a probabilistic scenario draws from its own sim::Rng stream seeded at
//     arm time, so identical seeds reproduce identical fault sequences
//     regardless of what other subsystems consume;
//   * time-based scenarios read only the caller-supplied SimTime — the
//     library-wide no-wall-clock rule holds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace fraudsim::fault {

enum class ScenarioKind : std::uint8_t {
  Never,          // disarmed: the point is a pass-through
  Always,         // every hit fails
  Probabilistic,  // each hit fails with probability p (own seeded stream)
  EveryNth,       // hits n, 2n, 3n, ... fail (counted from arm time)
  OnNth,          // exactly hit n fails (kill-at-one-point crash injection)
  Window,         // every hit inside [from, to) fails — a dependency outage
  Burst,          // repeating outages: down for `duration` every `period`
};

[[nodiscard]] const char* to_string(ScenarioKind k);

// What a firing point models. kError points return failure to the guarded
// call (dependency outage); kCrash points simulate a process death at an I/O
// boundary — the consulting code tears its in-flight write and unwinds via a
// fault::SimCrash exception (see core/fault/crash.hpp) instead of returning.
enum class FaultKind : std::uint8_t { kError, kCrash };

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultScenario {
  ScenarioKind kind = ScenarioKind::Never;
  FaultKind fault = FaultKind::kError;
  double probability = 0.0;          // Probabilistic
  std::uint64_t seed = 0;            // Probabilistic stream seed
  std::uint64_t nth = 0;             // EveryNth / OnNth
  sim::SimTime from = 0;             // Window / Burst phase origin
  sim::SimTime to = 0;               // Window
  sim::SimDuration period = 0;       // Burst
  sim::SimDuration duration = 0;     // Burst outage length per period

  [[nodiscard]] static FaultScenario never() { return {}; }
  [[nodiscard]] static FaultScenario always();
  [[nodiscard]] static FaultScenario probabilistic(double p, std::uint64_t seed);
  [[nodiscard]] static FaultScenario every_nth(std::uint64_t n);
  [[nodiscard]] static FaultScenario window(sim::SimTime from, sim::SimTime to);
  [[nodiscard]] static FaultScenario burst(sim::SimTime first, sim::SimDuration period,
                                           sim::SimDuration duration);
  // Crash exactly on the n-th hit since arm (1 = the very next hit): the
  // deterministic "kill the process at I/O boundary N" scenario.
  [[nodiscard]] static FaultScenario crash_at_hit(std::uint64_t n);

  // Human-readable, for fault tables and SOC reports.
  [[nodiscard]] std::string describe() const;
};

// One named branching point. Stable in memory for the process lifetime —
// components cache references at construction.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name);

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  // The guarded call: records the hit and returns true when the armed
  // scenario injects a fault. Unarmed points always return false and never
  // touch randomness.
  [[nodiscard]] bool should_fail(sim::SimTime now);

  void arm(FaultScenario scenario);
  void disarm() { arm(FaultScenario::never()); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool armed() const { return scenario_.kind != ScenarioKind::Never; }
  [[nodiscard]] const FaultScenario& scenario() const { return scenario_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

  // Zeroes counters (keeps the armed scenario; re-seeds its stream).
  void reset_counters();

 private:
  std::string name_;
  FaultScenario scenario_;
  std::optional<sim::Rng> rng_;       // Probabilistic stream, set at arm time
  std::uint64_t hits_ = 0;            // lifetime hits
  std::uint64_t armed_hits_ = 0;      // hits since last arm (EveryNth phase)
  std::uint64_t injected_ = 0;
};

// Per-thread registry. Points are created on first use and live as long as
// the owning thread, so cached references stay valid across reset().
// Iteration order is the point name order — deterministic for reports.
//
// global() is thread_local (not process-wide): every FaultPoint mutates hit
// counters on each guarded call, so sharing one registry across the fleet
// runner's worker threads would both race and let one scenario's faults leak
// into a concurrently running scenario. A worker thread that arms nothing gets
// a pristine registry, which is exactly the serial single-thread behaviour.
class FaultRegistry {
 public:
  // Get-or-create.
  [[nodiscard]] FaultPoint& point(const std::string& name);
  [[nodiscard]] const FaultPoint* find(const std::string& name) const;

  bool arm(const std::string& name, FaultScenario scenario);
  void disarm_all();
  // Disarm every point and zero all counters: the clean-slate state a
  // deterministic scenario starts from.
  void reset();

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::uint64_t total_injected() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, p] : points_) fn(*p);
  }

  [[nodiscard]] static FaultRegistry& global();

 private:
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
};

// Shorthand for guarding a call site through the global registry. Callers on
// hot paths should cache the FaultPoint& instead.
[[nodiscard]] inline bool should_fail(const std::string& name, sim::SimTime now) {
  return FaultRegistry::global().point(name).should_fail(now);
}

}  // namespace fraudsim::fault
