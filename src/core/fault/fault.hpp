// KEDR-style deterministic fault injection.
//
// Production components declare named FaultPoints ("sms.carrier.send",
// "fp.store.record", ...) and consult them on every guarded operation; test
// harnesses and outage scenarios arm the points with a FaultScenario that
// decides, deterministically, which hits fail. Points live in a process-wide
// FaultRegistry so scenarios can reach into any layer without plumbing.
//
// Determinism invariants:
//   * an unarmed point never consumes randomness — with every scenario
//     disarmed the guarded code is a pass-through and byte-identical to a
//     build without fault injection;
//   * a probabilistic scenario draws from its own sim::Rng stream seeded at
//     arm time, so identical seeds reproduce identical fault sequences
//     regardless of what other subsystems consume;
//   * time-based scenarios read only the caller-supplied SimTime — the
//     library-wide no-wall-clock rule holds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/archive.hpp"

namespace fraudsim::fault {

enum class ScenarioKind : std::uint8_t {
  Never,          // disarmed: the point is a pass-through
  Always,         // every hit fails
  Probabilistic,  // each hit fails with probability p (own seeded stream)
  EveryNth,       // hits n, 2n, 3n, ... fail (counted from arm time)
  OnNth,          // exactly hit n fails (kill-at-one-point crash injection)
  Window,         // every hit inside [from, to) fails — a dependency outage
  Burst,          // repeating outages: down for `duration` every `period`
};

[[nodiscard]] const char* to_string(ScenarioKind k);

// What a firing point models. kError points return failure to the guarded
// call (dependency outage); kCrash points simulate a process death at an I/O
// boundary — the consulting code tears its in-flight write and unwinds via a
// fault::SimCrash exception (see core/fault/crash.hpp) instead of returning;
// kLatency points charge extra sim-time to the guarded operation (a slow
// dependency rather than a dead one), so deadline budgets bite.
enum class FaultKind : std::uint8_t { kError, kCrash, kLatency };

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultScenario {
  ScenarioKind kind = ScenarioKind::Never;
  FaultKind fault = FaultKind::kError;
  double probability = 0.0;          // Probabilistic
  std::uint64_t seed = 0;            // Probabilistic stream seed
  std::uint64_t nth = 0;             // EveryNth / OnNth
  sim::SimTime from = 0;             // Window / Burst phase origin
  sim::SimTime to = 0;               // Window
  sim::SimDuration period = 0;       // Burst
  sim::SimDuration duration = 0;     // Burst outage length per period
  sim::SimDuration latency = 0;      // kLatency: delay charged per firing hit

  [[nodiscard]] static FaultScenario never() { return {}; }
  [[nodiscard]] static FaultScenario always();
  [[nodiscard]] static FaultScenario probabilistic(double p, std::uint64_t seed);
  [[nodiscard]] static FaultScenario every_nth(std::uint64_t n);
  [[nodiscard]] static FaultScenario window(sim::SimTime from, sim::SimTime to);
  [[nodiscard]] static FaultScenario burst(sim::SimTime first, sim::SimDuration period,
                                           sim::SimDuration duration);
  // Crash exactly on the n-th hit since arm (1 = the very next hit): the
  // deterministic "kill the process at I/O boundary N" scenario.
  [[nodiscard]] static FaultScenario crash_at_hit(std::uint64_t n);

  // Reinterpret any firing pattern as a latency spike: hits that would fail
  // instead charge `delay` of sim time to the guarded operation. Composes
  // with the pattern factories, e.g. burst(...).with_latency(seconds(2)).
  [[nodiscard]] FaultScenario with_latency(sim::SimDuration delay) const;

  // Human-readable, for fault tables and SOC reports.
  [[nodiscard]] std::string describe() const;

  // Byte-stable serialisation (chaos schedules, registry checkpoints).
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);
};

// Outcome of consulting a FaultPoint once. Exactly one consult per guarded
// operation: `fired` says the armed pattern matched this hit, and the fault
// kind routes the effect — an error return, extra charged sim-time latency,
// or (for kCrash, which crash_due() owns) neither.
struct FaultAction {
  bool fired = false;              // the armed pattern matched this hit
  bool error = false;              // guarded call must fail (kError)
  sim::SimDuration latency = 0;    // extra sim-time to charge (kLatency)
};

// One named branching point. Stable in memory for the process lifetime —
// components cache references at construction.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name);

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  // The guarded call: records the hit and routes the armed scenario's effect
  // by fault kind. Unarmed points always return a no-op action and never
  // touch randomness. Exactly one consult per guarded operation.
  [[nodiscard]] FaultAction consult(sim::SimTime now);

  // Error-only shorthand: true when an armed kError scenario fires on this
  // hit. Call sites that also honour latency injection use consult().
  [[nodiscard]] bool should_fail(sim::SimTime now) { return consult(now).error; }

  void arm(FaultScenario scenario);
  void disarm() { arm(FaultScenario::never()); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool armed() const { return scenario_.kind != ScenarioKind::Never; }
  [[nodiscard]] const FaultScenario& scenario() const { return scenario_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

  // Zeroes counters (keeps the armed scenario; re-seeds its stream).
  void reset_counters();

  // Byte-stable state capture: armed scenario, hit/injection counters, and
  // the probabilistic stream mid-sequence. A restored point continues the
  // exact fault sequence the checkpointed one would have produced.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  std::string name_;
  FaultScenario scenario_;
  std::optional<sim::Rng> rng_;       // Probabilistic stream, set at arm time
  std::uint64_t hits_ = 0;            // lifetime hits
  std::uint64_t armed_hits_ = 0;      // hits since last arm (EveryNth phase)
  std::uint64_t injected_ = 0;
};

// Per-thread registry. Points are created on first use and live as long as
// the owning thread, so cached references stay valid across reset().
// Iteration order is the point name order — deterministic for reports.
//
// global() is thread_local (not process-wide): every FaultPoint mutates hit
// counters on each guarded call, so sharing one registry across the fleet
// runner's worker threads would both race and let one scenario's faults leak
// into a concurrently running scenario. A worker thread that arms nothing gets
// a pristine registry, which is exactly the serial single-thread behaviour.
class FaultRegistry {
 public:
  // Get-or-create.
  [[nodiscard]] FaultPoint& point(const std::string& name);
  [[nodiscard]] const FaultPoint* find(const std::string& name) const;

  bool arm(const std::string& name, FaultScenario scenario);
  void disarm_all();
  // Disarm every point and zero all counters: the clean-slate state a
  // deterministic scenario starts from.
  void reset();

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t armed_count() const;
  [[nodiscard]] std::uint64_t total_injected() const;

  // Byte-stable registry checkpoint: every armed non-crash point (name-sorted
  // — points_ is a std::map) with its scenario, counters and stream state.
  // Crash-kind scenarios are excluded (the process killer is external state a
  // restart does not re-inherit); unarmed points are excluded (their lifetime
  // counters never influence future firing). restore() is a full replace:
  // points absent from the blob are reset, points in the blob are
  // get-or-created, so a restored run re-fires the surviving schedule exactly
  // where the checkpointed one left off.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, p] : points_) fn(*p);
  }

  [[nodiscard]] static FaultRegistry& global();

 private:
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
};

// Shorthand for guarding a call site through the global registry. Callers on
// hot paths should cache the FaultPoint& instead.
[[nodiscard]] inline bool should_fail(const std::string& name, sim::SimTime now) {
  return FaultRegistry::global().point(name).should_fail(now);
}

// RAII isolation for one fleet job (or test) using the thread-local registry:
// resets on entry so the job starts from a clean slate, asserts on entry that
// the previous job really did clean up (scenario leakage between jobs breaks
// byte-identity silently, long after the leaking job finished), and resets on
// exit so the next job inherits nothing — armed scenarios, hit counters or
// probabilistic stream positions.
class ScopedFaultReset {
 public:
  ScopedFaultReset();
  ~ScopedFaultReset();

  ScopedFaultReset(const ScopedFaultReset&) = delete;
  ScopedFaultReset& operator=(const ScopedFaultReset&) = delete;

  // True when the registry was dirty (armed points or live counters) at
  // construction — the leak the guard exists to catch.
  [[nodiscard]] bool leaked_on_entry() const { return leaked_on_entry_; }

 private:
  bool leaked_on_entry_ = false;
};

}  // namespace fraudsim::fault
