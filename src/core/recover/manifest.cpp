#include "core/recover/manifest.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/fault/crash.hpp"
#include "util/hash.hpp"

namespace fraudsim::recover {

namespace {

constexpr char kHeaderLine[] = "fraudsim-manifest v1";

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = in.is_open();
  if (!ok) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_hex32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out, 16);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// Splits on single spaces; manifests never contain empty fields.
std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return fields;
}

}  // namespace

void Manifest::add(std::string rel_path, std::uint64_t size, std::uint32_t crc) {
  artifacts.push_back(ManifestEntry{std::move(rel_path), size, crc});
}

void Manifest::add(const WrittenArtifact& written, std::string rel_path) {
  add(std::move(rel_path), written.size, written.crc);
}

const ManifestEntry* Manifest::find(std::string_view rel_path) const {
  for (const auto& entry : artifacts) {
    if (entry.path == rel_path) return &entry;
  }
  return nullptr;
}

std::string Manifest::render() const {
  std::ostringstream out;
  out << kHeaderLine << "\n";
  out << "seed " << seed << "\n";
  out << "config " << config_digest << "\n";
  for (const auto& entry : artifacts) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", entry.crc);
    out << "artifact " << entry.path << " " << entry.size << " " << crc_hex << "\n";
  }
  std::string body = out.str();
  char self_hex[16];
  std::snprintf(self_hex, sizeof(self_hex), "%08x", util::crc32(body));
  body += "crc ";
  body += self_hex;
  body += "\n";
  return body;
}

util::Result<Manifest> Manifest::parse(std::string_view text) {
  using R = util::Result<Manifest>;
  const auto fail = [](const std::string& why) {
    return R::fail(util::ErrorCode::kManifestMismatch, "manifest: " + why);
  };

  // The self-CRC covers every byte before the final "crc ..." line.
  if (text.empty() || text.back() != '\n') return fail("missing trailing newline");
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2);
  const std::size_t crc_line_start = last_line_start == std::string_view::npos
                                         ? 0
                                         : last_line_start + 1;
  std::string_view crc_line = text.substr(crc_line_start);
  crc_line.remove_suffix(1);  // '\n'
  const auto crc_fields = split_fields(crc_line);
  std::uint32_t declared = 0;
  if (crc_fields.size() != 2 || crc_fields[0] != "crc" || !parse_hex32(crc_fields[1], declared)) {
    return fail("missing self-CRC line");
  }
  const std::string_view body = text.substr(0, crc_line_start);
  if (util::crc32(body) != declared) return fail("self-CRC mismatch (torn or edited)");

  Manifest m;
  std::size_t pos = 0;
  int line_no = 0;
  bool saw_seed = false;
  bool saw_config = false;
  while (pos < body.size()) {
    const std::size_t eol = body.find('\n', pos);
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kHeaderLine) return fail("bad header line");
      continue;
    }
    const auto fields = split_fields(line);
    if (fields.size() == 2 && fields[0] == "seed") {
      if (!parse_u64(fields[1], m.seed)) return fail("bad seed line");
      saw_seed = true;
    } else if (fields.size() == 2 && fields[0] == "config") {
      if (!parse_u64(fields[1], m.config_digest)) return fail("bad config line");
      saw_config = true;
    } else if (fields.size() == 4 && fields[0] == "artifact") {
      ManifestEntry entry;
      entry.path = std::string(fields[1]);
      if (entry.path.empty() || !parse_u64(fields[2], entry.size) ||
          !parse_hex32(fields[3], entry.crc)) {
        return fail("bad artifact line " + std::to_string(line_no));
      }
      m.artifacts.push_back(std::move(entry));
    } else {
      return fail("unrecognised line " + std::to_string(line_no));
    }
  }
  if (!saw_seed || !saw_config) return fail("seed/config lines missing");
  return R::ok(std::move(m));
}

util::Result<Manifest> Manifest::load(const std::string& path) {
  bool ok = false;
  const std::string text = read_file(path, ok);
  if (!ok) {
    return util::Result<Manifest>::fail(util::ErrorCode::kNotFound,
                                        "manifest: cannot open " + path);
  }
  return parse(text);
}

util::Status Manifest::write(const std::string& dir, sim::SimTime now) const {
  const std::string path = (std::filesystem::path(dir) / kManifestFilename).string();
  const std::string text = render();

  if (fault::crash_due(fault::kCrashManifestWrite, now)) {
    // Worst-case residue: a torn manifest under its FINAL name. The self-CRC
    // is what stops recovery from trusting it.
    const auto& point = fault::FaultRegistry::global().point(fault::kCrashManifestWrite);
    const std::size_t cut = fault::torn_prefix(text.size(), point.hits());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out.is_open()) {
      out.write(text.data(), static_cast<std::streamsize>(cut));
      out.flush();
    }
    throw fault::SimCrash(fault::kCrashManifestWrite, now);
  }

  auto written = AtomicFile::write(path, text, now);
  if (!written) return util::Status::fail(written.code(), written.error());
  return util::Status::ok();
}

ManifestAudit audit_artifacts(const Manifest& manifest, const std::string& dir) {
  ManifestAudit audit;
  for (const auto& entry : manifest.artifacts) {
    const std::string path = (std::filesystem::path(dir) / entry.path).string();
    bool ok = false;
    const std::string content = read_file(path, ok);
    if (!ok) {
      audit.missing.push_back(entry.path);
      continue;
    }
    if (content.size() != entry.size || util::crc32(content) != entry.crc) {
      audit.mismatched.push_back(entry.path);
      continue;
    }
    audit.intact.push_back(entry.path);
  }
  return audit;
}

}  // namespace fraudsim::recover
