#include "core/recover/atomic_file.hpp"

#include <cstdio>
#include <fstream>

#include "core/fault/crash.hpp"
#include "util/hash.hpp"

namespace fraudsim::recover {

namespace {

// Best-effort removal of a tmp file after a failed write; the quarantine
// sweep catches anything left behind.
void discard(const std::string& tmp) { std::remove(tmp.c_str()); }

}  // namespace

util::Result<WrittenArtifact> AtomicFile::write(const std::string& path, std::string_view content,
                                                sim::SimTime now) {
  const std::string tmp = path + kTmpSuffix;
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return util::Result<WrittenArtifact>::fail(util::ErrorCode::kIoWriteFailed,
                                               "atomic-file: cannot open " + tmp);
  }

  if (fault::crash_due(fault::kCrashArtifactBody, now)) {
    // Simulated kill mid-body: a prefix of the content reaches disk, then
    // the process "dies" with the .tmp still holding the torn bytes.
    const auto& point = fault::FaultRegistry::global().point(fault::kCrashArtifactBody);
    const std::size_t cut = fault::torn_prefix(content.size(), point.hits());
    out.write(content.data(), static_cast<std::streamsize>(cut));
    out.flush();
    out.close();
    throw fault::SimCrash(fault::kCrashArtifactBody, now);
  }

  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (out.fail()) {
    out.close();
    discard(tmp);
    return util::Result<WrittenArtifact>::fail(util::ErrorCode::kIoWriteFailed,
                                               "atomic-file: flush failed for " + tmp);
  }
  out.close();

  if (fault::crash_due(fault::kCrashArtifactRename, now)) {
    // Simulated kill between flush and rename: complete .tmp, no final file.
    throw fault::SimCrash(fault::kCrashArtifactRename, now);
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    discard(tmp);
    return util::Result<WrittenArtifact>::fail(util::ErrorCode::kIoWriteFailed,
                                               "atomic-file: rename to " + path + " failed");
  }

  WrittenArtifact written;
  written.path = path;
  written.size = content.size();
  written.crc = util::crc32(content);
  return util::Result<WrittenArtifact>::ok(std::move(written));
}

}  // namespace fraudsim::recover
