// Startup recovery for a (possibly interrupted) recorded-run directory.
//
// Run-directory layout (written by scenario::record_run_dir / fleet_sweep):
//
//   run.journal                 append-only FSJ1 traffic journal
//   checkpoints/cp-<time>.fsc   sidecar checkpoint blobs (format below)
//   metrics.csv, weblog.csv,
//   soc_report.txt, ...         plain artifacts, CRCs recorded in the manifest
//   MANIFEST.fsm                CRC'd manifest, written LAST (the commit point)
//   quarantine/                 forensic residue moved aside by recovery
//
// Sidecar checkpoint format (binary, little-endian via util::ByteWriter):
//
//   "FSC1" | u32 version | u64 seed | u64 config_digest | i64 sim_time_ms
//          | u32 blob_len | u32 crc32(blob) | blob
//
// Sidecars duplicate the Checkpoint journal frames so recovery can restore
// from the newest intact checkpoint even when the crash tore exactly the
// journal frame that embedded it.
//
// RecoveryManager::repair() turns any crash residue into a verified state:
// `.tmp` files and CRC-bad artifacts are moved to quarantine/, a torn journal
// tail is truncated to the last good frame (tail bytes quarantined), and the
// newest intact checkpoint is selected. What repair() cannot do is resume a
// live simulation mid-flight — traffic-generator closures are not
// checkpointable — so scenario::recover_run() finishes the job: it verifies
// the salvaged journal prefix by checkpoint-anchored replay, then re-records
// deterministically and proves the salvaged prefix byte-matches the fresh
// journal. The result is byte-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/recover/atomic_file.hpp"
#include "sim/time.hpp"
#include "util/result.hpp"

namespace fraudsim::recover {

inline constexpr char kJournalFilename[] = "run.journal";
inline constexpr char kCheckpointDir[] = "checkpoints";
inline constexpr char kQuarantineDir[] = "quarantine";
inline constexpr char kCheckpointMagic[4] = {'F', 'S', 'C', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct SidecarCheckpoint {
  std::uint64_t seed = 0;
  std::uint64_t config_digest = 0;
  sim::SimTime time = 0;
  std::string blob;  // platform state, same bytes as the Checkpoint journal record
};

// `<dir>/checkpoints/cp-<time>.fsc`.
[[nodiscard]] std::string checkpoint_sidecar_path(const std::string& run_dir, sim::SimTime time);

// Atomic write (consults the artifact crash points). Returns size/CRC of the
// encoded sidecar for manifest registration.
[[nodiscard]] util::Result<WrittenArtifact> write_checkpoint_sidecar(const std::string& path,
                                                                     const SidecarCheckpoint& cp);

// Strict read: bad magic/version/CRC or a short blob fails with
// kCheckpointMismatch.
[[nodiscard]] util::Result<SidecarCheckpoint> read_checkpoint_sidecar(const std::string& path);

// Everything scan()/repair() learned about the directory, renderable for the
// crash_drill CLI and SOC-style reports.
struct RecoveryReport {
  bool manifest_found = false;
  bool manifest_valid = false;
  bool run_complete = false;           // valid manifest and every artifact intact
  bool journal_found = false;
  bool journal_salvaged = false;       // an intact journal prefix survives
  bool journal_corrupt_mid_file = false;
  std::uint64_t frames_salvaged = 0;   // intact frames incl. Header
  std::uint64_t tail_bytes_quarantined = 0;
  std::vector<std::string> intact_artifacts;    // manifest-verified, relative paths
  std::vector<std::string> damaged_artifacts;   // missing or CRC-mismatched
  std::vector<std::string> quarantined;         // files moved to quarantine/ (relative)
  std::string checkpoint_used;         // sidecar filename, "" = cold start
  sim::SimTime checkpoint_time = 0;

  [[nodiscard]] std::string render() const;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(std::string run_dir);

  // Read-only assessment: what is intact, what is damaged, what repair()
  // would quarantine. Never modifies the directory.
  [[nodiscard]] util::Result<RecoveryReport> scan() const;

  // Destructive repair: quarantines `.tmp` residue, damaged artifacts and
  // torn/invalid checkpoints, truncates a torn journal tail (tail bytes to
  // quarantine/run.journal.tail), and picks the newest intact checkpoint.
  // After a successful repair every byte left outside quarantine/ is
  // verified. Idempotent: repairing a repaired directory changes nothing.
  [[nodiscard]] util::Result<RecoveryReport> repair() const;

  [[nodiscard]] const std::string& run_dir() const { return run_dir_; }

 private:
  [[nodiscard]] util::Result<RecoveryReport> run(bool mutate) const;

  std::string run_dir_;
};

}  // namespace fraudsim::recover
