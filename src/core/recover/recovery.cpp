#include "core/recover/recovery.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/journal/journal.hpp"
#include "core/recover/manifest.hpp"
#include "util/archive.hpp"
#include "util/hash.hpp"

namespace fraudsim::recover {

namespace fs = std::filesystem;

std::string checkpoint_sidecar_path(const std::string& run_dir, sim::SimTime time) {
  char name[64];
  std::snprintf(name, sizeof(name), "cp-%012lld.fsc", static_cast<long long>(time));
  return (fs::path(run_dir) / kCheckpointDir / name).string();
}

util::Result<WrittenArtifact> write_checkpoint_sidecar(const std::string& path,
                                                       const SidecarCheckpoint& cp) {
  util::ByteWriter w;
  w.raw(std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic)));
  w.u32(kCheckpointVersion);
  w.u64(cp.seed);
  w.u64(cp.config_digest);
  w.i64(cp.time);
  w.u32(static_cast<std::uint32_t>(cp.blob.size()));
  w.u32(util::crc32(cp.blob));
  w.raw(cp.blob);
  return AtomicFile::write(path, w.bytes(), cp.time);
}

util::Result<SidecarCheckpoint> read_checkpoint_sidecar(const std::string& path) {
  using R = util::Result<SidecarCheckpoint>;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return R::fail(util::ErrorCode::kNotFound, "checkpoint: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  const auto bad = [&path](const std::string& why) {
    return R::fail(util::ErrorCode::kCheckpointMismatch, "checkpoint: " + why + " in " + path);
  };
  if (bytes.size() < sizeof(kCheckpointMagic) ||
      std::string_view(bytes.data(), sizeof(kCheckpointMagic)) !=
          std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic))) {
    return bad("bad magic");
  }
  util::ByteReader r(std::string_view(bytes).substr(sizeof(kCheckpointMagic)));
  const std::uint32_t version = r.u32();
  SidecarCheckpoint cp;
  cp.seed = r.u64();
  cp.config_digest = r.u64();
  cp.time = r.i64();
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (!r.ok() || version != kCheckpointVersion) return bad("bad header");
  if (r.remaining() != len) return bad("torn blob");
  // Fixed header: 4 magic + 4 version + 8 seed + 8 digest + 8 time + 4 len
  // + 4 crc = 40 bytes; the blob is everything after it.
  cp.blob = bytes.substr(40);
  if (util::crc32(cp.blob) != crc) return bad("blob CRC mismatch");
  return R::ok(std::move(cp));
}

std::string RecoveryReport::render() const {
  std::ostringstream out;
  out << "recovery report\n";
  out << "  run complete:    " << (run_complete ? "yes" : "no") << "\n";
  out << "  manifest:        "
      << (!manifest_found ? "missing" : manifest_valid ? "valid" : "corrupt (quarantined)")
      << "\n";
  out << "  journal:         ";
  if (!journal_found) {
    out << "missing\n";
  } else if (journal_corrupt_mid_file) {
    out << "corrupt mid-file (quarantined whole)\n";
  } else {
    out << (journal_salvaged ? "salvaged" : "unusable") << ", " << frames_salvaged
        << " frames intact";
    if (tail_bytes_quarantined > 0) {
      out << ", " << tail_bytes_quarantined << " torn tail bytes quarantined";
    }
    out << "\n";
  }
  out << "  checkpoint used: "
      << (checkpoint_used.empty()
              ? "none (cold start)"
              : checkpoint_used + " @ " + sim::format_time(checkpoint_time))
      << "\n";
  out << "  artifacts:       " << intact_artifacts.size() << " intact, "
      << damaged_artifacts.size() << " damaged\n";
  for (const auto& a : damaged_artifacts) out << "    damaged: " << a << "\n";
  for (const auto& q : quarantined) out << "    quarantined: " << q << "\n";
  return out.str();
}

RecoveryManager::RecoveryManager(std::string run_dir) : run_dir_(std::move(run_dir)) {}

util::Result<RecoveryReport> RecoveryManager::scan() const { return run(/*mutate=*/false); }
util::Result<RecoveryReport> RecoveryManager::repair() const { return run(/*mutate=*/true); }

util::Result<RecoveryReport> RecoveryManager::run(bool mutate) const {
  using R = util::Result<RecoveryReport>;
  const fs::path root(run_dir_);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return R::fail(util::ErrorCode::kNotFound, "recovery: no run directory " + run_dir_);
  }

  RecoveryReport report;
  const fs::path quarantine = root / kQuarantineDir;

  // Moves `rel` (relative to the run dir) into quarantine/, preserving the
  // relative layout. Records the move either way so scan() previews it.
  const auto quarantine_file = [&](const std::string& rel) {
    report.quarantined.push_back(rel);
    if (!mutate) return;
    const fs::path dest = quarantine / rel;
    std::error_code move_ec;
    fs::create_directories(dest.parent_path(), move_ec);
    fs::rename(root / rel, dest, move_ec);
  };

  // Deterministic directory listing: sorted relative paths, one level of
  // checkpoints/ nesting (the only subdirectory a run writes besides
  // quarantine/, which is never rescanned).
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory()) {
      if (entry.path().filename() == kQuarantineDir) continue;
      for (const auto& sub : fs::directory_iterator(entry.path(), ec)) {
        if (sub.is_regular_file()) {
          files.push_back((entry.path().filename() / sub.path().filename()).string());
        }
      }
    } else if (entry.is_regular_file()) {
      files.push_back(entry.path().filename().string());
    }
  }
  std::sort(files.begin(), files.end());

  // 1. `.tmp` residue: a crash between open and rename. Always quarantined.
  for (const auto& rel : files) {
    if (rel.size() > 4 && rel.compare(rel.size() - 4, 4, kTmpSuffix) == 0) {
      quarantine_file(rel);
    }
  }

  // 2. Manifest: decides whether this directory is a completed run.
  const std::string manifest_path = (root / kManifestFilename).string();
  auto manifest = Manifest::load(manifest_path);
  if (manifest) {
    report.manifest_found = true;
    report.manifest_valid = true;
    const ManifestAudit audit = audit_artifacts(manifest.value(), run_dir_);
    report.intact_artifacts = audit.intact;
    report.damaged_artifacts = audit.missing;
    for (const auto& rel : audit.mismatched) {
      report.damaged_artifacts.push_back(rel);
      quarantine_file(rel);
    }
    std::sort(report.damaged_artifacts.begin(), report.damaged_artifacts.end());
    report.run_complete = audit.clean();
  } else if (manifest.code() == util::ErrorCode::kManifestMismatch) {
    report.manifest_found = true;
    quarantine_file(kManifestFilename);
  }

  // 3. Journal: truncate a torn tail to the last good frame; mid-file
  // corruption (or a destroyed header) voids the file entirely.
  const std::string journal_path = (root / kJournalFilename).string();
  auto scanned = journal::scan_journal(journal_path);
  if (scanned || scanned.code() == util::ErrorCode::kJournalCorrupt) {
    report.journal_found = true;
  }
  if (scanned) {
    const journal::JournalScan& scan = scanned.value();
    report.frames_salvaged = scan.frames;
    report.journal_salvaged = scan.has_header && !scan.corrupt_mid_file;
    report.journal_corrupt_mid_file = scan.corrupt_mid_file;
    if (scan.corrupt_mid_file || (!scan.has_header && scan.frames == 0 && scan.torn_tail)) {
      // Unrecoverable at frame level (even the header is gone): keep the
      // whole file for forensics, recovery falls back to a full re-record.
      report.journal_salvaged = false;
      report.frames_salvaged = 0;
      quarantine_file(kJournalFilename);
    } else if (scan.torn_tail && !report.run_complete) {
      report.tail_bytes_quarantined = scan.tail_bytes();
      if (mutate) {
        const fs::path tail = quarantine / (std::string(kJournalFilename) + ".tail");
        std::error_code dir_ec;
        fs::create_directories(quarantine, dir_ec);
        auto repaired = journal::truncate_torn_tail(journal_path, tail.string());
        if (!repaired) return R::fail(repaired.code(), repaired.error());
        report.quarantined.push_back(std::string(kJournalFilename) + ".tail");
      }
    }
  } else if (scanned.code() == util::ErrorCode::kJournalCorrupt) {
    // Not even the magic survived.
    report.journal_corrupt_mid_file = true;
    quarantine_file(kJournalFilename);
  }

  // 4. Checkpoint sidecars: validate all, keep the newest intact one.
  for (const auto& rel : files) {
    if (rel.rfind(std::string(kCheckpointDir) + "/", 0) != 0) continue;
    if (rel.size() < 4 || rel.compare(rel.size() - 4, 4, ".fsc") != 0) continue;
    auto cp = read_checkpoint_sidecar((root / rel).string());
    if (!cp) {
      quarantine_file(rel);
      continue;
    }
    if (cp.value().time >= report.checkpoint_time || report.checkpoint_used.empty()) {
      report.checkpoint_used = rel;
      report.checkpoint_time = cp.value().time;
    }
  }

  return R::ok(std::move(report));
}

}  // namespace fraudsim::recover
