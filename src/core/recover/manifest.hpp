// CRC'd run manifest: the commit record of a recorded run.
//
// A run directory is only "complete" once `MANIFEST.fsm` exists and
// validates. The manifest lists every artifact the run intended to produce
// (relative path, byte size, CRC32) and is written LAST, atomically, so its
// presence certifies that every listed artifact was flushed and renamed
// before it. Recovery treats a missing or corrupt manifest as "the run was
// interrupted" and re-derives the artifacts from the journal.
//
// Format (text, one record per line, '\n' endings):
//
//   fraudsim-manifest v1
//   seed <decimal>
//   config <decimal config digest>
//   artifact <relpath> <size> <crc32 hex>
//   ...
//   crc <crc32 hex of every preceding byte>
//
// Relative paths never contain spaces (run layouts are fixed names), so the
// line format stays splittable on ' '.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/recover/atomic_file.hpp"
#include "sim/time.hpp"
#include "util/result.hpp"

namespace fraudsim::recover {

inline constexpr char kManifestFilename[] = "MANIFEST.fsm";

struct ManifestEntry {
  std::string path;  // relative to the run directory
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

struct Manifest {
  std::uint64_t seed = 0;
  std::uint64_t config_digest = 0;
  std::vector<ManifestEntry> artifacts;

  void add(std::string rel_path, std::uint64_t size, std::uint32_t crc);
  // Records an AtomicFile result under the given relative name.
  void add(const WrittenArtifact& written, std::string rel_path);
  [[nodiscard]] const ManifestEntry* find(std::string_view rel_path) const;

  // Serialises including the trailing self-CRC line.
  [[nodiscard]] std::string render() const;

  // Strict parse: bad shape or a self-CRC mismatch fails with
  // kManifestMismatch (a torn manifest must never validate).
  [[nodiscard]] static util::Result<Manifest> parse(std::string_view text);
  [[nodiscard]] static util::Result<Manifest> load(const std::string& path);

  // Writes `<dir>/MANIFEST.fsm` atomically. Consults crash.manifest.write:
  // when it fires, a torn prefix of the manifest lands under the FINAL name
  // (the worst case recovery must reject via the self-CRC) before the
  // SimCrash unwinds.
  [[nodiscard]] util::Status write(const std::string& dir, sim::SimTime now = 0) const;
};

// Compares the manifest against the bytes on disk.
struct ManifestAudit {
  std::vector<std::string> intact;      // present, size and CRC match
  std::vector<std::string> missing;     // listed but absent
  std::vector<std::string> mismatched;  // present but size/CRC differ
  [[nodiscard]] bool clean() const { return missing.empty() && mismatched.empty(); }
};

[[nodiscard]] ManifestAudit audit_artifacts(const Manifest& manifest, const std::string& dir);

}  // namespace fraudsim::recover
