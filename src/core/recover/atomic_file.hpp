// Atomic artifact writes: the all-or-nothing half of crash consistency.
//
// Every run artifact (CSV exports, SOC reports, checkpoint sidecars, fleet
// result shards) goes to disk through AtomicFile::write: the content lands in
// `<name>.tmp`, is flushed, and only then renamed over the final name. A
// crash therefore leaves either the complete old state or a `.tmp` residue
// that recovery quarantines — never a half-written artifact under its final
// name. The artifact's size and CRC32 are returned so the caller can record
// them in the run manifest (the CRC lives there, not inside the artifact, so
// crash-injection-off runs stay byte-identical to earlier releases).
//
// Crash injection: each write consults two fault points —
//   crash.artifact.body    dies mid-`.tmp`: a torn prefix of the content is
//                          flushed before the SimCrash unwinds;
//   crash.artifact.rename  dies between flush and rename: the `.tmp` is
//                          complete but the final name never appears.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.hpp"
#include "util/result.hpp"

namespace fraudsim::recover {

inline constexpr char kTmpSuffix[] = ".tmp";

// What landed on disk: final path plus the size/CRC the manifest records.
struct WrittenArtifact {
  std::string path;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

class AtomicFile {
 public:
  // Writes `content` to `path + ".tmp"`, flushes, renames to `path`.
  // Throws fault::SimCrash when an armed crash point fires (after tearing
  // the in-flight bytes exactly as a kill would). `now` timestamps the
  // injected crash; pass the current sim time when available.
  static util::Result<WrittenArtifact> write(const std::string& path, std::string_view content,
                                             sim::SimTime now = 0);
};

}  // namespace fraudsim::recover
