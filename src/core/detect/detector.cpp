#include "core/detect/detector.hpp"

#include <cassert>

namespace fraudsim::detect {

void Detector::score_batch(std::span<const RequestView> views, std::span<BatchScore> scores,
                           AlertSink& alerts) {
  assert(views.size() == scores.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    const std::size_t before = alerts.alerts().size();
    evaluate(views[i], alerts);
    scores[i].sessions_scored =
        static_cast<std::uint64_t>(views[i].sessions_for(cost()).size());
    scores[i].alerts = static_cast<std::uint64_t>(alerts.alerts().size() - before);
  }
}

}  // namespace fraudsim::detect
