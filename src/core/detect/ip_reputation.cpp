#include "core/detect/ip_reputation.hpp"

namespace fraudsim::detect {

IpReputationDetector::IpReputationDetector(const net::GeoDb& geo, IpReputationConfig config)
    : geo_(geo), config_(config) {}

bool IpReputationDetector::is_datacenter(net::IpV4 ip) const { return geo_.is_datacenter(ip); }

void IpReputationDetector::analyze(const std::vector<web::Session>& sessions,
                                   AlertSink& sink) const {
  // Count distinct sessions per address first.
  std::unordered_map<std::uint32_t, std::uint64_t> sessions_per_ip;
  for (const auto& session : sessions) {
    if (session.requests.empty()) continue;
    ++sessions_per_ip[session.requests.front().ip.value()];
  }
  for (const auto& session : sessions) {
    if (session.requests.empty()) continue;
    const auto ip = session.requests.front().ip;
    const char* reason = nullptr;
    if (config_.flag_datacenter && geo_.is_datacenter(ip)) {
      reason = "datacenter exit address";
    } else if (sessions_per_ip[ip.value()] > config_.max_sessions_per_ip) {
      reason = "address shared across many sessions";
    }
    if (reason == nullptr) continue;
    Alert alert;
    alert.time = session.end();
    alert.detector = "ip.reputation";
    alert.severity = Severity::Warning;
    alert.explanation = reason;
    alert.ip = ip;
    alert.session = session.id;
    alert.actor = session.actor;
    alert.fingerprint = session.requests.front().fp_hash;
    sink.emit(std::move(alert));
  }
}

void IpReputationDetector::analyze_many(
    std::span<const std::vector<web::Session>* const> session_sets, AlertSink& sink,
    std::vector<std::size_t>* alerts_per_set) const {
  if (alerts_per_set != nullptr) alerts_per_set->assign(session_sets.size(), 0);
  // Memoized geo verdicts: one is_datacenter lookup per distinct address
  // across the whole batch.
  std::unordered_map<std::uint32_t, bool> datacenter;
  auto is_dc = [&](net::IpV4 ip) {
    const auto it = datacenter.find(ip.value());
    if (it != datacenter.end()) return it->second;
    const bool dc = geo_.is_datacenter(ip);
    datacenter.emplace(ip.value(), dc);
    return dc;
  };
  for (std::size_t set = 0; set < session_sets.size(); ++set) {
    const auto& sessions = *session_sets[set];
    const std::size_t before = sink.alerts().size();
    std::unordered_map<std::uint32_t, std::uint64_t> sessions_per_ip;
    for (const auto& session : sessions) {
      if (session.requests.empty()) continue;
      ++sessions_per_ip[session.requests.front().ip.value()];
    }
    for (const auto& session : sessions) {
      if (session.requests.empty()) continue;
      const auto ip = session.requests.front().ip;
      const char* reason = nullptr;
      if (config_.flag_datacenter && is_dc(ip)) {
        reason = "datacenter exit address";
      } else if (sessions_per_ip[ip.value()] > config_.max_sessions_per_ip) {
        reason = "address shared across many sessions";
      }
      if (reason == nullptr) continue;
      Alert alert;
      alert.time = session.end();
      alert.detector = "ip.reputation";
      alert.severity = Severity::Warning;
      alert.explanation = reason;
      alert.ip = ip;
      alert.session = session.id;
      alert.actor = session.actor;
      alert.fingerprint = session.requests.front().fp_hash;
      sink.emit(std::move(alert));
    }
    if (alerts_per_set != nullptr) (*alerts_per_set)[set] = sink.alerts().size() - before;
  }
}

}  // namespace fraudsim::detect
