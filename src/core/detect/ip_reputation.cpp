#include "core/detect/ip_reputation.hpp"

namespace fraudsim::detect {

IpReputationDetector::IpReputationDetector(const net::GeoDb& geo, IpReputationConfig config)
    : geo_(geo), config_(config) {}

bool IpReputationDetector::is_datacenter(net::IpV4 ip) const { return geo_.is_datacenter(ip); }

void IpReputationDetector::analyze(const std::vector<web::Session>& sessions,
                                   AlertSink& sink) const {
  // Count distinct sessions per address first.
  std::unordered_map<std::uint32_t, std::uint64_t> sessions_per_ip;
  for (const auto& session : sessions) {
    if (session.requests.empty()) continue;
    ++sessions_per_ip[session.requests.front().ip.value()];
  }
  for (const auto& session : sessions) {
    if (session.requests.empty()) continue;
    const auto ip = session.requests.front().ip;
    const char* reason = nullptr;
    if (config_.flag_datacenter && geo_.is_datacenter(ip)) {
      reason = "datacenter exit address";
    } else if (sessions_per_ip[ip.value()] > config_.max_sessions_per_ip) {
      reason = "address shared across many sessions";
    }
    if (reason == nullptr) continue;
    Alert alert;
    alert.time = session.end();
    alert.detector = "ip.reputation";
    alert.severity = Severity::Warning;
    alert.explanation = reason;
    alert.ip = ip;
    alert.session = session.id;
    alert.actor = session.actor;
    alert.fingerprint = session.requests.front().fp_hash;
    sink.emit(std::move(alert));
  }
}

}  // namespace fraudsim::detect
