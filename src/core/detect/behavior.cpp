#include "core/detect/behavior.hpp"

namespace fraudsim::detect {

FeatureRow to_row(const web::SessionFeatures& features) {
  const auto arr = features.as_vector();
  return FeatureRow(arr.begin(), arr.end());
}

VolumeThresholdDetector::VolumeThresholdDetector(VolumeThresholds thresholds)
    : thresholds_(thresholds) {}

bool VolumeThresholdDetector::is_bot(const web::SessionFeatures& f, std::string* reason) const {
  auto set_reason = [&](const std::string& r) {
    if (reason != nullptr) *reason = r;
  };
  if (f.total_requests > thresholds_.max_requests_per_session) {
    set_reason("session volume " + std::to_string(static_cast<int>(f.total_requests)) +
               " exceeds threshold");
    return true;
  }
  if (f.requests_per_minute > thresholds_.max_requests_per_minute && f.total_requests >= 10) {
    set_reason("request rate exceeds threshold");
    return true;
  }
  if (f.total_requests >= 20 &&
      f.mean_interarrival_seconds < thresholds_.min_mean_interarrival_seconds) {
    set_reason("machine-speed pacing");
    return true;
  }
  if (f.search_requests > thresholds_.max_search_requests) {
    set_reason("exploratory search volume");
    return true;
  }
  if (thresholds_.trap_file_is_bot && f.trap_file_hits > 0) {
    set_reason("accessed trap file");
    return true;
  }
  return false;
}

void VolumeThresholdDetector::analyze(const std::vector<web::Session>& sessions,
                                      AlertSink& sink) const {
  for (const auto& session : sessions) {
    const auto features = web::extract_features(session);
    std::string reason;
    if (!is_bot(features, &reason)) continue;
    Alert alert;
    alert.time = session.end();
    alert.detector = "behavior.volume";
    alert.severity = Severity::Warning;
    alert.explanation = reason;
    alert.session = session.id;
    alert.actor = session.actor;
    if (!session.requests.empty()) {
      alert.fingerprint = session.requests.front().fp_hash;
      alert.ip = session.requests.front().ip;
    }
    sink.emit(std::move(alert));
  }
}

BehaviorClassifier::BehaviorClassifier(ClassifierKind kind) : kind_(kind) {}

void BehaviorClassifier::train(const std::vector<web::SessionFeatures>& features,
                               const std::vector<int>& labels, sim::Rng& rng) {
  Dataset data;
  for (const auto& f : features) data.rows.push_back(to_row(f));
  data.labels = labels;
  scaler_.fit(data.rows);
  data.rows = scaler_.transform(data.rows);
  if (kind_ == ClassifierKind::Logistic) {
    logistic_.train(data, rng);
  } else {
    bayes_.train(data);
  }
  trained_ = true;
}

double BehaviorClassifier::score(const web::SessionFeatures& features) const {
  if (!trained_) return 0.0;
  const auto row = scaler_.transform(to_row(features));
  return kind_ == ClassifierKind::Logistic ? logistic_.predict_proba(row)
                                           : bayes_.predict_proba(row);
}

bool BehaviorClassifier::is_bot(const web::SessionFeatures& features, double threshold) const {
  return score(features) >= threshold;
}

void BehaviorClassifier::analyze(const std::vector<web::Session>& sessions, AlertSink& sink,
                                 double threshold) const {
  for (const auto& session : sessions) {
    const auto features = web::extract_features(session);
    const double p = score(features);
    if (p < threshold) continue;
    Alert alert;
    alert.time = session.end();
    alert.detector = "behavior.classifier";
    alert.severity = Severity::Warning;
    alert.explanation = "classifier score " + std::to_string(p);
    alert.session = session.id;
    alert.actor = session.actor;
    if (!session.requests.empty()) {
      alert.fingerprint = session.requests.front().fp_hash;
      alert.ip = session.requests.front().ip;
    }
    sink.emit(std::move(alert));
  }
}

}  // namespace fraudsim::detect
