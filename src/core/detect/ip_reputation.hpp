// IP-reputation detection — and why residential proxies defeat it (§III-B,
// the Khan et al. reference).
//
// Two classic signals:
//   * datacenter origin — hosting-range ASes rarely carry real customers
//   * address reuse    — the same IP driving many distinct sessions
//
// Both work on datacenter-proxied scrapers and fail on residential pools:
// every request exits a different household address that geolocates like a
// real customer. bench/exp_detection_comparison shows exactly that split.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/detect/alert.hpp"
#include "net/geo.hpp"
#include "web/session.hpp"

namespace fraudsim::detect {

struct IpReputationConfig {
  // Distinct sessions from one address before it is flagged as shared
  // automation infrastructure.
  std::uint64_t max_sessions_per_ip = 5;
  bool flag_datacenter = true;
};

class IpReputationDetector {
 public:
  IpReputationDetector(const net::GeoDb& geo, IpReputationConfig config = {});

  // Emits one alert per offending session.
  void analyze(const std::vector<web::Session>& sessions, AlertSink& sink) const;

  // Batched multi-epoch analysis: the datacenter classification of an
  // address is epoch-independent, so one geo lookup per distinct address
  // serves the whole batch; the shared-address count stays per-epoch. Alert
  // bytes and order are identical to calling analyze once per set in order.
  void analyze_many(std::span<const std::vector<web::Session>* const> session_sets,
                    AlertSink& sink, std::vector<std::size_t>* alerts_per_set = nullptr) const;

  [[nodiscard]] bool is_datacenter(net::IpV4 ip) const;

 private:
  const net::GeoDb& geo_;
  IpReputationConfig config_;
};

}  // namespace fraudsim::detect
