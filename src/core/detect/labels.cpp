#include "core/detect/labels.hpp"

#include <algorithm>

namespace fraudsim::detect {

ActorScore score_actors(const std::unordered_set<web::ActorId>& flagged,
                        const std::vector<web::ActorId>& universe,
                        const app::ActorRegistry& registry, TruthCriterion criterion) {
  ActorScore score;
  for (const auto actor : universe) {
    const bool truth = criterion == TruthCriterion::Abuser ? registry.abuser(actor)
                                                           : registry.automated(actor);
    const bool predicted = flagged.contains(actor);
    score.confusion.add(predicted, truth);
    if (truth && !predicted) score.missed.push_back(actor);
    if (!truth && predicted) score.false_alarms.push_back(actor);
  }
  return score;
}

std::vector<web::ActorId> actors_of(const std::vector<web::Session>& sessions) {
  std::vector<web::ActorId> actors;
  for (const auto& s : sessions) actors.push_back(s.actor);
  std::sort(actors.begin(), actors.end());
  actors.erase(std::unique(actors.begin(), actors.end()), actors.end());
  return actors;
}

std::unordered_set<web::ActorId> flagged_actors(const std::vector<Alert>& alerts) {
  std::unordered_set<web::ActorId> out;
  for (const auto& a : alerts) {
    if (a.actor) out.insert(*a.actor);
  }
  return out;
}

}  // namespace fraudsim::detect
