// Passenger-identity pattern analysis (§IV-B).
//
// The detectors that actually caught the case-study attacks:
//   * gibberish identities        ("affjgdui ddfjrei")
//   * repeated identities         (same name across many reservations)
//   * birthdate rotation          (same name, systematically varied birthdate)
//   * permuted fixed sets         (same people, shuffled order across PNRs)
//   * misspelling clusters        (hand-typed variants within edit distance 1)
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "airline/inventory.hpp"
#include "core/detect/alert.hpp"

namespace fraudsim::detect {

struct NamePatternConfig {
  double gibberish_threshold = 0.55;   // mean party gibberish score
  // Same full identity (name AND birthdate) across >= N reservations. Name
  // alone is not an identity: large airlines carry many distinct "J. Smith"s.
  std::uint64_t repeat_threshold = 4;
  std::uint64_t birthdate_variants = 4;  // same name with >= N distinct birthdates
  std::uint64_t party_repeat_threshold = 4;  // same party multiset across >= N PNRs
  std::uint64_t misspell_cluster_size = 4;   // names within 1 edit of a frequent key
  // Scale guard for the name-keyed signals (birthdate rotation, misspelling
  // clusters): the name must also account for at least this share of all
  // passenger-name instances in the analysed set. Ordinary popular names
  // stay far below it at airline scale; a campaign hammering one identity
  // towers above it.
  double name_share_threshold = 0.005;
};

struct NamePatternFindings {
  // PNRs flagged per signal.
  std::set<std::string> gibberish;
  std::set<std::string> repeated_identity;
  std::set<std::string> birthdate_rotation;
  std::set<std::string> permuted_party;
  std::set<std::string> misspelling_cluster;

  [[nodiscard]] std::set<std::string> all_flagged() const;
};

class NamePatternAnalyzer {
 public:
  explicit NamePatternAnalyzer(NamePatternConfig config = {});

  // Analyzes all reservations (typically: one flight's, or a time window's).
  [[nodiscard]] NamePatternFindings analyze(
      const std::vector<const airline::Reservation*>& reservations) const;
  [[nodiscard]] NamePatternFindings analyze(
      const std::vector<airline::Reservation>& reservations) const;

  // Emits one alert per flagged PNR.
  void analyze(const std::vector<airline::Reservation>& reservations, AlertSink& sink) const;

  [[nodiscard]] const NamePatternConfig& config() const { return config_; }

 private:
  NamePatternConfig config_;
};

}  // namespace fraudsim::detect
