#include "core/detect/sms_anomaly.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/table.hpp"

namespace fraudsim::detect {

SmsAnomalyDetector::SmsAnomalyDetector(SmsAnomalyConfig config) : config_(config) {}

std::vector<CountrySurge> SmsAnomalyDetector::country_surges(
    const sms::SmsGateway& gateway, sim::SimTime baseline_from, sim::SimTime baseline_to,
    sim::SimTime during_from, sim::SimTime during_to, std::optional<sms::SmsType> type) const {
  const auto baseline = gateway.volume_by_country(baseline_from, baseline_to, type);
  const auto during = gateway.volume_by_country(during_from, during_to, type);

  // Normalise to per-day rates so unequal window lengths compare fairly.
  const double baseline_days =
      std::max(1.0, sim::to_days(baseline_to - baseline_from));
  const double during_days = std::max(1.0, sim::to_days(during_to - during_from));

  std::vector<CountrySurge> out;
  std::map<net::CountryCode, bool> seen;
  for (const auto& [country, count] : during.entries()) {
    (void)count;
    seen[country] = true;
  }
  for (const auto& [country, count] : baseline.entries()) {
    (void)count;
    seen[country] = true;
  }
  for (const auto& [country, _] : seen) {
    (void)_;
    CountrySurge s;
    s.country = country;
    s.baseline = static_cast<double>(baseline.count(country)) / baseline_days;
    s.during = static_cast<double>(during.count(country)) / during_days;
    s.surge_fraction = analytics::surge_fraction(
        std::max(s.baseline, config_.min_baseline_per_day), s.during);
    out.push_back(s);
  }
  // Rank by surge, then by absolute attack volume (ties among never-seen
  // destinations resolve toward the heavily-targeted ones).
  std::stable_sort(out.begin(), out.end(), [](const CountrySurge& a, const CountrySurge& b) {
    if (a.surge_fraction != b.surge_fraction) return a.surge_fraction > b.surge_fraction;
    return a.during > b.during;
  });
  return out;
}

std::optional<sim::SimTime> SmsAnomalyDetector::path_limit_trip_time(
    const sms::SmsGateway& gateway) const {
  // Rolling-day counting over boarding-pass sends in log order.
  std::vector<sim::SimTime> window;
  std::size_t head = 0;
  for (const auto& r : gateway.log()) {
    if (!r.delivered || r.type != sms::SmsType::BoardingPass) continue;
    window.push_back(r.time);
    while (head < window.size() && window[head] <= r.time - sim::kDay) ++head;
    if (static_cast<double>(window.size() - head) >= config_.path_daily_limit) {
      return r.time;
    }
  }
  return std::nullopt;
}

std::optional<sim::SimTime> SmsAnomalyDetector::per_booking_trip_time(
    const sms::SmsGateway& gateway) const {
  std::unordered_map<std::string, std::uint64_t> counts;
  for (const auto& r : gateway.log()) {
    if (!r.delivered || !r.booking_ref) continue;
    if (++counts[*r.booking_ref] > config_.per_booking_limit) return r.time;
  }
  return std::nullopt;
}

namespace {

void emit_window_alerts(const SmsAnomalyDetector& detector, const sms::SmsGateway& gateway,
                        const SmsAnomalyDetector::Window& w,
                        const std::optional<sim::SimTime>& path_trip,
                        const std::optional<sim::SimTime>& booking_trip, AlertSink& sink) {
  const auto& config = detector.config();
  for (const auto& surge : detector.country_surges(gateway, w.baseline_from, w.baseline_to,
                                                   w.during_from, w.during_to)) {
    if (surge.surge_fraction < config.surge_threshold) continue;
    if (surge.during * sim::to_days(w.during_to - w.during_from) < config.min_volume) continue;
    Alert alert;
    alert.time = w.during_to;
    alert.detector = "sms.country-surge";
    alert.severity = Severity::Critical;
    alert.explanation = "SMS volume to " + surge.country.str() + " surged " +
                        util::format_surge_percent(surge.surge_fraction);
    sink.emit(std::move(alert));
  }
  if (path_trip) {
    Alert alert;
    alert.time = *path_trip;
    alert.detector = "sms.path-rate";
    alert.severity = Severity::Critical;
    alert.explanation = "boarding-pass SMS path exceeded daily volume limit";
    sink.emit(std::move(alert));
  }
  if (booking_trip) {
    Alert alert;
    alert.time = *booking_trip;
    alert.detector = "sms.per-booking-rate";
    alert.severity = Severity::Critical;
    alert.explanation = "single booking reference exceeded SMS send limit";
    sink.emit(std::move(alert));
  }
}

}  // namespace

void SmsAnomalyDetector::analyze(const sms::SmsGateway& gateway, sim::SimTime baseline_from,
                                 sim::SimTime baseline_to, sim::SimTime during_from,
                                 sim::SimTime during_to, AlertSink& sink) const {
  emit_window_alerts(*this, gateway, {baseline_from, baseline_to, during_from, during_to},
                     path_limit_trip_time(gateway), per_booking_trip_time(gateway), sink);
}

void SmsAnomalyDetector::analyze_windows(const sms::SmsGateway& gateway,
                                         std::span<const Window> windows, AlertSink& sink,
                                         std::vector<std::size_t>* alerts_per_window) const {
  if (alerts_per_window != nullptr) alerts_per_window->assign(windows.size(), 0);
  if (windows.empty()) return;
  // The rate monitors are window-independent full-log scans: one scan serves
  // every window in the batch.
  const auto path_trip = path_limit_trip_time(gateway);
  const auto booking_trip = per_booking_trip_time(gateway);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const std::size_t before = sink.alerts().size();
    emit_window_alerts(*this, gateway, windows[w], path_trip, booking_trip, sink);
    if (alerts_per_window != nullptr) {
      (*alerts_per_window)[w] = sink.alerts().size() - before;
    }
  }
}

}  // namespace fraudsim::detect
