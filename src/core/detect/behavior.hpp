// Behaviour-based bot detection over session features (§III-A).
//
// Two families:
//   * VolumeThresholdDetector — the simple heuristics production WAFs ship
//     with (requests/session, requests/minute, trap hits, machine pacing).
//   * BehaviorClassifier — supervised models (logistic regression / naive
//     Bayes) trained on labelled session features.
//
// The paper's central claim, which bench/exp_detection_comparison reproduces,
// is that both families catch scrapers but are structurally blind to
// low-volume DoI / SMS-pumping sessions.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "core/detect/alert.hpp"
#include "core/detect/ml.hpp"
#include "web/features.hpp"

namespace fraudsim::detect {

struct VolumeThresholds {
  double max_requests_per_session = 120;
  double max_requests_per_minute = 30;
  double min_mean_interarrival_seconds = 2.0;  // faster than this looks robotic
  double max_search_requests = 80;
  bool trap_file_is_bot = true;
};

class VolumeThresholdDetector {
 public:
  explicit VolumeThresholdDetector(VolumeThresholds thresholds = {});

  // True if the session trips any threshold; fills `reason`.
  [[nodiscard]] bool is_bot(const web::SessionFeatures& features, std::string* reason) const;

  // Runs over sessions and emits one alert per flagged session.
  void analyze(const std::vector<web::Session>& sessions, AlertSink& sink) const;

  [[nodiscard]] const VolumeThresholds& thresholds() const { return thresholds_; }

 private:
  VolumeThresholds thresholds_;
};

enum class ClassifierKind { Logistic, NaiveBayes };

// Supervised behaviour classifier with standardised features.
class BehaviorClassifier {
 public:
  explicit BehaviorClassifier(ClassifierKind kind = ClassifierKind::Logistic);

  // Labels: 1 = automated. Trains scaler + model.
  void train(const std::vector<web::SessionFeatures>& features, const std::vector<int>& labels,
             sim::Rng& rng);

  [[nodiscard]] double score(const web::SessionFeatures& features) const;  // P(bot)
  [[nodiscard]] bool is_bot(const web::SessionFeatures& features, double threshold = 0.5) const;

  void analyze(const std::vector<web::Session>& sessions, AlertSink& sink,
               double threshold = 0.5) const;

  [[nodiscard]] bool trained() const { return trained_; }

 private:
  ClassifierKind kind_;
  StandardScaler scaler_;
  LogisticRegression logistic_;
  GaussianNaiveBayes bayes_;
  bool trained_ = false;
};

// Converts SessionFeatures into ml rows.
[[nodiscard]] FeatureRow to_row(const web::SessionFeatures& features);

}  // namespace fraudsim::detect
