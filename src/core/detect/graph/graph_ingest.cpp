#include "core/detect/graph/graph_ingest.hpp"

#include <algorithm>

namespace fraudsim::detect::graph {

EntityGraph::NodeId GraphIngest::touch_context(sim::SimTime now, const app::ClientContext& ctx) {
  const auto session = graph_.touch(now, NodeType::Session, ctx.session.str());
  const auto fingerprint =
      graph_.touch(now, NodeType::Fingerprint, ctx.fingerprint.hash().str());
  const auto ip = graph_.touch(now, NodeType::Ip, std::to_string(ctx.ip.value()));
  const auto asn = graph_.touch(now, NodeType::Asn, std::to_string(ctx.ip.value() >> 16));
  graph_.connect(now, session, fingerprint);
  graph_.connect(now, session, ip);
  graph_.connect(now, ip, asn);
  if (!ctx.payment_token.empty()) {
    const auto token = graph_.touch(now, NodeType::PaymentToken, ctx.payment_token);
    graph_.connect(now, session, token);
  }
  return session;
}

void GraphIngest::link_booking(sim::SimTime now, EntityGraph::NodeId session,
                               const std::string& pnr) {
  if (pnr.empty()) return;
  const auto booking = graph_.touch(now, NodeType::Booking, pnr);
  graph_.connect(now, session, booking);
}

void GraphIngest::on_browse(sim::SimTime time, const app::ClientContext& ctx, web::Endpoint,
                            web::HttpMethod, app::CallStatus) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  graph_.add_signal(time, session, Signal::Requests, 1.0);
}

void GraphIngest::on_hold(sim::SimTime time, const app::ClientContext& ctx, airline::FlightId,
                          const std::vector<airline::Passenger>& passengers,
                          const app::HoldResult& result) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  if (!passengers.empty()) {
    const auto name =
        graph_.touch(time, NodeType::NamePattern, passengers.front().name_key());
    graph_.connect(time, session, name);
  }
  if (result.status == app::CallStatus::Ok) link_booking(time, session, result.pnr);
  graph_.add_signal(time, session, Signal::Holds,
                    static_cast<double>(std::max<std::size_t>(1, passengers.size())));
}

void GraphIngest::on_quote_fare(sim::SimTime time, const app::ClientContext& ctx,
                                airline::FlightId, util::Money) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  graph_.add_signal(time, session, Signal::Requests, 1.0);
}

void GraphIngest::on_pay(sim::SimTime time, const app::ClientContext& ctx,
                         const std::string& pnr, app::CallStatus) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  link_booking(time, session, pnr);
  graph_.add_signal(time, session, Signal::Pays, 1.0);
}

void GraphIngest::on_request_otp(sim::SimTime time, const app::ClientContext& ctx,
                                 const std::string&, const sms::PhoneNumber&,
                                 const app::OtpResult&) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  graph_.add_signal(time, session, Signal::Sms, 1.0);
}

void GraphIngest::on_verify_otp(sim::SimTime time, const app::ClientContext& ctx,
                                const std::string&, const std::string&, bool) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  graph_.add_signal(time, session, Signal::Requests, 1.0);
}

void GraphIngest::on_retrieve_booking(sim::SimTime time, const app::ClientContext& ctx,
                                      const std::string& pnr,
                                      const app::Application::BookingView&) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  link_booking(time, session, pnr);
  graph_.add_signal(time, session, Signal::Requests, 1.0);
}

void GraphIngest::on_boarding_sms(sim::SimTime time, const app::ClientContext& ctx,
                                  const std::string& pnr, const sms::PhoneNumber&,
                                  const app::BoardingSmsResult&) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  link_booking(time, session, pnr);
  graph_.add_signal(time, session, Signal::Sms, 1.0);
}

void GraphIngest::on_boarding_email(sim::SimTime time, const app::ClientContext& ctx,
                                    const std::string& pnr, app::CallStatus) {
  if (!graph_.begin_event(time)) return;
  const auto session = touch_context(time, ctx);
  link_booking(time, session, pnr);
  graph_.add_signal(time, session, Signal::Requests, 1.0);
}

}  // namespace fraudsim::detect::graph
