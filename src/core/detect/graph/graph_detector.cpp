#include "core/detect/graph/graph_detector.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/format.hpp"

namespace fraudsim::detect::graph {

namespace {

// Locale-independent fixed formatting for alert explanations (determinism).
std::string fixed2(double v) { return util::format_fixed(v, 2); }

}  // namespace

std::vector<GraphDetector::ComponentVerdict> GraphDetector::scored_components(
    sim::SimTime at) const {
  std::vector<ComponentVerdict> out;
  for (const ComponentSummary& c : graph_.components(at)) {
    ComponentVerdict v;
    v.summary = c;
    const double sessions = static_cast<double>(c.sessions);
    const double fp_share =
        sessions / static_cast<double>(std::max<std::size_t>(1, c.fingerprints));
    const double ip_share = sessions / static_cast<double>(std::max<std::size_t>(1, c.ips));
    const double token_share =
        c.tokens > 0 ? sessions / static_cast<double>(c.tokens) : 0.0;
    v.sharing = std::max(fp_share, std::max(ip_share, token_share));
    v.signal_mass =
        config_.weight_requests * c.signals[static_cast<std::size_t>(Signal::Requests)] +
        config_.weight_holds * c.signals[static_cast<std::size_t>(Signal::Holds)] +
        config_.weight_sms * c.signals[static_cast<std::size_t>(Signal::Sms)] +
        config_.weight_pays * c.signals[static_cast<std::size_t>(Signal::Pays)];
    v.flagged = c.sessions >= config_.min_sessions && v.sharing >= config_.min_sharing &&
                v.signal_mass >= config_.signal_threshold;
    v.score = std::log2(1.0 + sessions) * v.sharing * v.signal_mass;
    out.push_back(v);
  }
  return out;
}

void GraphDetector::evaluate_view(const RequestView& view, AlertSink& alerts) const {
  // Verdicts once per view; membership lookups are then O(1) per session.
  std::unordered_map<std::uint32_t, const ComponentVerdict*> flagged;
  const auto verdicts = scored_components(view.to);
  for (const auto& v : verdicts) {
    if (v.flagged) flagged.emplace(v.summary.id, &v);
  }
  if (flagged.empty()) return;
  for (const web::Session& s : view.sessions_for(cost())) {
    const auto node = graph_.find(NodeType::Session, s.id.str());
    if (node == 0) continue;
    const std::uint32_t cid = graph_.component_of(node);
    const auto it = flagged.find(cid);
    if (it == flagged.end()) continue;
    const ComponentVerdict& v = *it->second;
    Alert alert;
    alert.time = view.to;
    alert.detector = name();
    alert.severity = Severity::Critical;
    alert.explanation = "abuse-ring component " + std::to_string(cid) + ": " +
                        std::to_string(v.summary.sessions) + " sessions share " +
                        std::to_string(v.summary.fingerprints) + " fingerprints/" +
                        std::to_string(v.summary.ips) + " ips/" +
                        std::to_string(v.summary.tokens) + " payment tokens (sharing " +
                        fixed2(v.sharing) + ", signal mass " + fixed2(v.signal_mass) + ")";
    alert.session = s.id;
    alert.actor = s.actor;
    alerts.emit(std::move(alert));
  }
}

void GraphDetector::evaluate(const RequestView& view, AlertSink& alerts) {
  evaluate_view(view, alerts);
}

void GraphDetector::score_batch(std::span<const RequestView> views, std::span<BatchScore> scores,
                                AlertSink& alerts) {
  // Vectorized pass: the union-find partition rebuild is shared across every
  // epoch (the graph's lazy partition cache), only the time-dependent signal
  // decay re-evaluates per view. Alert bytes and BatchScore numbers are
  // identical to the scalar adapter by construction (same per-view body, in
  // view order).
  for (std::size_t i = 0; i < views.size(); ++i) {
    const std::size_t before = alerts.alerts().size();
    evaluate_view(views[i], alerts);
    scores[i].sessions_scored = views[i].sessions_for(cost()).size();
    scores[i].alerts = static_cast<std::uint64_t>(alerts.alerts().size() - before);
  }
}

}  // namespace fraudsim::detect::graph
