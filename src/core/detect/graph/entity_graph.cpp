#include "core/detect/graph/entity_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fraudsim::detect::graph {

namespace {

// One-byte key namespaces, stable across versions (they are serialized
// indirectly through the intern table's strings).
char type_prefix(NodeType t) {
  switch (t) {
    case NodeType::Session:
      return 's';
    case NodeType::Fingerprint:
      return 'f';
    case NodeType::Ip:
      return 'i';
    case NodeType::Asn:
      return 'a';
    case NodeType::PaymentToken:
      return 'p';
    case NodeType::NamePattern:
      return 'n';
    case NodeType::Booking:
      return 'b';
  }
  return '?';
}

double decay_factor(sim::SimDuration elapsed, sim::SimDuration half_life) {
  if (elapsed <= 0 || half_life <= 0) return 1.0;
  return std::exp2(-static_cast<double>(elapsed) / static_cast<double>(half_life));
}

}  // namespace

const char* to_string(NodeType t) {
  switch (t) {
    case NodeType::Session:
      return "session";
    case NodeType::Fingerprint:
      return "fingerprint";
    case NodeType::Ip:
      return "ip";
    case NodeType::Asn:
      return "asn";
    case NodeType::PaymentToken:
      return "payment-token";
    case NodeType::NamePattern:
      return "name-pattern";
    case NodeType::Booking:
      return "booking";
  }
  return "?";
}

EntityGraph::EntityGraph(GraphConfig config)
    : config_(config),
      next_maintenance_(config.maintenance_every),
      ingest_fault_(fault::FaultRegistry::global().point("graph.ingest")) {}

std::string EntityGraph::compose_key(NodeType type, std::string_view key) {
  std::string composed;
  composed.reserve(key.size() + 2);
  composed.push_back(type_prefix(type));
  composed.push_back(':');
  composed.append(key);
  return composed;
}

bool EntityGraph::begin_event(sim::SimTime now) {
  ++stats_.events_seen;
  while (config_.maintenance_every > 0 && now >= next_maintenance_) {
    maintain(next_maintenance_);
    next_maintenance_ += config_.maintenance_every;
  }
  if (ingest_fault_.should_fail(now)) {
    ++stats_.events_dropped;
    return false;
  }
  return true;
}

EntityGraph::NodeId EntityGraph::touch(sim::SimTime now, NodeType type, std::string_view key) {
  const NodeId id = intern_.intern(compose_key(type, key));
  if (nodes_.size() <= id) nodes_.resize(id + 1);
  if (!nodes_[id].has_value()) {
    // New entity: make room first so the cap holds at every instant.
    while (intern_.size() > config_.max_nodes) evict_oldest_node();
    GraphNode n;
    n.type = type;
    n.first_seen = now;
    n.last_seen = now;
    n.signals_updated = now;
    nodes_[id] = n;
    ++stats_.nodes_created;
    partition_dirty_ = true;
  } else {
    nodes_[id]->last_seen = now;
  }
  return id;
}

void EntityGraph::connect(sim::SimTime now, NodeId a, NodeId b) {
  if (a == 0 || b == 0 || a == b || !alive(a) || !alive(b)) return;
  const auto key = std::minmax(a, b);
  const auto it = edges_.find(key);
  if (it != edges_.end()) {
    it->second = now;
    return;
  }
  while (edges_.size() >= config_.max_edges) evict_oldest_edge();
  edges_.emplace(key, now);
  ++stats_.edges_created;
  partition_dirty_ = true;
}

void EntityGraph::add_signal(sim::SimTime now, NodeId node, Signal signal, double weight) {
  if (!alive(node)) return;
  GraphNode& n = *nodes_[node];
  const double factor = decay_factor(now - n.signals_updated, config_.signal_half_life);
  for (double& s : n.signals) s *= factor;
  n.signals[static_cast<std::size_t>(signal)] += weight;
  n.signals_updated = now;
}

std::string_view EntityGraph::key_of(NodeId id) const {
  if (!alive(id)) return {};
  // Composed key is "<type-prefix>:<raw key>"; strip the two-byte prefix.
  const std::string& composed = intern_.str(id);
  return std::string_view(composed).substr(2);
}

void EntityGraph::merge_from(const EntityGraph& other, sim::SimTime now) {
  // Nodes in `other`'s intern-id order — deterministic, and gives stable
  // intern-id assignment in the merged graph for a fixed merge sequence.
  std::vector<NodeId> remap(other.nodes_.size(), 0);
  other.for_each_node([&](NodeId id, const GraphNode& n) {
    const NodeId mine = touch(now, n.type, other.key_of(id));
    remap[id] = mine;
    const double factor = decay_factor(now - n.signals_updated, other.config_.signal_half_life);
    for (std::size_t k = 0; k < kSignalCount; ++k) {
      const double mass = n.signals[k] * factor;
      if (mass > 0.0) add_signal(now, mine, static_cast<Signal>(k), mass);
    }
  });
  other.for_each_edge([&](NodeId a, NodeId b, sim::SimTime) {
    connect(now, remap[a], remap[b]);
  });
}

void EntityGraph::maintain(sim::SimTime now) {
  ++stats_.maintenance_runs;
  // Edges first: an aged edge disappears even when both endpoints stay warm.
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (it->second + config_.edge_ttl <= now) {
      it = edges_.erase(it);
      ++stats_.edges_evicted;
      partition_dirty_ = true;
    } else {
      ++it;
    }
  }
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (nodes_[id].has_value() && nodes_[id]->last_seen + config_.node_ttl <= now) {
      evict_node(id);
    }
  }
}

void EntityGraph::evict_node(NodeId id) {
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (it->first.first == id || it->first.second == id) {
      it = edges_.erase(it);
      ++stats_.edges_evicted;
    } else {
      ++it;
    }
  }
  intern_.erase(id);
  nodes_[id].reset();
  ++stats_.nodes_evicted;
  partition_dirty_ = true;
}

void EntityGraph::evict_oldest_node() {
  NodeId victim = 0;
  sim::SimTime oldest = std::numeric_limits<sim::SimTime>::max();
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (nodes_[id].has_value() && nodes_[id]->last_seen < oldest) {
      oldest = nodes_[id]->last_seen;
      victim = id;
    }
  }
  if (victim != 0) evict_node(victim);
}

void EntityGraph::evict_oldest_edge() {
  auto victim = edges_.end();
  sim::SimTime oldest = std::numeric_limits<sim::SimTime>::max();
  for (auto it = edges_.begin(); it != edges_.end(); ++it) {
    if (it->second < oldest) {
      oldest = it->second;
      victim = it;
    }
  }
  if (victim != edges_.end()) {
    edges_.erase(victim);
    ++stats_.edges_evicted;
    partition_dirty_ = true;
  }
}

EntityGraph::NodeId EntityGraph::find(NodeType type, std::string_view key) const {
  return intern_.find(compose_key(type, key));
}

bool EntityGraph::alive(NodeId id) const {
  return id != 0 && id < nodes_.size() && nodes_[id].has_value();
}

const GraphNode* EntityGraph::node(NodeId id) const {
  return alive(id) ? &*nodes_[id] : nullptr;
}

std::uint32_t EntityGraph::root(std::uint32_t id) const {
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];  // path halving
    id = parent_[id];
  }
  return id;
}

void EntityGraph::rebuild_partition() const {
  if (!partition_dirty_) return;
  parent_.assign(nodes_.size(), 0);
  rank_size_.assign(nodes_.size(), 0);
  canonical_.assign(nodes_.size(), 0);
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (nodes_[id].has_value()) {
      parent_[id] = id;
      rank_size_[id] = 1;
    }
  }
  unions_refused_ = 0;
  // Union by size over edges in sorted key order: the partition is a pure
  // function of the edge set, so incremental runs, restored checkpoints and
  // replays all land on identical components. Merges that would exceed the
  // component cap are refused (counted, not applied).
  //
  // ASN (/16) nodes are hubs: a busy consumer block links thousands of
  // unrelated users, and one such edge would weld strangers — and any ring
  // hiding among them — into a single washed-out component. ASN edges stay
  // in the graph (context for SOC drill-down) but never union; only exact
  // shared entities (fingerprint, IP, token, name, booking) tie components.
  for (const auto& [key, last_seen] : edges_) {
    (void)last_seen;
    const auto is_hub = [&](NodeId id) {
      return nodes_[id].has_value() && nodes_[id]->type == NodeType::Asn;
    };
    if (is_hub(key.first) || is_hub(key.second)) continue;
    std::uint32_t ra = root(key.first);
    std::uint32_t rb = root(key.second);
    if (ra == rb) continue;
    if (rank_size_[ra] + rank_size_[rb] > config_.component_cap) {
      ++unions_refused_;
      continue;
    }
    if (rank_size_[ra] < rank_size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    rank_size_[ra] += rank_size_[rb];
  }
  // Canonical id per root: the smallest member id (ids ascend, first wins).
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (!nodes_[id].has_value()) continue;
    const std::uint32_t r = root(id);
    if (canonical_[r] == 0) canonical_[r] = id;
  }
  partition_dirty_ = false;
}

std::uint32_t EntityGraph::component_of(NodeId id) const {
  if (!alive(id)) return 0;
  rebuild_partition();
  return canonical_[root(id)];
}

std::size_t EntityGraph::component_size(NodeId id) const {
  if (!alive(id)) return 0;
  rebuild_partition();
  return rank_size_[root(id)];
}

std::size_t EntityGraph::unions_refused() const {
  rebuild_partition();
  return unions_refused_;
}

std::size_t EntityGraph::max_component_size() const {
  rebuild_partition();
  std::size_t best = 0;
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (nodes_[id].has_value() && parent_[id] == id) {
      best = std::max<std::size_t>(best, rank_size_[id]);
    }
  }
  return best;
}

std::vector<ComponentSummary> EntityGraph::components(sim::SimTime at) const {
  rebuild_partition();
  // std::map keyed by canonical id: deterministic output order.
  std::map<std::uint32_t, ComponentSummary> acc;
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (!nodes_[id].has_value()) continue;
    const GraphNode& n = *nodes_[id];
    const std::uint32_t cid = canonical_[root(id)];
    ComponentSummary& c = acc[cid];
    c.id = cid;
    ++c.size;
    switch (n.type) {
      case NodeType::Session:
        ++c.sessions;
        break;
      case NodeType::Fingerprint:
        ++c.fingerprints;
        break;
      case NodeType::Ip:
        ++c.ips;
        break;
      case NodeType::Asn:
        ++c.asns;
        break;
      case NodeType::PaymentToken:
        ++c.tokens;
        break;
      case NodeType::NamePattern:
        ++c.names;
        break;
      case NodeType::Booking:
        ++c.bookings;
        break;
    }
    const double factor = decay_factor(at - n.signals_updated, config_.signal_half_life);
    for (std::size_t k = 0; k < kSignalCount; ++k) c.signals[k] += n.signals[k] * factor;
  }
  std::vector<ComponentSummary> out;
  out.reserve(acc.size());
  for (auto& [cid, summary] : acc) out.push_back(summary);
  return out;
}

void EntityGraph::checkpoint(util::ByteWriter& out) const {
  intern_.checkpoint(out);
  out.u64(intern_.size());
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (!nodes_[id].has_value()) continue;
    const GraphNode& n = *nodes_[id];
    out.u32(id);
    out.u8(static_cast<std::uint8_t>(n.type));
    out.i64(n.first_seen);
    out.i64(n.last_seen);
    for (double s : n.signals) out.f64(s);
    out.i64(n.signals_updated);
  }
  out.u64(edges_.size());
  for (const auto& [key, last_seen] : edges_) {
    out.u32(key.first);
    out.u32(key.second);
    out.i64(last_seen);
  }
  out.u64(stats_.events_seen);
  out.u64(stats_.events_dropped);
  out.u64(stats_.nodes_created);
  out.u64(stats_.nodes_evicted);
  out.u64(stats_.edges_created);
  out.u64(stats_.edges_evicted);
  out.u64(stats_.maintenance_runs);
  out.i64(next_maintenance_);
}

void EntityGraph::restore(util::ByteReader& in) {
  intern_.restore(in);
  nodes_.clear();
  nodes_.resize(intern_.capacity() + 1);
  const std::uint64_t node_count = in.u64();
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const NodeId id = in.u32();
    GraphNode n;
    n.type = static_cast<NodeType>(in.u8());
    n.first_seen = in.i64();
    n.last_seen = in.i64();
    for (double& s : n.signals) s = in.f64();
    n.signals_updated = in.i64();
    if (id != 0 && id < nodes_.size()) nodes_[id] = n;
  }
  edges_.clear();
  const std::uint64_t edge_count = in.u64();
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    const NodeId a = in.u32();
    const NodeId b = in.u32();
    const sim::SimTime last_seen = in.i64();
    edges_.emplace(std::make_pair(a, b), last_seen);
  }
  stats_.events_seen = in.u64();
  stats_.events_dropped = in.u64();
  stats_.nodes_created = in.u64();
  stats_.nodes_evicted = in.u64();
  stats_.edges_created = in.u64();
  stats_.edges_evicted = in.u64();
  stats_.maintenance_runs = in.u64();
  next_maintenance_ = in.i64();
  partition_dirty_ = true;
}

}  // namespace fraudsim::detect::graph
