// Component-level amplification detector over the entity graph.
//
// The amplification rule (PAPERS.md, Grab): sum the weak per-member signals
// over each connected component and flag the component when the aggregate
// crosses bands no single member crossed. Structure gates the rule — a
// component must both share infrastructure (many sessions per fingerprint /
// exit IP / payment token) and carry enough aggregate signal mass, so a busy
// but diverse legitimate component (one popular /16) never fires while a
// coordinated ring that rotates through a small shared pool does.
//
// A first-class detect::Detector: registered by DetectionPipeline::
// build_detectors() once a graph is attached (enable_graph), guarded by the
// "detect.graph.run" fault point, with a vectorized score_batch override
// that shares the partition rebuild and component scoring across epoch views
// while staying byte-identical to the scalar adapter.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detect/detector.hpp"
#include "core/detect/graph/entity_graph.hpp"

namespace fraudsim::detect::graph {

struct GraphDetectorConfig {
  // Structural gate: a component is only a candidate with at least this many
  // session nodes...
  std::size_t min_sessions = 8;
  // ...re-using infrastructure at this sharing factor (sessions per distinct
  // fingerprint, exit IP, or payment token — the max of the three ratios).
  double min_sharing = 3.0;
  // Amplification gate: weighted decayed signal mass summed over the
  // component. Tuned so a single account's activity stays far below it.
  double signal_threshold = 40.0;
  double weight_requests = 0.2;
  double weight_holds = 2.0;
  double weight_sms = 2.0;
  double weight_pays = 3.0;
};

class GraphDetector final : public Detector {
 public:
  GraphDetector(const EntityGraph& graph, GraphDetectorConfig config = {})
      : graph_(graph), config_(config) {}

  [[nodiscard]] const char* name() const override { return "graph.ring"; }
  [[nodiscard]] const char* fault_point() const override { return "detect.graph.run"; }
  [[nodiscard]] DetectorCost cost() const override { return DetectorCost::Cheap; }

  void evaluate(const RequestView& view, AlertSink& alerts) override;
  void score_batch(std::span<const RequestView> views, std::span<BatchScore> scores,
                   AlertSink& alerts) override;

  // Component verdicts at `at` (signals decayed to that instant), ordered by
  // canonical component id. Exposed for the SOC report, the bench and tests.
  struct ComponentVerdict {
    ComponentSummary summary;
    double sharing = 0.0;
    double signal_mass = 0.0;
    double score = 0.0;
    bool flagged = false;
  };
  [[nodiscard]] std::vector<ComponentVerdict> scored_components(sim::SimTime at) const;

  [[nodiscard]] const GraphDetectorConfig& config() const { return config_; }
  [[nodiscard]] const EntityGraph& graph() const { return graph_; }

 private:
  void evaluate_view(const RequestView& view, AlertSink& alerts) const;

  const EntityGraph& graph_;
  GraphDetectorConfig config_;
};

}  // namespace fraudsim::detect::graph
