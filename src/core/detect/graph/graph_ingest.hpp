// Admit-path feed for the entity graph.
//
// GraphIngest implements the app::CallJournal observer interface and is
// attached as the application's tap (Application::set_tap), so every
// completed facade call — browse, hold, pay, OTP, boarding SMS — streams into
// the EntityGraph inline, in both live and replayed runs. Hooks observe
// completed calls and never mutate platform state; with no tap attached the
// admit path is byte-identical to a build without the subsystem.
//
// Mapping (one begin_event per hook, so graph event counts reconcile against
// the application's request counter):
//   * every call        -> session node + edges to its fingerprint, exit IP,
//                          the IP's /16 (ASN proxy) and, when the client
//                          presents one, its payment token
//   * hold              -> lead-passenger name-pattern node + booking node
//                          (on success) + Holds signal weighted by party size
//   * pay               -> booking link + Pays signal
//   * OTP / boarding SMS-> Sms signal (+ booking link for boarding SMS)
//   * everything else   -> Requests signal
#pragma once

#include <string>
#include <vector>

#include "app/journal.hpp"
#include "core/detect/graph/entity_graph.hpp"

namespace fraudsim::detect::graph {

class GraphIngest final : public app::CallJournal {
 public:
  explicit GraphIngest(EntityGraph& graph) : graph_(graph) {}

  void on_browse(sim::SimTime time, const app::ClientContext& ctx, web::Endpoint endpoint,
                 web::HttpMethod method, app::CallStatus result) override;
  void on_hold(sim::SimTime time, const app::ClientContext& ctx, airline::FlightId flight,
               const std::vector<airline::Passenger>& passengers,
               const app::HoldResult& result) override;
  void on_quote_fare(sim::SimTime time, const app::ClientContext& ctx, airline::FlightId flight,
                     util::Money result) override;
  void on_pay(sim::SimTime time, const app::ClientContext& ctx, const std::string& pnr,
              app::CallStatus result) override;
  void on_request_otp(sim::SimTime time, const app::ClientContext& ctx,
                      const std::string& account, const sms::PhoneNumber& number,
                      const app::OtpResult& result) override;
  void on_verify_otp(sim::SimTime time, const app::ClientContext& ctx,
                     const std::string& account, const std::string& code, bool result) override;
  void on_retrieve_booking(sim::SimTime time, const app::ClientContext& ctx,
                           const std::string& pnr,
                           const app::Application::BookingView& result) override;
  void on_boarding_sms(sim::SimTime time, const app::ClientContext& ctx, const std::string& pnr,
                       const sms::PhoneNumber& number,
                       const app::BoardingSmsResult& result) override;
  void on_boarding_email(sim::SimTime time, const app::ClientContext& ctx,
                         const std::string& pnr, app::CallStatus result) override;

  [[nodiscard]] const EntityGraph& graph() const { return graph_; }

 private:
  // Session node + infrastructure edges for the calling client.
  EntityGraph::NodeId touch_context(sim::SimTime now, const app::ClientContext& ctx);
  void link_booking(sim::SimTime now, EntityGraph::NodeId session, const std::string& pnr);

  EntityGraph& graph_;
};

}  // namespace fraudsim::detect::graph
