// Incremental entity graph for organized-abuse (ring) detection.
//
// The paper's case studies show campaigns whose individual requests stay
// under every per-entity control: NiP caps, rate limits, SMS quotas each see
// only a weak signal. The industrial answer (PAPERS.md, Grab) is structural:
// link the entities a campaign cannot help but share — exit IPs, device
// fingerprints, payment instruments, passenger-name patterns — and aggregate
// the weak signals over each connected component, so that many sub-threshold
// members become one strong component-level detection.
//
// Design constraints, in order:
//   * Deterministic. The graph is a pure function of the admitted event
//     stream: no wall clock, no iteration over unordered containers, no
//     pointer-order dependence. Connected components are recomputed lazily
//     from the (sorted) edge set, so a checkpoint/restore or a replay lands
//     on the identical partition as the original incremental run.
//   * Memory-bounded. Hard caps on nodes and edges are enforced at insert
//     (oldest-by-last-seen evicted first), and sim-time TTL aging retires
//     idle entities on a fixed maintenance cadence — the graph never outgrows
//     its configuration no matter how long the platform runs.
//   * Checkpointable. Byte-stable serialization (nodes in intern-id order,
//     edges in key order) keeps journal record/replay and fleet resume
//     byte-identical, including intern-id assignment (util::InternTable
//     reproduces its free list exactly).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fault/fault.hpp"
#include "sim/time.hpp"
#include "util/archive.hpp"
#include "util/intern.hpp"

namespace fraudsim::detect::graph {

// Typed nodes. The type is folded into the interned key (one-byte prefix),
// so one InternTable serves every namespace without collisions.
enum class NodeType : std::uint8_t {
  Session,       // web session cookie
  Fingerprint,   // browser fingerprint digest
  Ip,            // exit IPv4 address
  Asn,           // /16 prefix standing in for the announcing AS (hub: the
                 // partition never unions across ASN edges — a busy consumer
                 // block would weld unrelated users into one component)
  PaymentToken,  // tokenized payment instrument
  NamePattern,   // lead-passenger name key (identity modulo birthdate)
  Booking,       // PNR (links the holding / paying / SMS-ing sessions)
};

[[nodiscard]] const char* to_string(NodeType t);

// Weak-signal classes accumulated per node as sim-time EWMAs and summed per
// component at scoring time. Each is fed by sub-threshold activity the
// per-entity detectors individually ignore.
enum class Signal : std::uint8_t { Requests, Holds, Sms, Pays };

inline constexpr std::size_t kSignalCount = 4;

struct GraphConfig {
  // Hard caps, enforced at insert time (oldest entity evicted first).
  std::size_t max_nodes = 65536;
  std::size_t max_edges = 262144;
  // Union-find refuses merges that would grow a component past this size, so
  // one mega-component (a shared NAT, a hot booking flow) cannot swallow the
  // graph. Sized so a multi-hour ring campaign — whose component accretes a
  // booking and a name-pattern node per hold — still fits in one piece.
  std::size_t component_cap = 1024;
  // Sim-time TTL aging, applied on the maintenance cadence below.
  sim::SimDuration node_ttl = sim::hours(12);
  sim::SimDuration edge_ttl = sim::hours(12);
  sim::SimDuration maintenance_every = sim::minutes(30);
  // Half-life of the per-node weak-signal EWMAs.
  sim::SimDuration signal_half_life = sim::hours(2);
};

struct GraphNode {
  NodeType type = NodeType::Session;
  sim::SimTime first_seen = 0;
  sim::SimTime last_seen = 0;
  // EWMA tallies, decayed functionally: `signals` holds the value as of
  // `signals_updated`; readers decay to their own `now`.
  double signals[kSignalCount] = {0, 0, 0, 0};
  sim::SimTime signals_updated = 0;
};

// Cumulative lifetime counters (serialized). The platform invariants check
// the conservation laws: live nodes == created - evicted, same for edges.
struct GraphStats {
  std::uint64_t events_seen = 0;     // ingest events offered to the graph
  std::uint64_t events_dropped = 0;  // ... skipped by the graph.ingest fault
  std::uint64_t nodes_created = 0;
  std::uint64_t nodes_evicted = 0;
  std::uint64_t edges_created = 0;
  std::uint64_t edges_evicted = 0;
  std::uint64_t maintenance_runs = 0;
};

// Per-component aggregate produced for the detector: structural counts by
// node type plus the decayed weak-signal sums.
struct ComponentSummary {
  std::uint32_t id = 0;      // canonical id: smallest member intern id
  std::size_t size = 0;      // member nodes of any type
  std::size_t sessions = 0;
  std::size_t fingerprints = 0;
  std::size_t ips = 0;
  std::size_t asns = 0;
  std::size_t tokens = 0;
  std::size_t names = 0;
  std::size_t bookings = 0;
  double signals[kSignalCount] = {0, 0, 0, 0};  // decayed to the query time
};

class EntityGraph {
 public:
  using NodeId = util::InternTable::Id;  // 0 = no node

  explicit EntityGraph(GraphConfig config = {});

  // --- Ingest ---------------------------------------------------------------
  // Called once per observed application event, before any updates for it:
  // counts the event, runs due TTL maintenance, and consults the
  // "graph.ingest" fault point. Returns false when the event must be dropped
  // (injected ingest outage) — the caller skips its updates for this event.
  [[nodiscard]] bool begin_event(sim::SimTime now);

  // Insert-or-refresh the node for (type, key); returns its id.
  NodeId touch(sim::SimTime now, NodeType type, std::string_view key);

  // Insert-or-refresh the undirected edge {a, b}. Ignores dead/equal ids.
  void connect(sim::SimTime now, NodeId a, NodeId b);

  // Accumulate weak-signal mass on a live node's EWMA.
  void add_signal(sim::SimTime now, NodeId node, Signal signal, double weight);

  // TTL aging pass (begin_event runs this on the configured cadence; exposed
  // for tests).
  void maintain(sim::SimTime now);

  // --- Queries --------------------------------------------------------------
  [[nodiscard]] const GraphConfig& config() const { return config_; }
  [[nodiscard]] const GraphStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t node_count() const { return intern_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const util::InternTable& interner() const { return intern_; }

  // Lookup without inserting; 0 when the entity is not (or no longer) live.
  [[nodiscard]] NodeId find(NodeType type, std::string_view key) const;
  [[nodiscard]] bool alive(NodeId id) const;
  [[nodiscard]] const GraphNode* node(NodeId id) const;

  // Canonical component id of a live node (smallest member id); 0 for dead
  // ids. Stable across checkpoint/restore because the partition is recomputed
  // from the sorted edge set, never carried as incremental state.
  [[nodiscard]] std::uint32_t component_of(NodeId id) const;
  [[nodiscard]] std::size_t component_size(NodeId id) const;

  // All components with their aggregates, signals decayed to `at`, ordered by
  // canonical id.
  [[nodiscard]] std::vector<ComponentSummary> components(sim::SimTime at) const;

  // Merges refused by the component cap during the last partition rebuild.
  [[nodiscard]] std::size_t unions_refused() const;

  // Largest component size in the current partition (invariant support).
  [[nodiscard]] std::size_t max_component_size() const;

  // --- Shard merge ----------------------------------------------------------
  // Deterministic iteration: live nodes in intern-id order, edges in key
  // order — the orders the checkpoint serialization already relies on.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (NodeId id = 1; id < nodes_.size(); ++id) {
      if (nodes_[id].has_value()) fn(id, *nodes_[id]);
    }
  }
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (const auto& [key, last_seen] : edges_) fn(key.first, key.second, last_seen);
  }

  // Raw (un-prefixed) key of a live node; empty for dead ids.
  [[nodiscard]] std::string_view key_of(NodeId id) const;

  // Folds `other`'s live nodes, edges and decayed signal mass into this
  // graph at time `now`. Sharded runs keep one graph per shard (each ingests
  // only its shard's events, so ingest order is deterministic regardless of
  // worker threads) and merge them at epoch barriers; the merged graph's
  // canonical partition is a pure function of the resulting edge set, so the
  // merge order of shards cannot change the components — only intern-id
  // labels, which the canonical (smallest-member) component ids absorb.
  void merge_from(const EntityGraph& other, sim::SimTime now);

  // --- Checkpoint -----------------------------------------------------------
  // Byte-stable: intern table, then live nodes in id order, then edges in
  // key order, then counters. restore() reproduces the exact state (and the
  // exact intern-id assignment), so re-checkpointing restored state is
  // byte-identical.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  [[nodiscard]] static std::string compose_key(NodeType type, std::string_view key);
  void evict_node(NodeId id);
  void evict_oldest_node();
  void evict_oldest_edge();
  void rebuild_partition() const;
  [[nodiscard]] std::uint32_t root(std::uint32_t id) const;

  GraphConfig config_;
  util::InternTable intern_;
  // Indexed by intern id (slot 0 unused); nullopt = dead/free id.
  std::vector<std::optional<GraphNode>> nodes_;
  // Undirected edges keyed (min id, max id) -> last_seen. std::map gives the
  // deterministic iteration order the partition rebuild and the checkpoint
  // serialization both rely on.
  std::map<std::pair<NodeId, NodeId>, sim::SimTime> edges_;
  GraphStats stats_;
  sim::SimTime next_maintenance_ = 0;
  fault::FaultPoint& ingest_fault_;

  // Lazy canonical partition: a pure function of (live nodes, edge set).
  // Union by size over edges in key order, merges refused at component_cap.
  mutable bool partition_dirty_ = true;
  mutable std::vector<std::uint32_t> parent_;
  mutable std::vector<std::uint32_t> rank_size_;
  mutable std::vector<std::uint32_t> canonical_;
  mutable std::size_t unions_refused_ = 0;
};

}  // namespace fraudsim::detect::graph
