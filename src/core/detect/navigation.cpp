#include "core/detect/navigation.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace fraudsim::detect {

void NavigationModel::fit(const std::vector<web::Session>& clean_sessions, double alpha,
                          double threshold_percentile) {
  std::array<std::array<double, kStates>, kStates> counts{};
  for (const auto& session : clean_sessions) {
    for (std::size_t i = 1; i < session.requests.size(); ++i) {
      const auto from = static_cast<std::size_t>(session.requests[i - 1].endpoint);
      const auto to = static_cast<std::size_t>(session.requests[i].endpoint);
      if (from < kStates && to < kStates) counts[from][to] += 1.0;
    }
  }
  for (std::size_t from = 0; from < kStates; ++from) {
    double row_total = alpha * kStates;
    for (std::size_t to = 0; to < kStates; ++to) row_total += counts[from][to];
    for (std::size_t to = 0; to < kStates; ++to) {
      log_transition_[from][to] = std::log2((counts[from][to] + alpha) / row_total);
    }
  }
  fitted_ = true;

  // Calibrate the threshold on the clean population itself.
  std::vector<double> scores;
  for (const auto& session : clean_sessions) {
    if (session.requests.size() >= 2) scores.push_back(score(session));
  }
  if (!scores.empty()) {
    threshold_ = util::percentile(std::move(scores), threshold_percentile);
  }
}

double NavigationModel::score(const web::Session& session) const {
  if (!fitted_ || session.requests.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < session.requests.size(); ++i) {
    const auto from = static_cast<std::size_t>(session.requests[i - 1].endpoint);
    const auto to = static_cast<std::size_t>(session.requests[i].endpoint);
    if (from >= kStates || to >= kStates) continue;
    total += log_transition_[from][to];
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

bool NavigationModel::is_anomalous(const web::Session& session) const {
  if (!fitted_ || session.requests.size() < 3) return false;  // too short to judge
  return score(session) < threshold_;
}

void NavigationModel::analyze(const std::vector<web::Session>& sessions, AlertSink& sink) const {
  for (const auto& session : sessions) {
    if (!is_anomalous(session)) continue;
    Alert alert;
    alert.time = session.end();
    alert.detector = "behavior.navigation";
    alert.severity = Severity::Warning;
    alert.explanation =
        "navigation likelihood " + std::to_string(score(session)) + " below clean threshold " +
        std::to_string(threshold_);
    alert.session = session.id;
    alert.actor = session.actor;
    if (!session.requests.empty()) {
      alert.fingerprint = session.requests.front().fp_hash;
      alert.ip = session.requests.front().ip;
    }
    sink.emit(std::move(alert));
  }
}

}  // namespace fraudsim::detect
