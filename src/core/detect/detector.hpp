// The uniform detector-family interface.
//
// Every detection family the pipeline runs — behaviour, network reputation,
// fingerprint knowledge, feature-level anomaly — implements this interface,
// so the pipeline iterates one vector instead of hand-written per-family
// branches. The interface layer (DetectionPipeline::run) owns everything a
// family used to hand-roll: fault-point guarding, analysis-budget accounting,
// skip-reason bookkeeping, brownout stride-sampling, per-family metrics and
// trace spans.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/detect/alert.hpp"
#include "sim/time.hpp"
#include "web/session.hpp"

namespace fraudsim::app {
class Application;
}

namespace fraudsim::detect {

// Modeled batch-analysis cost class. Cheap families advance the analysis
// clock by analysis_cost_cheap per session, expensive ones (classifier,
// navigation, biometrics) by analysis_cost_expensive — and only expensive
// families are stride-sampled under brownout.
enum class DetectorCost : std::uint8_t { Cheap, Expensive };

[[nodiscard]] constexpr const char* to_string(DetectorCost c) {
  return c == DetectorCost::Expensive ? "expensive" : "cheap";
}

// Read-only view of one analysis window, shared by every family in a run.
// `sessions` is the full sessionized window; `sampled_sessions` is the
// brownout-degraded view (every stride-th session) that expensive families
// analyse — identical to `sessions` when stride == 1.
struct RequestView {
  const app::Application& application;
  sim::SimTime from = 0;
  sim::SimTime to = 0;
  const std::vector<web::Session>& sessions;
  const std::vector<web::Session>& sampled_sessions;
  int stride = 1;

  // The view an implementation of `cost` should analyse.
  [[nodiscard]] const std::vector<web::Session>& sessions_for(DetectorCost cost) const {
    return cost == DetectorCost::Expensive ? sampled_sessions : sessions;
  }
};

// Per-epoch outcome of a batched evaluation: how many sessions the family
// actually analysed in that epoch's view and how many alerts it emitted for
// it. The base-class adapter fills this from the scalar path; a vectorized
// override must report the same numbers.
struct BatchScore {
  std::uint64_t sessions_scored = 0;
  std::uint64_t alerts = 0;
};

class Detector {
 public:
  virtual ~Detector() = default;

  // Family label, e.g. "behavior.volume" (alert attribution + reports).
  [[nodiscard]] virtual const char* name() const = 0;
  // Fault point guarding this family, e.g. "detect.volume.run".
  [[nodiscard]] virtual const char* fault_point() const = 0;
  [[nodiscard]] virtual DetectorCost cost() const = 0;

  // Analyses the window and emits alerts. May throw: the pipeline catches
  // and records the family as skipped — one faulting family never takes the
  // run down.
  virtual void evaluate(const RequestView& view, AlertSink& alerts) = 0;

  // Batched entry point: scores every epoch view in one call, filling one
  // BatchScore per view. The base implementation is an adapter that loops
  // `evaluate` over the views, so an existing scalar detector works
  // unmodified; hot families override it with a vectorized pass that shares
  // work across epochs. Contract: alert bytes and order must be identical to
  // the adapter's (evaluate on views[0], then views[1], ...) — the pipeline's
  // scalar mode IS the adapter, and the two modes are diffed byte-for-byte.
  // `scores.size()` must equal `views.size()`.
  virtual void score_batch(std::span<const RequestView> views, std::span<BatchScore> scores,
                           AlertSink& alerts);
};

}  // namespace fraudsim::detect
