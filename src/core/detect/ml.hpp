// Minimal from-scratch ML toolkit for behaviour-based detection (§III-A).
//
// No external ML dependency: a feature scaler, L2-regularised logistic
// regression trained by mini-batch SGD, Gaussian naive Bayes, and k-means —
// the classifier/clustering families the web-bot-detection literature the
// paper cites actually uses on session features.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace fraudsim::detect {

using FeatureRow = std::vector<double>;

struct Dataset {
  std::vector<FeatureRow> rows;
  std::vector<int> labels;  // 0 = benign, 1 = bot (unused by clustering)

  [[nodiscard]] std::size_t size() const { return rows.size(); }
  [[nodiscard]] std::size_t dims() const { return rows.empty() ? 0 : rows.front().size(); }
};

// Z-score standardisation fitted on training data.
class StandardScaler {
 public:
  void fit(const std::vector<FeatureRow>& rows);
  [[nodiscard]] FeatureRow transform(const FeatureRow& row) const;
  [[nodiscard]] std::vector<FeatureRow> transform(const std::vector<FeatureRow>& rows) const;
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

struct LogisticConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 60;
  std::size_t batch_size = 32;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig config = {});

  void train(const Dataset& data, sim::Rng& rng);
  [[nodiscard]] double predict_proba(const FeatureRow& row) const;
  [[nodiscard]] int predict(const FeatureRow& row, double threshold = 0.5) const;
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

 private:
  LogisticConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

class GaussianNaiveBayes {
 public:
  void train(const Dataset& data);
  [[nodiscard]] double predict_proba(const FeatureRow& row) const;  // P(bot | x)
  [[nodiscard]] int predict(const FeatureRow& row, double threshold = 0.5) const;

 private:
  struct ClassModel {
    std::vector<double> mean;
    std::vector<double> var;
    double prior = 0.5;
  };
  ClassModel benign_;
  ClassModel bot_;
  bool trained_ = false;
};

struct KMeansResult {
  std::vector<FeatureRow> centroids;
  std::vector<int> assignment;  // per input row
  double inertia = 0.0;
  int iterations = 0;
};

// Lloyd's algorithm with k-means++ seeding.
[[nodiscard]] KMeansResult kmeans(const std::vector<FeatureRow>& rows, int k, sim::Rng& rng,
                                  int max_iterations = 100);

// Train/test split preserving determinism.
struct Split {
  Dataset train;
  Dataset test;
};
[[nodiscard]] Split train_test_split(const Dataset& data, double test_fraction, sim::Rng& rng);

}  // namespace fraudsim::detect
