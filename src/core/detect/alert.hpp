// Alerts emitted by detectors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hpp"
#include "net/ip.hpp"
#include "sim/time.hpp"
#include "web/request.hpp"

namespace fraudsim::detect {

enum class Severity : std::uint8_t { Info, Warning, Critical };

[[nodiscard]] const char* to_string(Severity s);

struct Alert {
  sim::SimTime time = 0;
  std::string detector;      // emitting detector id
  Severity severity = Severity::Warning;
  std::string explanation;   // human-readable reason

  // Entity keys the alert points at (any subset).
  std::optional<fp::FpHash> fingerprint;
  std::optional<net::IpV4> ip;
  std::optional<web::SessionId> session;
  std::optional<std::string> pnr;
  std::optional<web::ActorId> actor;  // resolved lazily for scoring
};

class AlertSink {
 public:
  void emit(Alert alert);

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] std::size_t count() const { return alerts_.size(); }
  [[nodiscard]] std::vector<Alert> by_detector(const std::string& detector) const;
  void clear() { alerts_.clear(); }

 private:
  std::vector<Alert> alerts_;
};

}  // namespace fraudsim::detect
