// Knowledge-based (fingerprint) detection (§III-B).
//
// Four detectors mirroring the techniques the paper reviews:
//   * ArtifactDetector     — navigator.webdriver / headless tells
//   * ConsistencyDetector  — impossible attribute combinations
//   * RarityDetector       — fingerprints never seen in the population
//   * FingerprintBlocklist — operational blocking built from incidents;
//                            the thing rotation defeats
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/fp_store.hpp"
#include "core/detect/alert.hpp"
#include "fingerprint/consistency.hpp"
#include "web/session.hpp"

namespace fraudsim::detect {

// Session sets of a multi-epoch batch: one session list per epoch view. The
// fingerprint-knowledge verdict of a hash is epoch-independent, so the
// batched analyzers judge every stored fingerprint once and replay the
// verdict against each epoch's sessions.
using SessionSets = std::span<const std::vector<web::Session>* const>;

class ArtifactDetector {
 public:
  [[nodiscard]] bool is_bot(const fp::Fingerprint& fingerprint, std::string* reason) const;
  void analyze(const app::FingerprintStore& store, const std::vector<web::Session>& sessions,
               AlertSink& sink) const;
  // Batched: one is_bot pass over the store serves every session set. Alerts
  // are byte-identical to calling analyze once per set in order.
  void analyze_many(const app::FingerprintStore& store, SessionSets session_sets,
                    AlertSink& sink, std::vector<std::size_t>* alerts_per_set = nullptr) const;
};

class ConsistencyDetector {
 public:
  explicit ConsistencyDetector(double min_score = 0.3);
  [[nodiscard]] bool is_bot(const fp::Fingerprint& fingerprint, std::string* reason) const;
  void analyze(const app::FingerprintStore& store, const std::vector<web::Session>& sessions,
               AlertSink& sink) const;
  // Batched: the consistency rule set runs once per stored fingerprint
  // instead of once per (fingerprint, epoch). Byte-identical to per-set
  // analyze calls.
  void analyze_many(const app::FingerprintStore& store, SessionSets session_sets,
                    AlertSink& sink, std::vector<std::size_t>* alerts_per_set = nullptr) const;

 private:
  fp::ConsistencyChecker checker_;
  double min_score_;
};

// Flags fingerprints whose population frequency is below `rare_frequency`
// despite `min_observations` sightings (one-off fingerprints are normal; a
// busy client with a never-seen-before stack is what stands out).
class RarityDetector {
 public:
  RarityDetector(double rare_frequency = 1e-4, std::uint64_t min_observations = 30);
  void analyze(const app::FingerprintStore& store, AlertSink& sink) const;
  // Batched: rarity is entirely window-independent, so the store is scanned
  // once and the identical alert list is replayed `repeats` times (one per
  // epoch view), matching per-epoch analyze calls byte-for-byte.
  void analyze_repeated(const app::FingerprintStore& store, std::size_t repeats, AlertSink& sink,
                        std::vector<std::size_t>* alerts_per_repeat = nullptr) const;
  [[nodiscard]] bool is_rare(const app::FingerprintStore& store, fp::FpHash hash) const;

 private:
  double rare_frequency_;
  std::uint64_t min_observations_;
};

// Operational blocklist. The mitigation controller adds hashes here; the
// rule engine consults it at ingress. Tracks when each hash was added and
// when it last matched so rotation dynamics can be measured.
class FingerprintBlocklist {
 public:
  void block(fp::FpHash hash, sim::SimTime when, std::string reason);
  [[nodiscard]] bool contains(fp::FpHash hash) const;
  void note_hit(fp::FpHash hash, sim::SimTime when);

  struct Entry {
    sim::SimTime added = 0;
    sim::SimTime last_hit = -1;
    std::string reason;
    std::uint64_t hits = 0;
  };
  [[nodiscard]] const std::unordered_map<fp::FpHash, Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // How long each blocked fingerprint kept appearing after being blocked
  // (last_hit - added), hours; the effectiveness window of each rule.
  [[nodiscard]] std::vector<double> effectiveness_windows_hours() const;

  // Checkpoint support.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  std::unordered_map<fp::FpHash, Entry> entries_;
};

}  // namespace fraudsim::detect
