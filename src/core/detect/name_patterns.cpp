#include "core/detect/name_patterns.hpp"

#include <unordered_map>

#include "util/strings.hpp"

namespace fraudsim::detect {

NamePatternAnalyzer::NamePatternAnalyzer(NamePatternConfig config) : config_(config) {}

std::set<std::string> NamePatternFindings::all_flagged() const {
  std::set<std::string> all;
  all.insert(gibberish.begin(), gibberish.end());
  all.insert(repeated_identity.begin(), repeated_identity.end());
  all.insert(birthdate_rotation.begin(), birthdate_rotation.end());
  all.insert(permuted_party.begin(), permuted_party.end());
  all.insert(misspelling_cluster.begin(), misspelling_cluster.end());
  return all;
}

NamePatternFindings NamePatternAnalyzer::analyze(
    const std::vector<const airline::Reservation*>& reservations) const {
  NamePatternFindings findings;

  // Pass 1: global aggregation.
  std::unordered_map<std::string, std::vector<const airline::Reservation*>> by_name_key;
  std::unordered_map<std::string, std::vector<const airline::Reservation*>> by_identity_key;
  std::unordered_map<std::string, std::set<std::string>> birthdates_by_name;
  std::unordered_map<std::string, std::vector<const airline::Reservation*>> by_party_key;
  std::size_t total_name_instances = 0;

  for (const auto* r : reservations) {
    for (const auto& p : r->passengers) {
      by_name_key[p.name_key()].push_back(r);
      by_identity_key[p.identity_key()].push_back(r);
      birthdates_by_name[p.name_key()].insert(p.birthdate.str());
      ++total_name_instances;
    }
    by_party_key[airline::party_key(r->passengers)].push_back(r);
  }
  const double share_floor =
      config_.name_share_threshold * static_cast<double>(total_name_instances);

  // Gibberish: per-reservation mean score over the party's names.
  for (const auto* r : reservations) {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto& p : r->passengers) {
      total += util::gibberish_score(p.first_name);
      total += util::gibberish_score(p.surname);
      n += 2;
    }
    if (n > 0 && total / static_cast<double>(n) >= config_.gibberish_threshold) {
      findings.gibberish.insert(r->pnr);
    }
  }

  // Repeated identities: the same person (name AND birthdate) across many
  // distinct reservations — rare for genuine travellers within one window.
  for (const auto& [key, rs] : by_identity_key) {
    (void)key;
    if (rs.size() < config_.repeat_threshold) continue;
    for (const auto* r : rs) findings.repeated_identity.insert(r->pnr);
  }

  // Birthdate rotation: one NAME dominating the window while cycling through
  // many birthdates (Airline B's fixed-name signature). The share floor keeps
  // genuinely popular names from firing at airline scale.
  for (const auto& [key, rs] : by_name_key) {
    if (rs.size() < config_.repeat_threshold) continue;
    if (static_cast<double>(rs.size()) < share_floor) continue;
    if (birthdates_by_name[key].size() >= config_.birthdate_variants) {
      for (const auto* r : rs) findings.birthdate_rotation.insert(r->pnr);
    }
  }

  // Permuted parties: the same multiset of people across many reservations.
  for (const auto& [key, rs] : by_party_key) {
    (void)key;
    if (rs.size() < config_.party_repeat_threshold) continue;
    for (const auto* r : rs) findings.permuted_party.insert(r->pnr);
  }

  // Misspelling clusters: name keys within edit distance 1 of a key that
  // repeats. Hand-typed variants land here even when exact repetition stays
  // below threshold.
  std::vector<std::string> keys;
  keys.reserve(by_name_key.size());
  for (const auto& [key, rs] : by_name_key) {
    (void)rs;
    keys.push_back(key);
  }
  for (const auto& [key, rs] : by_name_key) {
    if (rs.size() < 2) continue;  // only cluster around names seen repeatedly
    std::size_t cluster = rs.size();
    std::vector<const std::string*> variants;
    for (const auto& other : keys) {
      if (other == key) continue;
      if (util::within_edit_distance(key, other, 1)) {
        cluster += by_name_key[other].size();
        variants.push_back(&other);
      }
    }
    if (variants.empty() || cluster < config_.misspell_cluster_size) continue;
    // Scale guard: distinct real people can carry near-identical names; a
    // hand-typed campaign's cluster dominates the window instead.
    if (static_cast<double>(cluster) < share_floor) continue;
    for (const auto* r : rs) findings.misspelling_cluster.insert(r->pnr);
    for (const auto* v : variants) {
      for (const auto* r : by_name_key[*v]) findings.misspelling_cluster.insert(r->pnr);
    }
  }

  return findings;
}

NamePatternFindings NamePatternAnalyzer::analyze(
    const std::vector<airline::Reservation>& reservations) const {
  std::vector<const airline::Reservation*> ptrs;
  ptrs.reserve(reservations.size());
  for (const auto& r : reservations) ptrs.push_back(&r);
  return analyze(ptrs);
}

void NamePatternAnalyzer::analyze(const std::vector<airline::Reservation>& reservations,
                                  AlertSink& sink) const {
  const auto findings = analyze(reservations);
  std::unordered_map<std::string, const airline::Reservation*> by_pnr;
  for (const auto& r : reservations) by_pnr[r.pnr] = &r;

  auto emit = [&](const std::set<std::string>& pnrs, const char* signal) {
    for (const auto& pnr : pnrs) {
      const auto it = by_pnr.find(pnr);
      if (it == by_pnr.end()) continue;
      Alert alert;
      alert.time = it->second->created;
      alert.detector = std::string("name.") + signal;
      alert.severity = Severity::Warning;
      alert.explanation = std::string("identity pattern: ") + signal;
      alert.pnr = pnr;
      alert.fingerprint = it->second->source_fp;
      alert.ip = it->second->source_ip;
      alert.actor = it->second->actor;
      sink.emit(std::move(alert));
    }
  };
  emit(findings.gibberish, "gibberish");
  emit(findings.repeated_identity, "repeated");
  emit(findings.birthdate_rotation, "birthdate-rotation");
  emit(findings.permuted_party, "permuted-party");
  emit(findings.misspelling_cluster, "misspelling-cluster");
}

}  // namespace fraudsim::detect
