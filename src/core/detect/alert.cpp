#include "core/detect/alert.hpp"

namespace fraudsim::detect {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Critical:
      return "critical";
  }
  return "?";
}

void AlertSink::emit(Alert alert) { alerts_.push_back(std::move(alert)); }

std::vector<Alert> AlertSink::by_detector(const std::string& detector) const {
  std::vector<Alert> out;
  for (const auto& a : alerts_) {
    if (a.detector == detector) out.push_back(a);
  }
  return out;
}

}  // namespace fraudsim::detect
