// Graph-based navigation analysis (paper §V: "local behavioral modeling,
// such as graph-based navigation analysis ... could be adapted to functional
// abuse detection").
//
// A first-order Markov model over endpoint transitions is fitted on known-
// clean sessions; sessions whose transition likelihood falls far below the
// clean population are flagged. Low-volume DoI bots evade volume metrics but
// their *navigation* is unmistakable: SeatMap -> Hold -> Hold -> ... loops
// that no legitimate journey produces.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/detect/alert.hpp"
#include "web/session.hpp"

namespace fraudsim::detect {

class NavigationModel {
 public:
  // Fit transition and start probabilities from clean sessions (Laplace
  // smoothing `alpha`), then calibrate the alert threshold at the given
  // percentile of the clean sessions' own scores.
  void fit(const std::vector<web::Session>& clean_sessions, double alpha = 0.5,
           double threshold_percentile = 0.02);

  // Mean log2-probability per transition of the session's endpoint path.
  // Higher = more like the clean population. Sessions with < 2 requests
  // return 0 (no transitions to judge).
  [[nodiscard]] double score(const web::Session& session) const;

  [[nodiscard]] bool is_anomalous(const web::Session& session) const;
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] bool fitted() const { return fitted_; }

  // Emits one alert per anomalous session.
  void analyze(const std::vector<web::Session>& sessions, AlertSink& sink) const;

 private:
  static constexpr std::size_t kStates = 15;  // one per web::Endpoint value
  std::array<std::array<double, kStates>, kStates> log_transition_{};
  double threshold_ = -100.0;
  bool fitted_ = false;
};

}  // namespace fraudsim::detect
