// NiP-distribution anomaly detection (the Fig. 1 analysis as a detector).
//
// Maintains a baseline Number-in-Party histogram from a reference period and
// compares observation windows against it (chi-square + per-NiP z-scores).
// Flags the NiP values driving the deviation and the reservations/flights
// carrying them — how the Airline A wave at NiP=6 stands out against an
// average week.
#pragma once

#include <span>
#include <vector>

#include "airline/inventory.hpp"
#include "analytics/compare.hpp"
#include "analytics/histogram.hpp"
#include "core/detect/alert.hpp"

namespace fraudsim::detect {

struct NipAnomalyConfig {
  int max_nip = 9;
  double alpha = 1e-4;        // chi-square significance for "distribution shifted"
  double z_threshold = 6.0;   // per-NiP z-score to name a culprit value
  // Minimum observed reservations in a window before judging it.
  std::uint64_t min_window_count = 50;
};

struct NipWindowVerdict {
  analytics::DistributionTestResult test;
  std::vector<std::pair<int, double>> z_scores;  // (nip, z)
  std::vector<int> anomalous_nips;               // z above threshold
  bool anomalous = false;
};

class NipAnomalyDetector {
 public:
  explicit NipAnomalyDetector(NipAnomalyConfig config = {});

  // Baseline from reservations created in [from, to).
  void fit_baseline(const std::vector<airline::Reservation>& reservations, sim::SimTime from,
                    sim::SimTime to);
  void fit_baseline(const analytics::CategoricalHistogram<int>& histogram);

  [[nodiscard]] NipWindowVerdict evaluate_window(
      const std::vector<airline::Reservation>& reservations, sim::SimTime from,
      sim::SimTime to) const;

  // Verdict from an already-binned window histogram (the batched path bins
  // every window in one pass and judges each from its histogram).
  [[nodiscard]] NipWindowVerdict evaluate_window(
      const analytics::CategoricalHistogram<int>& observed) const;

  // Emits alerts (one per anomalous NiP value) and flags the reservations at
  // those NiP values inside the window.
  void analyze(const std::vector<airline::Reservation>& reservations, sim::SimTime from,
               sim::SimTime to, AlertSink& sink) const;

  // Vectorized multi-window analysis: one pass over the reservation log bins
  // every window's histogram and reservation index list, then each window is
  // judged and alerted exactly as `analyze` would have — alert bytes and
  // order are identical to calling `analyze` once per window in order. When
  // `alerts_per_window` is non-null it receives one emitted-alert count per
  // window.
  struct Window {
    sim::SimTime from = 0;
    sim::SimTime to = 0;
  };
  void analyze_windows(const std::vector<airline::Reservation>& reservations,
                       std::span<const Window> windows, AlertSink& sink,
                       std::vector<std::size_t>* alerts_per_window = nullptr) const;

  [[nodiscard]] const analytics::CategoricalHistogram<int>& baseline() const { return baseline_; }

  // Histogram of NiP for reservations created inside a window.
  [[nodiscard]] static analytics::CategoricalHistogram<int> window_histogram(
      const std::vector<airline::Reservation>& reservations, sim::SimTime from, sim::SimTime to);

 private:
  NipAnomalyConfig config_;
  analytics::CategoricalHistogram<int> baseline_;
};

}  // namespace fraudsim::detect
