// SMS anomaly detection (§IV-C).
//
// Three monitors matching the case study:
//   * per-country surge          — the Table I analysis as a detector
//   * per-booking-reference rate — the control that was missing in Dec 2022
//   * path-level volume monitor  — the control that eventually fired,
//                                  late, after significant spend
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analytics/compare.hpp"
#include "core/detect/alert.hpp"
#include "sms/gateway.hpp"

namespace fraudsim::detect {

struct SmsAnomalyConfig {
  // Surge detector: flag countries whose per-day volume grows by more than
  // this fraction over baseline, given enough absolute volume.
  double surge_threshold = 3.0;        // +300%
  std::uint64_t min_volume = 30;       // during-window absolute floor
  // Floor applied to per-day baseline rates when computing surges, so a
  // destination that received (almost) nothing before the attack yields a
  // huge-but-finite surge instead of a division by zero.
  double min_baseline_per_day = 0.05;
  // Path monitor: total boarding-pass SMS per day that trips the alarm.
  double path_daily_limit = 2000;
  // Booking-reference monitor: sends per PNR that trip the alarm.
  std::uint64_t per_booking_limit = 10;
};

struct CountrySurge {
  net::CountryCode country;
  double baseline = 0;
  double during = 0;
  double surge_fraction = 0;
};

class SmsAnomalyDetector {
 public:
  explicit SmsAnomalyDetector(SmsAnomalyConfig config = {});

  // Per-country surge between a baseline window and an observation window,
  // ranked by surge descending. Considers only delivered messages of `type`
  // (nullopt = all).
  [[nodiscard]] std::vector<CountrySurge> country_surges(
      const sms::SmsGateway& gateway, sim::SimTime baseline_from, sim::SimTime baseline_to,
      sim::SimTime during_from, sim::SimTime during_to,
      std::optional<sms::SmsType> type = {}) const;

  // First sim-time at which cumulative boarding-pass sends in any rolling day
  // exceed the path limit; nullopt if never.
  [[nodiscard]] std::optional<sim::SimTime> path_limit_trip_time(
      const sms::SmsGateway& gateway) const;

  // First sim-time at which any single booking reference exceeds the
  // per-booking limit; nullopt if never.
  [[nodiscard]] std::optional<sim::SimTime> per_booking_trip_time(
      const sms::SmsGateway& gateway) const;

  // Emits surge alerts + whichever rate monitors trip.
  void analyze(const sms::SmsGateway& gateway, sim::SimTime baseline_from,
               sim::SimTime baseline_to, sim::SimTime during_from, sim::SimTime during_to,
               AlertSink& sink) const;

  // Vectorized multi-window analysis. The two rate monitors scan the whole
  // gateway log and take no window parameters, so the batched path computes
  // each trip time ONCE and replays it per window instead of rescanning the
  // log window-count times; surges stay per-window. Alert bytes and order are
  // identical to calling `analyze` once per window in order. When
  // `alerts_per_window` is non-null it receives one emitted-alert count per
  // window.
  struct Window {
    sim::SimTime baseline_from = 0;
    sim::SimTime baseline_to = 0;
    sim::SimTime during_from = 0;
    sim::SimTime during_to = 0;
  };
  void analyze_windows(const sms::SmsGateway& gateway, std::span<const Window> windows,
                       AlertSink& sink,
                       std::vector<std::size_t>* alerts_per_window = nullptr) const;

  [[nodiscard]] const SmsAnomalyConfig& config() const { return config_; }

 private:
  SmsAnomalyConfig config_;
};

}  // namespace fraudsim::detect
