#include "core/detect/nip_anomaly.hpp"

#include <algorithm>

namespace fraudsim::detect {

NipAnomalyDetector::NipAnomalyDetector(NipAnomalyConfig config) : config_(config) {}

analytics::CategoricalHistogram<int> NipAnomalyDetector::window_histogram(
    const std::vector<airline::Reservation>& reservations, sim::SimTime from, sim::SimTime to) {
  analytics::CategoricalHistogram<int> hist;
  for (const auto& r : reservations) {
    if (r.created < from || r.created >= to) continue;
    hist.add(r.nip());
  }
  return hist;
}

void NipAnomalyDetector::fit_baseline(const std::vector<airline::Reservation>& reservations,
                                      sim::SimTime from, sim::SimTime to) {
  baseline_ = window_histogram(reservations, from, to);
}

void NipAnomalyDetector::fit_baseline(const analytics::CategoricalHistogram<int>& histogram) {
  baseline_ = histogram;
}

NipWindowVerdict NipAnomalyDetector::evaluate_window(
    const std::vector<airline::Reservation>& reservations, sim::SimTime from,
    sim::SimTime to) const {
  return evaluate_window(window_histogram(reservations, from, to));
}

NipWindowVerdict NipAnomalyDetector::evaluate_window(
    const analytics::CategoricalHistogram<int>& observed) const {
  NipWindowVerdict verdict;
  if (observed.total() < config_.min_window_count || baseline_.empty()) return verdict;

  std::vector<int> keys;
  for (int nip = 1; nip <= config_.max_nip; ++nip) keys.push_back(nip);
  verdict.test = analytics::compare_distributions(observed, baseline_, keys, config_.alpha);
  verdict.z_scores = analytics::per_key_zscores(observed, baseline_, keys);
  for (const auto& [nip, z] : verdict.z_scores) {
    if (z >= config_.z_threshold) verdict.anomalous_nips.push_back(nip);
  }
  verdict.anomalous = verdict.test.anomalous && !verdict.anomalous_nips.empty();
  return verdict;
}

void NipAnomalyDetector::analyze(const std::vector<airline::Reservation>& reservations,
                                 sim::SimTime from, sim::SimTime to, AlertSink& sink) const {
  const auto verdict = evaluate_window(reservations, from, to);
  if (!verdict.anomalous) return;
  for (const int nip : verdict.anomalous_nips) {
    Alert alert;
    alert.time = to;
    alert.detector = "nip.anomaly";
    alert.severity = Severity::Critical;
    alert.explanation = "NiP=" + std::to_string(nip) + " volume far above baseline (chi2=" +
                        std::to_string(verdict.test.chi_square) + ")";
    sink.emit(alert);
    // Flag every window reservation at the anomalous NiP.
    for (const auto& r : reservations) {
      if (r.created < from || r.created >= to) continue;
      if (r.nip() != nip) continue;
      Alert res_alert = alert;
      res_alert.severity = Severity::Warning;
      res_alert.explanation = "reservation at anomalous NiP=" + std::to_string(nip);
      res_alert.pnr = r.pnr;
      res_alert.fingerprint = r.source_fp;
      res_alert.ip = r.source_ip;
      res_alert.actor = r.actor;
      sink.emit(std::move(res_alert));
    }
  }
}

void NipAnomalyDetector::analyze_windows(const std::vector<airline::Reservation>& reservations,
                                         std::span<const Window> windows, AlertSink& sink,
                                         std::vector<std::size_t>* alerts_per_window) const {
  if (alerts_per_window != nullptr) {
    alerts_per_window->assign(windows.size(), 0);
  }
  // One pass over the reservation log bins every window at once. Windows may
  // overlap, so each reservation is credited to every window containing it;
  // index lists stay in log order, which is what the per-window alert loop
  // below relies on for byte-identical output.
  std::vector<analytics::CategoricalHistogram<int>> hists(windows.size());
  std::vector<std::vector<std::size_t>> members(windows.size());
  for (std::size_t r = 0; r < reservations.size(); ++r) {
    const auto created = reservations[r].created;
    for (std::size_t w = 0; w < windows.size(); ++w) {
      if (created < windows[w].from || created >= windows[w].to) continue;
      hists[w].add(reservations[r].nip());
      members[w].push_back(r);
    }
  }
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const auto verdict = evaluate_window(hists[w]);
    if (!verdict.anomalous) continue;
    const std::size_t before = sink.alerts().size();
    for (const int nip : verdict.anomalous_nips) {
      Alert alert;
      alert.time = windows[w].to;
      alert.detector = "nip.anomaly";
      alert.severity = Severity::Critical;
      alert.explanation = "NiP=" + std::to_string(nip) + " volume far above baseline (chi2=" +
                          std::to_string(verdict.test.chi_square) + ")";
      sink.emit(alert);
      for (const std::size_t r : members[w]) {
        const auto& res = reservations[r];
        if (res.nip() != nip) continue;
        Alert res_alert = alert;
        res_alert.severity = Severity::Warning;
        res_alert.explanation = "reservation at anomalous NiP=" + std::to_string(nip);
        res_alert.pnr = res.pnr;
        res_alert.fingerprint = res.source_fp;
        res_alert.ip = res.source_ip;
        res_alert.actor = res.actor;
        sink.emit(std::move(res_alert));
      }
    }
    if (alerts_per_window != nullptr) {
      (*alerts_per_window)[w] = sink.alerts().size() - before;
    }
  }
}

}  // namespace fraudsim::detect
