#include "core/detect/nip_anomaly.hpp"

#include <algorithm>

namespace fraudsim::detect {

NipAnomalyDetector::NipAnomalyDetector(NipAnomalyConfig config) : config_(config) {}

analytics::CategoricalHistogram<int> NipAnomalyDetector::window_histogram(
    const std::vector<airline::Reservation>& reservations, sim::SimTime from, sim::SimTime to) {
  analytics::CategoricalHistogram<int> hist;
  for (const auto& r : reservations) {
    if (r.created < from || r.created >= to) continue;
    hist.add(r.nip());
  }
  return hist;
}

void NipAnomalyDetector::fit_baseline(const std::vector<airline::Reservation>& reservations,
                                      sim::SimTime from, sim::SimTime to) {
  baseline_ = window_histogram(reservations, from, to);
}

void NipAnomalyDetector::fit_baseline(const analytics::CategoricalHistogram<int>& histogram) {
  baseline_ = histogram;
}

NipWindowVerdict NipAnomalyDetector::evaluate_window(
    const std::vector<airline::Reservation>& reservations, sim::SimTime from,
    sim::SimTime to) const {
  NipWindowVerdict verdict;
  const auto observed = window_histogram(reservations, from, to);
  if (observed.total() < config_.min_window_count || baseline_.empty()) return verdict;

  std::vector<int> keys;
  for (int nip = 1; nip <= config_.max_nip; ++nip) keys.push_back(nip);
  verdict.test = analytics::compare_distributions(observed, baseline_, keys, config_.alpha);
  verdict.z_scores = analytics::per_key_zscores(observed, baseline_, keys);
  for (const auto& [nip, z] : verdict.z_scores) {
    if (z >= config_.z_threshold) verdict.anomalous_nips.push_back(nip);
  }
  verdict.anomalous = verdict.test.anomalous && !verdict.anomalous_nips.empty();
  return verdict;
}

void NipAnomalyDetector::analyze(const std::vector<airline::Reservation>& reservations,
                                 sim::SimTime from, sim::SimTime to, AlertSink& sink) const {
  const auto verdict = evaluate_window(reservations, from, to);
  if (!verdict.anomalous) return;
  for (const int nip : verdict.anomalous_nips) {
    Alert alert;
    alert.time = to;
    alert.detector = "nip.anomaly";
    alert.severity = Severity::Critical;
    alert.explanation = "NiP=" + std::to_string(nip) + " volume far above baseline (chi2=" +
                        std::to_string(verdict.test.chi_square) + ")";
    sink.emit(alert);
    // Flag every window reservation at the anomalous NiP.
    for (const auto& r : reservations) {
      if (r.created < from || r.created >= to) continue;
      if (r.nip() != nip) continue;
      Alert res_alert = alert;
      res_alert.severity = Severity::Warning;
      res_alert.explanation = "reservation at anomalous NiP=" + std::to_string(nip);
      res_alert.pnr = r.pnr;
      res_alert.fingerprint = r.source_fp;
      res_alert.ip = r.source_ip;
      res_alert.actor = r.actor;
      sink.emit(std::move(res_alert));
    }
  }
}

}  // namespace fraudsim::detect
