#include "core/detect/ml.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace fraudsim::detect {

namespace {

[[nodiscard]] double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

[[nodiscard]] double squared_distance(const FeatureRow& a, const FeatureRow& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

void StandardScaler::fit(const std::vector<FeatureRow>& rows) {
  if (rows.empty()) return;
  const std::size_t dims = rows.front().size();
  mean_.assign(dims, 0.0);
  stddev_.assign(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < dims; ++i) mean_[i] += row[i];
  }
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < dims; ++i) {
      const double d = row[i] - mean_[i];
      stddev_[i] += d * d;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant feature: pass through centred
  }
}

FeatureRow StandardScaler::transform(const FeatureRow& row) const {
  assert(fitted());
  FeatureRow out(row.size());
  for (std::size_t i = 0; i < row.size(); ++i) out[i] = (row[i] - mean_[i]) / stddev_[i];
  return out;
}

std::vector<FeatureRow> StandardScaler::transform(const std::vector<FeatureRow>& rows) const {
  std::vector<FeatureRow> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform(row));
  return out;
}

LogisticRegression::LogisticRegression(LogisticConfig config) : config_(config) {}

void LogisticRegression::train(const Dataset& data, sim::Rng& rng) {
  const std::size_t n = data.size();
  const std::size_t dims = data.dims();
  if (n == 0 || dims == 0) return;
  weights_.assign(dims, 0.0);
  bias_ = 0.0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order.begin(), order.end());
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      std::vector<double> grad(dims, 0.0);
      double grad_bias = 0.0;
      for (std::size_t idx = start; idx < end; ++idx) {
        const auto& row = data.rows[order[idx]];
        const double y = static_cast<double>(data.labels[order[idx]]);
        double z = bias_;
        for (std::size_t i = 0; i < dims; ++i) z += weights_[i] * row[i];
        const double err = sigmoid(z) - y;
        for (std::size_t i = 0; i < dims; ++i) grad[i] += err * row[i];
        grad_bias += err;
      }
      const double scale = config_.learning_rate / static_cast<double>(end - start);
      for (std::size_t i = 0; i < dims; ++i) {
        weights_[i] -= scale * (grad[i] + config_.l2 * weights_[i]);
      }
      bias_ -= scale * grad_bias;
    }
  }
}

double LogisticRegression::predict_proba(const FeatureRow& row) const {
  if (weights_.empty()) return 0.5;
  double z = bias_;
  for (std::size_t i = 0; i < std::min(row.size(), weights_.size()); ++i) {
    z += weights_[i] * row[i];
  }
  return sigmoid(z);
}

int LogisticRegression::predict(const FeatureRow& row, double threshold) const {
  return predict_proba(row) >= threshold ? 1 : 0;
}

void GaussianNaiveBayes::train(const Dataset& data) {
  const std::size_t dims = data.dims();
  if (data.size() == 0 || dims == 0) return;
  auto fit_class = [&](int label) {
    ClassModel model;
    model.mean.assign(dims, 0.0);
    model.var.assign(dims, 0.0);
    std::size_t count = 0;
    for (std::size_t r = 0; r < data.size(); ++r) {
      if (data.labels[r] != label) continue;
      ++count;
      for (std::size_t i = 0; i < dims; ++i) model.mean[i] += data.rows[r][i];
    }
    if (count == 0) return model;
    for (double& m : model.mean) m /= static_cast<double>(count);
    for (std::size_t r = 0; r < data.size(); ++r) {
      if (data.labels[r] != label) continue;
      for (std::size_t i = 0; i < dims; ++i) {
        const double d = data.rows[r][i] - model.mean[i];
        model.var[i] += d * d;
      }
    }
    for (double& v : model.var) {
      v = v / static_cast<double>(count) + 1e-6;  // smoothing
    }
    model.prior = static_cast<double>(count) / static_cast<double>(data.size());
    return model;
  };
  benign_ = fit_class(0);
  bot_ = fit_class(1);
  trained_ = true;
}

double GaussianNaiveBayes::predict_proba(const FeatureRow& row) const {
  if (!trained_ || benign_.mean.empty() || bot_.mean.empty()) return 0.5;
  auto log_likelihood = [&](const ClassModel& m) {
    double ll = std::log(std::max(m.prior, 1e-12));
    for (std::size_t i = 0; i < std::min(row.size(), m.mean.size()); ++i) {
      const double d = row[i] - m.mean[i];
      ll += -0.5 * (std::log(2.0 * 3.14159265358979 * m.var[i]) + d * d / m.var[i]);
    }
    return ll;
  };
  const double lb = log_likelihood(benign_);
  const double lt = log_likelihood(bot_);
  const double mx = std::max(lb, lt);
  const double pb = std::exp(lb - mx);
  const double pt = std::exp(lt - mx);
  return pt / (pb + pt);
}

int GaussianNaiveBayes::predict(const FeatureRow& row, double threshold) const {
  return predict_proba(row) >= threshold ? 1 : 0;
}

KMeansResult kmeans(const std::vector<FeatureRow>& rows, int k, sim::Rng& rng,
                    int max_iterations) {
  KMeansResult result;
  if (rows.empty() || k <= 0) return result;
  const std::size_t n = rows.size();
  k = std::min<int>(k, static_cast<int>(n));

  // k-means++ seeding.
  result.centroids.push_back(rows[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  while (static_cast<int>(result.centroids.size()) < k) {
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i], squared_distance(rows[i], result.centroids.back()));
    }
    const std::size_t chosen = rng.weighted_index(dist2);
    result.centroids.push_back(rows[chosen]);
  }

  result.assignment.assign(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assign.
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = squared_distance(rows[i], result.centroids[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    const std::size_t dims = rows.front().size();
    std::vector<FeatureRow> sums(static_cast<std::size_t>(k), FeatureRow(dims, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += rows[i][d];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dims; ++d) {
        sums[c][d] /= static_cast<double>(counts[c]);
      }
      result.centroids[c] = sums[c];
    }
    result.iterations = iter + 1;
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        squared_distance(rows[i], result.centroids[static_cast<std::size_t>(result.assignment[i])]);
  }
  return result;
}

Split train_test_split(const Dataset& data, double test_fraction, sim::Rng& rng) {
  Split split;
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order.begin(), order.end());
  const auto test_n = static_cast<std::size_t>(test_fraction * static_cast<double>(data.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& target = i < test_n ? split.test : split.train;
    target.rows.push_back(data.rows[order[i]]);
    target.labels.push_back(data.labels[order[i]]);
  }
  return split;
}

}  // namespace fraudsim::detect
