// Detection pipeline: runs every detector family over the application's
// telemetry for an analysis window and scores the result against ground
// truth. This is the batch "SOC view" benches and examples use.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "biometrics/detector.hpp"
#include "core/detect/behavior.hpp"
#include "core/detect/detector.hpp"
#include "core/detect/fingerprint_detect.hpp"
#include "core/detect/graph/graph_detector.hpp"
#include "core/detect/ip_reputation.hpp"
#include "core/detect/labels.hpp"
#include "core/detect/name_patterns.hpp"
#include "core/detect/navigation.hpp"
#include "core/detect/nip_anomaly.hpp"
#include "core/detect/sms_anomaly.hpp"
#include "core/obs/metrics.hpp"
#include "core/overload/brownout.hpp"
#include "core/overload/overload.hpp"
#include "web/session.hpp"

namespace fraudsim::detect {

struct PipelineConfig {
  VolumeThresholds volume;
  NipAnomalyConfig nip;
  NamePatternConfig names;
  SmsAnomalyConfig sms;
  double rarity_frequency = 1e-4;
  std::uint64_t rarity_min_observations = 30;
  sim::SimDuration session_timeout = sim::minutes(30);
  // §V future directions, implemented: pointer biometrics and graph-based
  // navigation analysis.
  bool biometrics_enabled = true;
  biometrics::BiometricThresholds biometric_thresholds;
  IpReputationConfig ip_reputation;
  // Component-level ring amplification (active once enable_graph is called).
  graph::GraphDetectorConfig graph;
  // Modeled batch-analysis cost per session, charged against the optional
  // analysis deadline budget passed to run(): cheap families advance the
  // modeled analysis clock by `analysis_cost_cheap` ms per session, the
  // expensive ones (classifier, navigation, biometrics) by
  // `analysis_cost_expensive`.
  sim::SimDuration analysis_cost_cheap = 1;
  sim::SimDuration analysis_cost_expensive = 5;
  // Batched evaluation epochs. 0 (the default) evaluates the whole [from,to)
  // window as ONE epoch — verdicts identical to the pre-batching pipeline.
  // A positive duration slices the window into bounded epoch batches (at
  // most `max_batch_epochs`; wider slices if needed) and every detector
  // scores all epochs through one score_batch call. Window statistics are
  // then per-epoch, so this is an opt-in analysis granularity, not a pure
  // execution detail.
  sim::SimDuration batch_epoch = 0;
  std::size_t max_batch_epochs = 16;
};

struct DetectorReport {
  std::string detector;
  std::size_t alerts = 0;
  ActorScore score;  // actor-level P/R against abuser ground truth
};

// A detector family the pipeline had to skip: either its fault point fired
// (injected outage) or the detector threw. The run always completes — a
// faulting detector degrades the SOC view, it never takes the pipeline down.
struct SkippedDetector {
  std::string family;  // detector family label, e.g. "behavior.classifier"
  std::string reason;  // why it was blind for this window
};

struct PipelineResult {
  AlertSink alerts;
  std::vector<web::Session> sessions;
  std::vector<DetectorReport> reports;
  // Degraded-mode bookkeeping: which detector families were blind and why.
  bool degraded = false;
  std::vector<SkippedDetector> skipped;

  [[nodiscard]] const DetectorReport* report_for(const std::string& detector) const;
  [[nodiscard]] bool skipped_family(const std::string& family) const;
};

// Batch-accounting totals a pipeline has recorded into its bound metrics
// registry. Mode-independent by construction: the scalar (FRAUDSIM_DETECT_BATCH=0)
// and batched paths tick the identical values, so metric exports diff clean
// across modes. Conservation law (checked by the "detect-batch-conservation"
// platform invariant): sessions_in == sessions_scored + sessions_skipped.
struct PipelineStats {
  std::uint64_t runs = 0;              // pipeline run() calls
  std::uint64_t epochs = 0;            // epoch views evaluated across runs
  std::uint64_t sessions_in = 0;       // per-family session-views offered
  std::uint64_t sessions_scored = 0;   // ... actually analysed
  std::uint64_t sessions_skipped = 0;  // ... skipped (budget/fault/exception)
  std::uint64_t batch_fallbacks = 0;   // runs forced onto the scalar adapter
};

// Typed read-only accessor over the pipeline counters in a MetricsRegistry.
// This is the one sanctioned way to read pipeline stats — there is no
// struct-copy stats path inside the pipeline anymore.
class PipelineView {
 public:
  PipelineView() = default;
  explicit PipelineView(const obs::MetricsRegistry* metrics) : metrics_(metrics) {}

  [[nodiscard]] PipelineStats stats() const;
  [[nodiscard]] std::uint64_t family_runs(std::string_view family) const;
  [[nodiscard]] std::uint64_t family_skips(std::string_view family) const;
  [[nodiscard]] std::uint64_t family_alerts(std::string_view family) const;
  // Every "detect.<family>.skipped" counter, in name order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> skips_by_family() const;
  [[nodiscard]] bool bound() const { return metrics_ != nullptr; }

 private:
  const obs::MetricsRegistry* metrics_ = nullptr;
};

class DetectionPipeline {
 public:
  explicit DetectionPipeline(PipelineConfig config = {});

  // Fit the NiP baseline from a clean reference window.
  void fit_nip_baseline(const app::Application& application, sim::SimTime from, sim::SimTime to);

  // Fit the navigation model on a clean reference window's sessions.
  void fit_navigation(const app::Application& application, sim::SimTime from, sim::SimTime to);

  // Enable IP-reputation checks against the given geo database (off until
  // called — the detector needs the address plan to classify origins).
  void enable_ip_reputation(const net::GeoDb& geo) { geo_ = &geo; }

  // Enable the component-level ring detector over the platform's entity
  // graph (off until called — the graph is fed inline on the admit path via
  // Application::set_tap, so the pipeline only reads it). Non-owning.
  void enable_graph(const graph::EntityGraph& graph) { graph_ = &graph; }

  // Optionally train the supervised behaviour classifier on labelled history.
  // The default labelling (every automated actor = 1) is an *oracle* upper
  // bound; real deployments only have labels from past incidents — pass a
  // custom `label_fn` (e.g. scraper incidents only) for the honest setting.
  using LabelFn = std::function<int(web::ActorId)>;
  void train_behavior(const app::Application& application, const app::ActorRegistry& registry,
                      sim::SimTime from, sim::SimTime to, sim::Rng& rng);
  void train_behavior(const app::Application& application, sim::SimTime from, sim::SimTime to,
                      sim::Rng& rng, const LabelFn& label_fn);

  // Runs all detectors over [from, to) and scores them. Each detector family
  // is guarded by a "detect.<family>.run" fault point (evaluated at `to`,
  // the batch-analysis time) and by a catch-all: a faulting detector is
  // recorded in PipelineResult::skipped with degraded=true, and the run
  // completes with the remaining families. Never throws for a single
  // detector failure.
  //
  // `analysis_budget` is a deadline on the modeled analysis clock (which
  // starts at `to` and advances per family by its per-session cost):
  // families that would start past the budget are skipped, so an overloaded
  // window degrades the SOC view instead of blowing the analysis window.
  // Unbounded by default.
  [[nodiscard]] PipelineResult run(const app::Application& application,
                                   const app::ActorRegistry& registry, sim::SimTime from,
                                   sim::SimTime to,
                                   overload::Deadline analysis_budget = {}) const;

  // Attach the platform's brownout controller (non-owning; nullptr detaches).
  // Under BROWNOUT/SHED the expensive detector families analyse every
  // stride-th session instead of all of them — detection quality is traded
  // for analysis cost while the platform is hot.
  void set_brownout(const overload::BrownoutController* brownout) { brownout_ = brownout; }

  // Attach the platform's observability context (non-owning; nullptr
  // detaches). When bound, every run records per-family counters
  // ("detect.<family>.{runs,skipped,alerts}") and the mode-independent batch
  // counters ("detect.batch.*") in the registry, and one "detect.pipeline"
  // trace with a child span per detector family.
  void bind_obs(obs::Observability* obs) {
    obs_ = obs;
    family_handles_.clear();
    batch_handles_ = BatchHandles{};
  }

  // Batched vs scalar execution. Batched (the default) evaluates every
  // detector through its score_batch entry point; scalar loops the base-class
  // adapter per epoch view — the reference path the batched one is diffed
  // against. FRAUDSIM_DETECT_BATCH=0 in the environment flips the
  // construction-time default. Verdicts, artifacts, and metrics are
  // byte-identical either way.
  void set_batch_mode(bool batched) { batch_mode_ = batched; }
  [[nodiscard]] bool batch_mode() const { return batch_mode_; }

  // Typed stats access over the bound registry (unbound pipelines read zeros).
  [[nodiscard]] PipelineView view() const;
  [[nodiscard]] PipelineStats stats() const { return view().stats(); }

  // The detector families a run() would execute right now, in execution
  // order, honouring what has been fitted/trained/enabled. Each element is a
  // uniform Detector — the pipeline has no per-family branches left.
  [[nodiscard]] std::vector<std::unique_ptr<Detector>> build_detectors() const;

  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const BehaviorClassifier& classifier() const { return classifier_; }

 private:
  // Pre-resolved per-family metric handles, registered on first use and
  // reused across runs — the hot loop never builds a metric name string.
  struct FamilyHandles {
    obs::Counter runs;
    obs::Counter skipped;
    obs::Counter alerts;
    std::string profile_phase;  // "detect.<family>"
  };
  struct BatchHandles {
    obs::Counter runs;
    obs::Counter epochs;
    obs::Counter sessions_in;
    obs::Counter sessions_scored;
    obs::Counter sessions_skipped;
    obs::Counter fallbacks;
    bool bound = false;
  };
  FamilyHandles& family_handles(const char* family) const;
  const BatchHandles& batch_handles() const;

  PipelineConfig config_;
  NipAnomalyDetector nip_;
  BehaviorClassifier classifier_;
  NavigationModel navigation_;
  const net::GeoDb* geo_ = nullptr;
  const graph::EntityGraph* graph_ = nullptr;
  const overload::BrownoutController* brownout_ = nullptr;
  obs::Observability* obs_ = nullptr;
  bool batch_mode_ = true;  // constructor applies FRAUDSIM_DETECT_BATCH
  mutable std::map<std::string, FamilyHandles, std::less<>> family_handles_;
  mutable BatchHandles batch_handles_;
};

}  // namespace fraudsim::detect
