// Detection pipeline: runs every detector family over the application's
// telemetry for an analysis window and scores the result against ground
// truth. This is the batch "SOC view" benches and examples use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "biometrics/detector.hpp"
#include "core/detect/behavior.hpp"
#include "core/detect/detector.hpp"
#include "core/detect/fingerprint_detect.hpp"
#include "core/detect/ip_reputation.hpp"
#include "core/detect/labels.hpp"
#include "core/detect/name_patterns.hpp"
#include "core/detect/navigation.hpp"
#include "core/detect/nip_anomaly.hpp"
#include "core/detect/sms_anomaly.hpp"
#include "core/overload/brownout.hpp"
#include "core/overload/overload.hpp"
#include "web/session.hpp"

namespace fraudsim::detect {

struct PipelineConfig {
  VolumeThresholds volume;
  NipAnomalyConfig nip;
  NamePatternConfig names;
  SmsAnomalyConfig sms;
  double rarity_frequency = 1e-4;
  std::uint64_t rarity_min_observations = 30;
  sim::SimDuration session_timeout = sim::minutes(30);
  // §V future directions, implemented: pointer biometrics and graph-based
  // navigation analysis.
  bool biometrics_enabled = true;
  biometrics::BiometricThresholds biometric_thresholds;
  IpReputationConfig ip_reputation;
  // Modeled batch-analysis cost per session, charged against the optional
  // analysis deadline budget passed to run(): cheap families advance the
  // modeled analysis clock by `analysis_cost_cheap` ms per session, the
  // expensive ones (classifier, navigation, biometrics) by
  // `analysis_cost_expensive`.
  sim::SimDuration analysis_cost_cheap = 1;
  sim::SimDuration analysis_cost_expensive = 5;
};

struct DetectorReport {
  std::string detector;
  std::size_t alerts = 0;
  ActorScore score;  // actor-level P/R against abuser ground truth
};

// A detector family the pipeline had to skip: either its fault point fired
// (injected outage) or the detector threw. The run always completes — a
// faulting detector degrades the SOC view, it never takes the pipeline down.
struct SkippedDetector {
  std::string family;  // detector family label, e.g. "behavior.classifier"
  std::string reason;  // why it was blind for this window
};

struct PipelineResult {
  AlertSink alerts;
  std::vector<web::Session> sessions;
  std::vector<DetectorReport> reports;
  // Degraded-mode bookkeeping: which detector families were blind and why.
  bool degraded = false;
  std::vector<SkippedDetector> skipped;

  [[nodiscard]] const DetectorReport* report_for(const std::string& detector) const;
  [[nodiscard]] bool skipped_family(const std::string& family) const;
};

class DetectionPipeline {
 public:
  explicit DetectionPipeline(PipelineConfig config = {});

  // Fit the NiP baseline from a clean reference window.
  void fit_nip_baseline(const app::Application& application, sim::SimTime from, sim::SimTime to);

  // Fit the navigation model on a clean reference window's sessions.
  void fit_navigation(const app::Application& application, sim::SimTime from, sim::SimTime to);

  // Enable IP-reputation checks against the given geo database (off until
  // called — the detector needs the address plan to classify origins).
  void enable_ip_reputation(const net::GeoDb& geo) { geo_ = &geo; }

  // Optionally train the supervised behaviour classifier on labelled history.
  // The default labelling (every automated actor = 1) is an *oracle* upper
  // bound; real deployments only have labels from past incidents — pass a
  // custom `label_fn` (e.g. scraper incidents only) for the honest setting.
  using LabelFn = std::function<int(web::ActorId)>;
  void train_behavior(const app::Application& application, const app::ActorRegistry& registry,
                      sim::SimTime from, sim::SimTime to, sim::Rng& rng);
  void train_behavior(const app::Application& application, sim::SimTime from, sim::SimTime to,
                      sim::Rng& rng, const LabelFn& label_fn);

  // Runs all detectors over [from, to) and scores them. Each detector family
  // is guarded by a "detect.<family>.run" fault point (evaluated at `to`,
  // the batch-analysis time) and by a catch-all: a faulting detector is
  // recorded in PipelineResult::skipped with degraded=true, and the run
  // completes with the remaining families. Never throws for a single
  // detector failure.
  //
  // `analysis_budget` is a deadline on the modeled analysis clock (which
  // starts at `to` and advances per family by its per-session cost):
  // families that would start past the budget are skipped, so an overloaded
  // window degrades the SOC view instead of blowing the analysis window.
  // Unbounded by default.
  [[nodiscard]] PipelineResult run(const app::Application& application,
                                   const app::ActorRegistry& registry, sim::SimTime from,
                                   sim::SimTime to,
                                   overload::Deadline analysis_budget = {}) const;

  // Attach the platform's brownout controller (non-owning; nullptr detaches).
  // Under BROWNOUT/SHED the expensive detector families analyse every
  // stride-th session instead of all of them — detection quality is traded
  // for analysis cost while the platform is hot.
  void set_brownout(const overload::BrownoutController* brownout) { brownout_ = brownout; }

  // Attach the platform's observability context (non-owning; nullptr
  // detaches). When bound, every run records per-family counters
  // ("detect.<family>.{runs,skipped,alerts}") in the registry and one
  // "detect.pipeline" trace with a child span per detector family.
  void bind_obs(obs::Observability* obs) { obs_ = obs; }

  // The detector families a run() would execute right now, in execution
  // order, honouring what has been fitted/trained/enabled. Each element is a
  // uniform Detector — the pipeline has no per-family branches left.
  [[nodiscard]] std::vector<std::unique_ptr<Detector>> build_detectors() const;

  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const BehaviorClassifier& classifier() const { return classifier_; }

 private:
  PipelineConfig config_;
  NipAnomalyDetector nip_;
  BehaviorClassifier classifier_;
  NavigationModel navigation_;
  const net::GeoDb* geo_ = nullptr;
  const overload::BrownoutController* brownout_ = nullptr;
  obs::Observability* obs_ = nullptr;
};

}  // namespace fraudsim::detect
