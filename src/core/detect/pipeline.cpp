#include "core/detect/pipeline.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

#include "core/fault/fault.hpp"
#include "core/obs/profile.hpp"

namespace fraudsim::detect {
namespace {

// Adapter wrapping one concrete analyzer into the uniform Detector interface.
// The pipeline composes its family list from these; no analyzer needs to know
// about budgets, fault points, brownout strides, or observability.
class FunctionDetector final : public Detector {
 public:
  using Fn = std::function<void(const RequestView&, AlertSink&)>;

  FunctionDetector(const char* name, const char* fault_point, DetectorCost cost, Fn fn)
      : name_(name), fault_point_(fault_point), cost_(cost), fn_(std::move(fn)) {}

  [[nodiscard]] const char* name() const override { return name_; }
  [[nodiscard]] const char* fault_point() const override { return fault_point_; }
  [[nodiscard]] DetectorCost cost() const override { return cost_; }
  void evaluate(const RequestView& view, AlertSink& alerts) override { fn_(view, alerts); }

 private:
  const char* name_;
  const char* fault_point_;
  DetectorCost cost_;
  Fn fn_;
};

}  // namespace

const DetectorReport* PipelineResult::report_for(const std::string& detector) const {
  for (const auto& r : reports) {
    if (r.detector == detector) return &r;
  }
  return nullptr;
}

bool PipelineResult::skipped_family(const std::string& family) const {
  for (const auto& s : skipped) {
    if (s.family == family) return true;
  }
  return false;
}

DetectionPipeline::DetectionPipeline(PipelineConfig config)
    : config_(config), nip_(config.nip) {}

void DetectionPipeline::fit_nip_baseline(const app::Application& application, sim::SimTime from,
                                         sim::SimTime to) {
  nip_.fit_baseline(application.inventory().reservations(), from, to);
}

void DetectionPipeline::fit_navigation(const app::Application& application, sim::SimTime from,
                                       sim::SimTime to) {
  const web::Sessionizer sessionizer(config_.session_timeout);
  navigation_.fit(sessionizer.sessionize(application.weblog().range(from, to)));
}

void DetectionPipeline::train_behavior(const app::Application& application,
                                       const app::ActorRegistry& registry, sim::SimTime from,
                                       sim::SimTime to, sim::Rng& rng) {
  train_behavior(application, from, to, rng,
                 [&registry](web::ActorId actor) { return registry.automated(actor) ? 1 : 0; });
}

void DetectionPipeline::train_behavior(const app::Application& application, sim::SimTime from,
                                       sim::SimTime to, sim::Rng& rng, const LabelFn& label_fn) {
  const web::Sessionizer sessionizer(config_.session_timeout);
  const auto requests = application.weblog().range(from, to);
  const auto sessions = sessionizer.sessionize(requests);
  std::vector<web::SessionFeatures> features;
  std::vector<int> labels;
  for (const auto& s : sessions) {
    features.push_back(web::extract_features(s));
    labels.push_back(label_fn(s.actor));
  }
  classifier_.train(features, labels, rng);
}

std::vector<std::unique_ptr<Detector>> DetectionPipeline::build_detectors() const {
  std::vector<std::unique_ptr<Detector>> detectors;
  auto add = [&detectors](const char* name, const char* point, DetectorCost cost,
                          FunctionDetector::Fn fn) {
    detectors.push_back(std::make_unique<FunctionDetector>(name, point, cost, std::move(fn)));
  };

  // Behaviour-based.
  add("behavior.volume", "detect.volume.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        VolumeThresholdDetector volume(config_.volume);
        volume.analyze(view.sessions, alerts);
      });
  if (classifier_.trained()) {
    add("behavior.classifier", "detect.behavior.run", DetectorCost::Expensive,
        [this](const RequestView& view, AlertSink& alerts) {
          classifier_.analyze(view.sampled_sessions, alerts);
        });
  }
  if (navigation_.fitted()) {
    add("behavior.navigation", "detect.navigation.run", DetectorCost::Expensive,
        [this](const RequestView& view, AlertSink& alerts) {
          navigation_.analyze(view.sampled_sessions, alerts);
        });
  }

  // Network reputation (enabled once a geo database is supplied).
  if (geo_ != nullptr) {
    add("ip.reputation", "detect.ip.run", DetectorCost::Cheap,
        [this](const RequestView& view, AlertSink& alerts) {
          IpReputationDetector ip_detector(*geo_, config_.ip_reputation);
          ip_detector.analyze(view.sessions, alerts);
        });
  }

  // Pointer biometrics (§V): judge every sample captured in the window
  // (every stride-th sample under brownout).
  if (config_.biometrics_enabled) {
    add("biometric.pointer", "detect.biometric.run", DetectorCost::Expensive,
        [this](const RequestView& view, AlertSink& alerts) {
          biometrics::BiometricDetector biometric(config_.biometric_thresholds);
          std::size_t sample_idx = 0;
          for (const auto& record : view.application.biometric_log()) {
            if (record.time < view.from || record.time >= view.to) continue;
            if (view.stride > 1 &&
                (sample_idx++ % static_cast<std::size_t>(view.stride)) != 0) {
              continue;
            }
            std::string reason;
            if (!biometric.observe(record.features, &reason)) continue;
            Alert alert;
            alert.time = record.time;
            alert.detector = "biometric.pointer";
            alert.severity = Severity::Warning;
            alert.explanation = reason;
            alert.session = record.session;
            alert.actor = record.actor;
            alerts.emit(std::move(alert));
          }
        });
  }

  // Knowledge-based.
  add("fingerprint.artifact", "detect.artifact.run", DetectorCost::Cheap,
      [](const RequestView& view, AlertSink& alerts) {
        ArtifactDetector artifacts;
        artifacts.analyze(view.application.fingerprints(), view.sessions, alerts);
      });
  add("fingerprint.consistency", "detect.consistency.run", DetectorCost::Cheap,
      [](const RequestView& view, AlertSink& alerts) {
        ConsistencyDetector consistency;
        consistency.analyze(view.application.fingerprints(), view.sessions, alerts);
      });
  add("fingerprint.rarity", "detect.rarity.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        RarityDetector rarity(config_.rarity_frequency, config_.rarity_min_observations);
        rarity.analyze(view.application.fingerprints(), alerts);
      });

  // Feature-level (the paper's advanced detectors).
  add("nip.anomaly", "detect.nip.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        nip_.analyze(view.application.inventory().reservations(), view.from, view.to, alerts);
      });
  add("name.patterns", "detect.names.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        NamePatternAnalyzer names(config_.names);
        // Window-scope the reservations for identity analysis.
        std::vector<airline::Reservation> window;
        for (const auto& r : view.application.inventory().reservations()) {
          if (r.created >= view.from && r.created < view.to) window.push_back(r);
        }
        names.analyze(window, alerts);
      });
  add("sms.anomaly", "detect.sms.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        SmsAnomalyDetector sms(config_.sms);
        // SMS surge baselines on the pre-window period of equal length.
        const sim::SimTime baseline_from =
            std::max<sim::SimTime>(0, view.from - (view.to - view.from));
        sms.analyze(view.application.sms_gateway(), baseline_from, view.from, view.from, view.to,
                    alerts);
      });
  return detectors;
}

PipelineResult DetectionPipeline::run(const app::Application& application,
                                      const app::ActorRegistry& registry, sim::SimTime from,
                                      sim::SimTime to,
                                      overload::Deadline analysis_budget) const {
  PipelineResult result;
  const web::Sessionizer sessionizer(config_.session_timeout);
  result.sessions = sessionizer.sessionize(application.weblog().range(from, to));

  // Brownout degradation: under pressure the expensive families analyse only
  // every stride-th session. Stride 1 (or no controller) is the full view.
  const int stride =
      brownout_ != nullptr && brownout_->enabled() ? brownout_->detector_stride() : 1;
  std::vector<web::Session> sampled;
  if (stride > 1) {
    for (std::size_t i = 0; i < result.sessions.size(); i += static_cast<std::size_t>(stride)) {
      sampled.push_back(result.sessions[i]);
    }
  }
  const RequestView view{application, from, to, result.sessions,
                         stride > 1 ? sampled : result.sessions, stride};

  // Modeled analysis clock, charged against the optional deadline budget.
  sim::SimTime analysis_now = to;
  const sim::SimDuration cheap_cost =
      static_cast<sim::SimDuration>(view.sessions.size()) * config_.analysis_cost_cheap;
  const sim::SimDuration expensive_cost =
      static_cast<sim::SimDuration>(view.sampled_sessions.size()) * config_.analysis_cost_expensive;

  obs::TraceContext trace;
  if (obs_ != nullptr) {
    trace = obs_->traces.start_trace("detect.pipeline", to);
    trace.annotate("sessions", std::to_string(view.sessions.size()));
    if (stride > 1) trace.annotate("stride", std::to_string(stride));
  }

  // The interface layer: one loop applies budget accounting, fault-point
  // guarding, exception containment, per-family metrics/spans/profiling to
  // every family uniformly. An injected outage or a thrown exception records
  // the family as skipped; the run always finishes the remaining families —
  // detection never takes the SOC report down with it.
  for (const auto& det : build_detectors()) {
    const char* family = det->name();
    const sim::SimDuration cost =
        det->cost() == DetectorCost::Expensive ? expensive_cost : cheap_cost;
    const obs::TraceContext span = trace.child(family, analysis_now);
    span.annotate("cost", to_string(det->cost()));

    auto skip = [&](std::string reason) {
      result.degraded = true;
      span.annotate("skip", reason);
      span.set_outcome("skipped");
      span.finish(analysis_now);
      if (obs_ != nullptr) {
        obs_->metrics.counter(std::string("detect.") + family + ".skipped").inc();
      }
      result.skipped.push_back(SkippedDetector{family, std::move(reason)});
    };

    if (analysis_budget.expired(analysis_now)) {
      skip("analysis budget exhausted");
      continue;
    }
    if (fault::FaultRegistry::global().point(det->fault_point()).should_fail(to)) {
      skip("fault-injected outage");
      continue;
    }
    const std::size_t alerts_before = result.alerts.alerts().size();
    try {
      const obs::ScopedTimer timer(
          obs::Profiler::instance().phase(std::string("detect.") + family));
      det->evaluate(view, result.alerts);
      analysis_now += cost;
    } catch (const std::exception& e) {
      skip(std::string("exception: ") + e.what());
      continue;
    } catch (...) {
      skip("unknown exception");
      continue;
    }
    const auto emitted =
        static_cast<std::uint64_t>(result.alerts.alerts().size() - alerts_before);
    if (obs_ != nullptr) {
      obs_->metrics.counter(std::string("detect.") + family + ".runs").inc();
      obs_->metrics.counter(std::string("detect.") + family + ".alerts").inc(emitted);
    }
    span.annotate("alerts", std::to_string(emitted));
    span.set_outcome("ok");
    span.finish(analysis_now);
  }

  // Score per detector family at the actor level.
  const auto universe = actors_of(result.sessions);
  std::map<std::string, std::vector<Alert>> by_detector;
  for (const auto& a : result.alerts.alerts()) by_detector[a.detector].push_back(a);
  for (const auto& [detector, alerts] : by_detector) {
    DetectorReport report;
    report.detector = detector;
    report.alerts = alerts.size();
    report.score = score_actors(flagged_actors(alerts), universe, registry,
                                TruthCriterion::Abuser);
    result.reports.push_back(std::move(report));
  }
  trace.annotate("alerts", std::to_string(result.alerts.alerts().size()));
  trace.set_outcome(result.degraded ? "degraded" : "ok");
  trace.finish(analysis_now);
  return result;
}

}  // namespace fraudsim::detect
