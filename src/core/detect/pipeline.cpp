#include "core/detect/pipeline.hpp"

#include <algorithm>
#include <map>

#include "core/fault/fault.hpp"

namespace fraudsim::detect {

const DetectorReport* PipelineResult::report_for(const std::string& detector) const {
  for (const auto& r : reports) {
    if (r.detector == detector) return &r;
  }
  return nullptr;
}

bool PipelineResult::skipped_family(const std::string& family) const {
  for (const auto& s : skipped) {
    if (s.family == family) return true;
  }
  return false;
}

DetectionPipeline::DetectionPipeline(PipelineConfig config)
    : config_(config), nip_(config.nip) {}

void DetectionPipeline::fit_nip_baseline(const app::Application& application, sim::SimTime from,
                                         sim::SimTime to) {
  nip_.fit_baseline(application.inventory().reservations(), from, to);
}

void DetectionPipeline::fit_navigation(const app::Application& application, sim::SimTime from,
                                       sim::SimTime to) {
  const web::Sessionizer sessionizer(config_.session_timeout);
  navigation_.fit(sessionizer.sessionize(application.weblog().range(from, to)));
}

void DetectionPipeline::train_behavior(const app::Application& application,
                                       const app::ActorRegistry& registry, sim::SimTime from,
                                       sim::SimTime to, sim::Rng& rng) {
  train_behavior(application, from, to, rng,
                 [&registry](web::ActorId actor) { return registry.automated(actor) ? 1 : 0; });
}

void DetectionPipeline::train_behavior(const app::Application& application, sim::SimTime from,
                                       sim::SimTime to, sim::Rng& rng, const LabelFn& label_fn) {
  const web::Sessionizer sessionizer(config_.session_timeout);
  const auto requests = application.weblog().range(from, to);
  const auto sessions = sessionizer.sessionize(requests);
  std::vector<web::SessionFeatures> features;
  std::vector<int> labels;
  for (const auto& s : sessions) {
    features.push_back(web::extract_features(s));
    labels.push_back(label_fn(s.actor));
  }
  classifier_.train(features, labels, rng);
}

PipelineResult DetectionPipeline::run(const app::Application& application,
                                      const app::ActorRegistry& registry, sim::SimTime from,
                                      sim::SimTime to,
                                      overload::Deadline analysis_budget) const {
  PipelineResult result;
  const web::Sessionizer sessionizer(config_.session_timeout);
  result.sessions = sessionizer.sessionize(application.weblog().range(from, to));

  // Brownout degradation: under pressure the expensive families analyse only
  // every stride-th session. Stride 1 (or no controller) is the full view.
  const int stride =
      brownout_ != nullptr && brownout_->enabled() ? brownout_->detector_stride() : 1;
  std::vector<web::Session> sampled;
  if (stride > 1) {
    for (std::size_t i = 0; i < result.sessions.size(); i += static_cast<std::size_t>(stride)) {
      sampled.push_back(result.sessions[i]);
    }
  }
  const std::vector<web::Session>& expensive_view = stride > 1 ? sampled : result.sessions;

  // Modeled analysis clock, charged against the optional deadline budget.
  sim::SimTime analysis_now = to;
  const sim::SimDuration cheap_cost =
      static_cast<sim::SimDuration>(result.sessions.size()) * config_.analysis_cost_cheap;
  const sim::SimDuration expensive_cost =
      static_cast<sim::SimDuration>(expensive_view.size()) * config_.analysis_cost_expensive;

  // Runs one detector family behind its fault point. An injected outage or a
  // thrown exception records the family as skipped; the pipeline always
  // finishes the remaining families — detection never takes the SOC report
  // down with it. A family whose start time is already past the analysis
  // budget is skipped the same way.
  auto guarded = [&result, &analysis_now, analysis_budget, to](
                     const char* family, const char* point, sim::SimDuration cost, auto&& fn) {
    if (analysis_budget.expired(analysis_now)) {
      result.degraded = true;
      result.skipped.push_back(SkippedDetector{family, "analysis budget exhausted"});
      return;
    }
    if (fault::FaultRegistry::global().point(point).should_fail(to)) {
      result.degraded = true;
      result.skipped.push_back(SkippedDetector{family, "fault-injected outage"});
      return;
    }
    try {
      fn();
      analysis_now += cost;
    } catch (const std::exception& e) {
      result.degraded = true;
      result.skipped.push_back(SkippedDetector{family, std::string("exception: ") + e.what()});
    } catch (...) {
      result.degraded = true;
      result.skipped.push_back(SkippedDetector{family, "unknown exception"});
    }
  };

  // Behaviour-based.
  guarded("behavior.volume", "detect.volume.run", cheap_cost, [&] {
    VolumeThresholdDetector volume(config_.volume);
    volume.analyze(result.sessions, result.alerts);
  });
  if (classifier_.trained()) {
    guarded("behavior.classifier", "detect.behavior.run", expensive_cost,
            [&] { classifier_.analyze(expensive_view, result.alerts); });
  }
  if (navigation_.fitted()) {
    guarded("behavior.navigation", "detect.navigation.run", expensive_cost,
            [&] { navigation_.analyze(expensive_view, result.alerts); });
  }

  // Network reputation (enabled once a geo database is supplied).
  if (geo_ != nullptr) {
    guarded("ip.reputation", "detect.ip.run", cheap_cost, [&] {
      IpReputationDetector ip_detector(*geo_, config_.ip_reputation);
      ip_detector.analyze(result.sessions, result.alerts);
    });
  }

  // Pointer biometrics (§V): judge every sample captured in the window
  // (every stride-th sample under brownout).
  if (config_.biometrics_enabled) {
    guarded("biometric.pointer", "detect.biometric.run", expensive_cost, [&] {
      biometrics::BiometricDetector biometric(config_.biometric_thresholds);
      std::size_t sample_idx = 0;
      for (const auto& record : application.biometric_log()) {
        if (record.time < from || record.time >= to) continue;
        if (stride > 1 && (sample_idx++ % static_cast<std::size_t>(stride)) != 0) continue;
        std::string reason;
        if (!biometric.observe(record.features, &reason)) continue;
        Alert alert;
        alert.time = record.time;
        alert.detector = "biometric.pointer";
        alert.severity = Severity::Warning;
        alert.explanation = reason;
        alert.session = record.session;
        alert.actor = record.actor;
        result.alerts.emit(std::move(alert));
      }
    });
  }

  // Knowledge-based.
  guarded("fingerprint.artifact", "detect.artifact.run", cheap_cost, [&] {
    ArtifactDetector artifacts;
    artifacts.analyze(application.fingerprints(), result.sessions, result.alerts);
  });
  guarded("fingerprint.consistency", "detect.consistency.run", cheap_cost, [&] {
    ConsistencyDetector consistency;
    consistency.analyze(application.fingerprints(), result.sessions, result.alerts);
  });
  guarded("fingerprint.rarity", "detect.rarity.run", cheap_cost, [&] {
    RarityDetector rarity(config_.rarity_frequency, config_.rarity_min_observations);
    rarity.analyze(application.fingerprints(), result.alerts);
  });

  // Feature-level (the paper's advanced detectors).
  guarded("nip.anomaly", "detect.nip.run", cheap_cost,
          [&] { nip_.analyze(application.inventory().reservations(), from, to, result.alerts); });
  guarded("name.patterns", "detect.names.run", cheap_cost, [&] {
    NamePatternAnalyzer names(config_.names);
    // Window-scope the reservations for identity analysis.
    std::vector<airline::Reservation> window;
    for (const auto& r : application.inventory().reservations()) {
      if (r.created >= from && r.created < to) window.push_back(r);
    }
    names.analyze(window, result.alerts);
  });
  guarded("sms.anomaly", "detect.sms.run", cheap_cost, [&] {
    SmsAnomalyDetector sms(config_.sms);
    // SMS surge baselines on the pre-window period of equal length.
    const sim::SimTime baseline_from = std::max<sim::SimTime>(0, from - (to - from));
    sms.analyze(application.sms_gateway(), baseline_from, from, from, to, result.alerts);
  });

  // Score per detector family at the actor level.
  const auto universe = actors_of(result.sessions);
  std::map<std::string, std::vector<Alert>> by_detector;
  for (const auto& a : result.alerts.alerts()) by_detector[a.detector].push_back(a);
  for (const auto& [detector, alerts] : by_detector) {
    DetectorReport report;
    report.detector = detector;
    report.alerts = alerts.size();
    report.score = score_actors(flagged_actors(alerts), universe, registry,
                                TruthCriterion::Abuser);
    result.reports.push_back(std::move(report));
  }
  return result;
}

}  // namespace fraudsim::detect
