#include "core/detect/pipeline.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <span>
#include <utility>

#include "core/fault/fault.hpp"
#include "core/obs/profile.hpp"

namespace fraudsim::detect {
namespace {

// Adapter wrapping one concrete analyzer into the uniform Detector interface.
// The pipeline composes its family list from these; no analyzer needs to know
// about budgets, fault points, brownout strides, or observability. Families
// with a vectorized multi-epoch implementation supply `batch` as well; the
// rest inherit the base-class adapter (evaluate per epoch).
class FunctionDetector final : public Detector {
 public:
  using Fn = std::function<void(const RequestView&, AlertSink&)>;
  using BatchFn =
      std::function<void(std::span<const RequestView>, std::span<BatchScore>, AlertSink&)>;

  FunctionDetector(const char* name, const char* fault_point, DetectorCost cost, Fn fn,
                   BatchFn batch = nullptr)
      : name_(name),
        fault_point_(fault_point),
        cost_(cost),
        fn_(std::move(fn)),
        batch_(std::move(batch)) {}

  [[nodiscard]] const char* name() const override { return name_; }
  [[nodiscard]] const char* fault_point() const override { return fault_point_; }
  [[nodiscard]] DetectorCost cost() const override { return cost_; }
  void evaluate(const RequestView& view, AlertSink& alerts) override { fn_(view, alerts); }
  void score_batch(std::span<const RequestView> views, std::span<BatchScore> scores,
                   AlertSink& alerts) override {
    if (batch_) {
      batch_(views, scores, alerts);
      return;
    }
    Detector::score_batch(views, scores, alerts);
  }

 private:
  const char* name_;
  const char* fault_point_;
  DetectorCost cost_;
  Fn fn_;
  BatchFn batch_;
};

// FRAUDSIM_DETECT_BATCH=0 flips a freshly constructed pipeline onto the
// scalar adapter path (the byte-identity reference in CI); anything else —
// including unset — keeps batching on.
bool env_batch_default() {
  const char* env = std::getenv("FRAUDSIM_DETECT_BATCH");
  return env == nullptr || env[0] == '\0' || env[0] != '0';
}

}  // namespace

const DetectorReport* PipelineResult::report_for(const std::string& detector) const {
  for (const auto& r : reports) {
    if (r.detector == detector) return &r;
  }
  return nullptr;
}

bool PipelineResult::skipped_family(const std::string& family) const {
  for (const auto& s : skipped) {
    if (s.family == family) return true;
  }
  return false;
}

DetectionPipeline::DetectionPipeline(PipelineConfig config)
    : config_(config), nip_(config.nip), batch_mode_(env_batch_default()) {}

PipelineView DetectionPipeline::view() const {
  return PipelineView(obs_ != nullptr ? &obs_->metrics : nullptr);
}

namespace {
std::string family_metric(std::string_view family, const char* suffix) {
  std::string name = "detect.";
  name += family;
  name += suffix;
  return name;
}
}  // namespace

PipelineStats PipelineView::stats() const {
  PipelineStats s;
  if (metrics_ == nullptr) return s;
  s.runs = metrics_->counter_value("detect.batch.runs");
  s.epochs = metrics_->counter_value("detect.batch.epochs");
  s.sessions_in = metrics_->counter_value("detect.batch.sessions_in");
  s.sessions_scored = metrics_->counter_value("detect.batch.sessions_scored");
  s.sessions_skipped = metrics_->counter_value("detect.batch.sessions_skipped");
  s.batch_fallbacks = metrics_->counter_value("detect.batch.fallbacks");
  return s;
}

std::uint64_t PipelineView::family_runs(std::string_view family) const {
  return metrics_ == nullptr ? 0 : metrics_->counter_value(family_metric(family, ".runs"));
}

std::uint64_t PipelineView::family_skips(std::string_view family) const {
  return metrics_ == nullptr ? 0 : metrics_->counter_value(family_metric(family, ".skipped"));
}

std::uint64_t PipelineView::family_alerts(std::string_view family) const {
  return metrics_ == nullptr ? 0 : metrics_->counter_value(family_metric(family, ".alerts"));
}

std::vector<std::pair<std::string, std::uint64_t>> PipelineView::skips_by_family() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (metrics_ == nullptr) return out;
  constexpr std::string_view kSuffix = ".skipped";
  for (auto& [name, value] : metrics_->counters_with_prefix("detect.")) {
    if (name.size() <= kSuffix.size() + 7 || !name.ends_with(kSuffix)) continue;
    // "detect.<family>.skipped" -> family
    out.emplace_back(name.substr(7, name.size() - 7 - kSuffix.size()), value);
  }
  return out;
}

DetectionPipeline::FamilyHandles& DetectionPipeline::family_handles(const char* family) const {
  const std::string_view key(family);
  const auto it = family_handles_.find(key);
  if (it != family_handles_.end()) return it->second;
  FamilyHandles h;
  h.profile_phase = family_metric(key, "");
  if (obs_ != nullptr) {
    h.runs = obs_->metrics.counter(family_metric(key, ".runs"));
    h.skipped = obs_->metrics.counter(family_metric(key, ".skipped"));
    h.alerts = obs_->metrics.counter(family_metric(key, ".alerts"));
  }
  return family_handles_.emplace(std::string(key), std::move(h)).first->second;
}

const DetectionPipeline::BatchHandles& DetectionPipeline::batch_handles() const {
  if (!batch_handles_.bound) {
    if (obs_ != nullptr) {
      batch_handles_.runs = obs_->metrics.counter("detect.batch.runs");
      batch_handles_.epochs = obs_->metrics.counter("detect.batch.epochs");
      batch_handles_.sessions_in = obs_->metrics.counter("detect.batch.sessions_in");
      batch_handles_.sessions_scored = obs_->metrics.counter("detect.batch.sessions_scored");
      batch_handles_.sessions_skipped = obs_->metrics.counter("detect.batch.sessions_skipped");
      batch_handles_.fallbacks = obs_->metrics.counter("detect.batch.fallbacks");
    }
    batch_handles_.bound = true;
  }
  return batch_handles_;
}

void DetectionPipeline::fit_nip_baseline(const app::Application& application, sim::SimTime from,
                                         sim::SimTime to) {
  nip_.fit_baseline(application.inventory().reservations(), from, to);
}

void DetectionPipeline::fit_navigation(const app::Application& application, sim::SimTime from,
                                       sim::SimTime to) {
  const web::Sessionizer sessionizer(config_.session_timeout);
  navigation_.fit(sessionizer.sessionize(application.weblog().range(from, to)));
}

void DetectionPipeline::train_behavior(const app::Application& application,
                                       const app::ActorRegistry& registry, sim::SimTime from,
                                       sim::SimTime to, sim::Rng& rng) {
  train_behavior(application, from, to, rng,
                 [&registry](web::ActorId actor) { return registry.automated(actor) ? 1 : 0; });
}

void DetectionPipeline::train_behavior(const app::Application& application, sim::SimTime from,
                                       sim::SimTime to, sim::Rng& rng, const LabelFn& label_fn) {
  const web::Sessionizer sessionizer(config_.session_timeout);
  const auto requests = application.weblog().range(from, to);
  const auto sessions = sessionizer.sessionize(requests);
  std::vector<web::SessionFeatures> features;
  std::vector<int> labels;
  for (const auto& s : sessions) {
    features.push_back(web::extract_features(s));
    labels.push_back(label_fn(s.actor));
  }
  classifier_.train(features, labels, rng);
}

std::vector<std::unique_ptr<Detector>> DetectionPipeline::build_detectors() const {
  std::vector<std::unique_ptr<Detector>> detectors;
  auto add = [&detectors](const char* name, const char* point, DetectorCost cost,
                          FunctionDetector::Fn fn, FunctionDetector::BatchFn batch = nullptr) {
    detectors.push_back(
        std::make_unique<FunctionDetector>(name, point, cost, std::move(fn), std::move(batch)));
  };

  // Behaviour-based.
  add("behavior.volume", "detect.volume.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        VolumeThresholdDetector volume(config_.volume);
        volume.analyze(view.sessions, alerts);
      });
  if (classifier_.trained()) {
    add("behavior.classifier", "detect.behavior.run", DetectorCost::Expensive,
        [this](const RequestView& view, AlertSink& alerts) {
          classifier_.analyze(view.sampled_sessions, alerts);
        });
  }
  if (navigation_.fitted()) {
    add("behavior.navigation", "detect.navigation.run", DetectorCost::Expensive,
        [this](const RequestView& view, AlertSink& alerts) {
          navigation_.analyze(view.sampled_sessions, alerts);
        });
  }

  // Network reputation (enabled once a geo database is supplied).
  if (geo_ != nullptr) {
    add("ip.reputation", "detect.ip.run", DetectorCost::Cheap,
        [this](const RequestView& view, AlertSink& alerts) {
          IpReputationDetector ip_detector(*geo_, config_.ip_reputation);
          ip_detector.analyze(view.sessions, alerts);
        },
        [this](std::span<const RequestView> views, std::span<BatchScore> scores,
               AlertSink& alerts) {
          if (views.empty()) return;
          IpReputationDetector ip_detector(*geo_, config_.ip_reputation);
          std::vector<const std::vector<web::Session>*> sets;
          sets.reserve(views.size());
          for (const auto& v : views) sets.push_back(&v.sessions);
          std::vector<std::size_t> counts;
          ip_detector.analyze_many(sets, alerts, &counts);
          for (std::size_t i = 0; i < views.size(); ++i) {
            scores[i] = {views[i].sessions.size(), counts[i]};
          }
        });
  }

  // Pointer biometrics (§V): judge every sample captured in the window
  // (every stride-th sample under brownout).
  if (config_.biometrics_enabled) {
    add("biometric.pointer", "detect.biometric.run", DetectorCost::Expensive,
        [this](const RequestView& view, AlertSink& alerts) {
          biometrics::BiometricDetector biometric(config_.biometric_thresholds);
          std::size_t sample_idx = 0;
          for (const auto& record : view.application.biometric_log()) {
            if (record.time < view.from || record.time >= view.to) continue;
            if (view.stride > 1 &&
                (sample_idx++ % static_cast<std::size_t>(view.stride)) != 0) {
              continue;
            }
            std::string reason;
            if (!biometric.observe(record.features, &reason)) continue;
            Alert alert;
            alert.time = record.time;
            alert.detector = "biometric.pointer";
            alert.severity = Severity::Warning;
            alert.explanation = reason;
            alert.session = record.session;
            alert.actor = record.actor;
            alerts.emit(std::move(alert));
          }
        });
  }

  // Knowledge-based. Session-set pointers for the batched fingerprint paths.
  auto session_sets = [](std::span<const RequestView> views) {
    std::vector<const std::vector<web::Session>*> sets;
    sets.reserve(views.size());
    for (const auto& v : views) sets.push_back(&v.sessions);
    return sets;
  };
  add("fingerprint.artifact", "detect.artifact.run", DetectorCost::Cheap,
      [](const RequestView& view, AlertSink& alerts) {
        ArtifactDetector artifacts;
        artifacts.analyze(view.application.fingerprints(), view.sessions, alerts);
      },
      [session_sets](std::span<const RequestView> views, std::span<BatchScore> scores,
                     AlertSink& alerts) {
        if (views.empty()) return;
        ArtifactDetector artifacts;
        std::vector<std::size_t> counts;
        artifacts.analyze_many(views.front().application.fingerprints(), session_sets(views),
                               alerts, &counts);
        for (std::size_t i = 0; i < views.size(); ++i) {
          scores[i] = {views[i].sessions.size(), counts[i]};
        }
      });
  add("fingerprint.consistency", "detect.consistency.run", DetectorCost::Cheap,
      [](const RequestView& view, AlertSink& alerts) {
        ConsistencyDetector consistency;
        consistency.analyze(view.application.fingerprints(), view.sessions, alerts);
      },
      [session_sets](std::span<const RequestView> views, std::span<BatchScore> scores,
                     AlertSink& alerts) {
        if (views.empty()) return;
        ConsistencyDetector consistency;
        std::vector<std::size_t> counts;
        consistency.analyze_many(views.front().application.fingerprints(), session_sets(views),
                                 alerts, &counts);
        for (std::size_t i = 0; i < views.size(); ++i) {
          scores[i] = {views[i].sessions.size(), counts[i]};
        }
      });
  add("fingerprint.rarity", "detect.rarity.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        RarityDetector rarity(config_.rarity_frequency, config_.rarity_min_observations);
        rarity.analyze(view.application.fingerprints(), alerts);
      },
      [this](std::span<const RequestView> views, std::span<BatchScore> scores,
             AlertSink& alerts) {
        if (views.empty()) return;
        RarityDetector rarity(config_.rarity_frequency, config_.rarity_min_observations);
        std::vector<std::size_t> counts;
        rarity.analyze_repeated(views.front().application.fingerprints(), views.size(), alerts,
                                &counts);
        for (std::size_t i = 0; i < views.size(); ++i) {
          scores[i] = {views[i].sessions.size(), counts[i]};
        }
      });

  // Feature-level (the paper's advanced detectors).
  add("nip.anomaly", "detect.nip.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        nip_.analyze(view.application.inventory().reservations(), view.from, view.to, alerts);
      },
      [this](std::span<const RequestView> views, std::span<BatchScore> scores,
             AlertSink& alerts) {
        if (views.empty()) return;
        std::vector<NipAnomalyDetector::Window> windows;
        windows.reserve(views.size());
        for (const auto& v : views) windows.push_back({v.from, v.to});
        std::vector<std::size_t> counts;
        nip_.analyze_windows(views.front().application.inventory().reservations(), windows,
                             alerts, &counts);
        for (std::size_t i = 0; i < views.size(); ++i) {
          scores[i] = {views[i].sessions.size(), counts[i]};
        }
      });
  add("name.patterns", "detect.names.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        NamePatternAnalyzer names(config_.names);
        // Window-scope the reservations for identity analysis.
        std::vector<airline::Reservation> window;
        for (const auto& r : view.application.inventory().reservations()) {
          if (r.created >= view.from && r.created < view.to) window.push_back(r);
        }
        names.analyze(window, alerts);
      });
  add("sms.anomaly", "detect.sms.run", DetectorCost::Cheap,
      [this](const RequestView& view, AlertSink& alerts) {
        SmsAnomalyDetector sms(config_.sms);
        // SMS surge baselines on the pre-window period of equal length.
        const sim::SimTime baseline_from =
            std::max<sim::SimTime>(0, view.from - (view.to - view.from));
        sms.analyze(view.application.sms_gateway(), baseline_from, view.from, view.from, view.to,
                    alerts);
      },
      [this](std::span<const RequestView> views, std::span<BatchScore> scores,
             AlertSink& alerts) {
        if (views.empty()) return;
        SmsAnomalyDetector sms(config_.sms);
        std::vector<SmsAnomalyDetector::Window> windows;
        windows.reserve(views.size());
        for (const auto& v : views) {
          const sim::SimTime baseline_from =
              std::max<sim::SimTime>(0, v.from - (v.to - v.from));
          windows.push_back({baseline_from, v.from, v.from, v.to});
        }
        std::vector<std::size_t> counts;
        sms.analyze_windows(views.front().application.sms_gateway(), windows, alerts, &counts);
        for (std::size_t i = 0; i < views.size(); ++i) {
          scores[i] = {views[i].sessions.size(), counts[i]};
        }
      });

  // Structural (component-level) ring amplification over the entity graph.
  // The only family implemented as a dedicated Detector subclass: it owns
  // graph-wide state sharing across epochs that the FunctionDetector lambda
  // shape cannot express.
  if (graph_ != nullptr) {
    detectors.push_back(std::make_unique<graph::GraphDetector>(*graph_, config_.graph));
  }
  return detectors;
}

PipelineResult DetectionPipeline::run(const app::Application& application,
                                      const app::ActorRegistry& registry, sim::SimTime from,
                                      sim::SimTime to,
                                      overload::Deadline analysis_budget) const {
  PipelineResult result;
  const web::Sessionizer sessionizer(config_.session_timeout);
  result.sessions = sessionizer.sessionize(application.weblog().range(from, to));

  // Brownout degradation: under pressure the expensive families analyse only
  // every stride-th session. Stride 1 (or no controller) is the full view.
  const int stride =
      brownout_ != nullptr && brownout_->enabled() ? brownout_->detector_stride() : 1;

  // Epoch partition. The default (batch_epoch == 0) is ONE epoch spanning the
  // whole window — verdicts identical to the pre-batching pipeline. An opt-in
  // positive batch_epoch slices the window into at most max_batch_epochs
  // views; BOTH execution modes iterate the identical partition, so batched
  // vs scalar stays a pure execution difference.
  struct Epoch {
    sim::SimTime from = 0;
    sim::SimTime to = 0;
  };
  std::vector<Epoch> epochs;
  if (config_.batch_epoch > 0 && to > from && config_.max_batch_epochs > 0) {
    const sim::SimDuration span = to - from;
    auto slices = static_cast<std::size_t>((span + config_.batch_epoch - 1) / config_.batch_epoch);
    slices = std::clamp<std::size_t>(slices, 1, config_.max_batch_epochs);
    const auto slice =
        static_cast<sim::SimDuration>((span + static_cast<sim::SimDuration>(slices) - 1) /
                                      static_cast<sim::SimDuration>(slices));
    for (std::size_t k = 0; k < slices; ++k) {
      const sim::SimTime e_from = from + static_cast<sim::SimDuration>(k) * slice;
      if (e_from >= to) break;
      epochs.push_back(Epoch{e_from, std::min<sim::SimTime>(to, e_from + slice)});
    }
  } else {
    epochs.push_back(Epoch{from, to});
  }

  // One RequestView per epoch. The single-epoch fast path references
  // result.sessions directly; multi-epoch buckets sessions by start time.
  std::vector<web::Session> sampled;                  // single-epoch stride storage
  std::vector<std::vector<web::Session>> per_epoch;   // multi-epoch session storage
  std::vector<std::vector<web::Session>> per_epoch_sampled;
  std::vector<RequestView> views;
  views.reserve(epochs.size());
  if (epochs.size() == 1) {
    if (stride > 1) {
      for (std::size_t i = 0; i < result.sessions.size(); i += static_cast<std::size_t>(stride)) {
        sampled.push_back(result.sessions[i]);
      }
    }
    views.push_back(RequestView{application, epochs[0].from, epochs[0].to, result.sessions,
                                stride > 1 ? sampled : result.sessions, stride});
  } else {
    per_epoch.resize(epochs.size());
    per_epoch_sampled.resize(epochs.size());
    for (const auto& s : result.sessions) {
      std::size_t idx = 0;
      while (idx + 1 < epochs.size() && s.start() >= epochs[idx].to) ++idx;
      per_epoch[idx].push_back(s);
    }
    for (std::size_t e = 0; e < epochs.size(); ++e) {
      if (stride > 1) {
        for (std::size_t i = 0; i < per_epoch[e].size(); i += static_cast<std::size_t>(stride)) {
          per_epoch_sampled[e].push_back(per_epoch[e][i]);
        }
      }
      views.push_back(RequestView{application, epochs[e].from, epochs[e].to, per_epoch[e],
                                  stride > 1 ? per_epoch_sampled[e] : per_epoch[e], stride});
    }
  }

  // Modeled analysis clock, charged against the optional deadline budget.
  // Costs sum over the epoch partition, so they match the single-window
  // totals exactly in the default configuration.
  sim::SimTime analysis_now = to;
  std::uint64_t total_sessions = 0;
  std::uint64_t total_sampled = 0;
  for (const auto& v : views) {
    total_sessions += v.sessions.size();
    total_sampled += v.sampled_sessions.size();
  }
  const sim::SimDuration cheap_cost =
      static_cast<sim::SimDuration>(total_sessions) * config_.analysis_cost_cheap;
  const sim::SimDuration expensive_cost =
      static_cast<sim::SimDuration>(total_sampled) * config_.analysis_cost_expensive;

  obs::TraceContext trace;
  if (obs_ != nullptr) {
    trace = obs_->traces.start_trace("detect.pipeline", to);
    trace.annotate("sessions", std::to_string(result.sessions.size()));
    if (stride > 1) trace.annotate("stride", std::to_string(stride));
    if (views.size() > 1) trace.annotate("epochs", std::to_string(views.size()));
  }

  // The "detect.batch.run" fault point demotes a run to the scalar adapter
  // path (verdicts unchanged — that IS the reference implementation). It is
  // consulted exactly once per run in BOTH modes so injected fault schedules
  // consume hit-state identically, and the fallback counter ticks in both
  // modes so metric exports diff clean across FRAUDSIM_DETECT_BATCH settings.
  const bool batch_fault =
      fault::FaultRegistry::global().point("detect.batch.run").should_fail(to);
  const bool use_batch = batch_mode_ && !batch_fault;
  const BatchHandles& batch = batch_handles();
  batch.runs.inc();
  batch.epochs.inc(views.size());
  if (batch_fault) batch.fallbacks.inc();

  // The interface layer: one loop applies budget accounting, fault-point
  // guarding, exception containment, per-family metrics/spans/profiling to
  // every family uniformly. An injected outage or a thrown exception records
  // the family as skipped; the run always finishes the remaining families —
  // detection never takes the SOC report down with it.
  for (const auto& det : build_detectors()) {
    const char* family = det->name();
    const FamilyHandles& handles = family_handles(family);
    const sim::SimDuration cost =
        det->cost() == DetectorCost::Expensive ? expensive_cost : cheap_cost;
    const std::uint64_t family_sessions =
        det->cost() == DetectorCost::Expensive ? total_sampled : total_sessions;
    batch.sessions_in.inc(family_sessions);
    const obs::TraceContext span = trace.child(family, analysis_now);
    span.annotate("cost", to_string(det->cost()));

    auto skip = [&](std::string reason) {
      result.degraded = true;
      span.annotate("skip", reason);
      span.set_outcome("skipped");
      span.finish(analysis_now);
      handles.skipped.inc();
      batch.sessions_skipped.inc(family_sessions);
      result.skipped.push_back(SkippedDetector{family, std::move(reason)});
    };

    if (analysis_budget.expired(analysis_now)) {
      skip("analysis budget exhausted");
      continue;
    }
    if (fault::FaultRegistry::global().point(det->fault_point()).should_fail(to)) {
      skip("fault-injected outage");
      continue;
    }
    const std::size_t alerts_before = result.alerts.alerts().size();
    std::vector<BatchScore> scores(views.size());
    try {
      const obs::ScopedTimer timer(obs::Profiler::instance().phase(handles.profile_phase));
      if (use_batch) {
        det->score_batch(views, scores, result.alerts);
      } else {
        // Scalar reference: the base-class adapter, bypassing any override.
        det->Detector::score_batch(views, scores, result.alerts);
      }
      analysis_now += cost;
    } catch (const std::exception& e) {
      skip(std::string("exception: ") + e.what());
      continue;
    } catch (...) {
      skip("unknown exception");
      continue;
    }
    const auto emitted =
        static_cast<std::uint64_t>(result.alerts.alerts().size() - alerts_before);
    handles.runs.inc();
    handles.alerts.inc(emitted);
    batch.sessions_scored.inc(family_sessions);
    span.annotate("alerts", std::to_string(emitted));
    span.set_outcome("ok");
    span.finish(analysis_now);
  }

  // Score per detector family at the actor level.
  const auto universe = actors_of(result.sessions);
  std::map<std::string, std::vector<Alert>> by_detector;
  for (const auto& a : result.alerts.alerts()) by_detector[a.detector].push_back(a);
  for (const auto& [detector, alerts] : by_detector) {
    DetectorReport report;
    report.detector = detector;
    report.alerts = alerts.size();
    report.score = score_actors(flagged_actors(alerts), universe, registry,
                                TruthCriterion::Abuser);
    result.reports.push_back(std::move(report));
  }
  trace.annotate("alerts", std::to_string(result.alerts.alerts().size()));
  trace.set_outcome(result.degraded ? "degraded" : "ok");
  trace.finish(analysis_now);
  return result;
}

}  // namespace fraudsim::detect
