#include "core/detect/fingerprint_detect.hpp"

namespace fraudsim::detect {

namespace {

// Finds one representative session per fingerprint so alerts can carry
// session/actor keys for scoring.
std::unordered_map<fp::FpHash, const web::Session*> sessions_by_fp(
    const std::vector<web::Session>& sessions) {
  std::unordered_map<fp::FpHash, const web::Session*> out;
  for (const auto& s : sessions) {
    if (s.requests.empty()) continue;
    out.emplace(s.requests.front().fp_hash, &s);
  }
  return out;
}

void emit_fp_alert(AlertSink& sink, const std::string& detector, const std::string& reason,
                   fp::FpHash hash, const web::Session* session) {
  Alert alert;
  alert.detector = detector;
  alert.severity = Severity::Warning;
  alert.explanation = reason;
  alert.fingerprint = hash;
  if (session != nullptr) {
    alert.time = session->end();
    alert.session = session->id;
    alert.actor = session->actor;
  }
  sink.emit(std::move(alert));
}

// The memoized half of the batched artifact/consistency path: judge every
// stored fingerprint once (in for_each order — the order analyze emits in),
// keeping only the flagged ones.
struct FlaggedFp {
  fp::FpHash hash;
  std::string reason;
};

template <typename IsBot>
std::vector<FlaggedFp> flag_store(const app::FingerprintStore& store, const IsBot& is_bot) {
  std::vector<FlaggedFp> out;
  store.for_each([&](fp::FpHash hash, const fp::Fingerprint& fingerprint, std::uint64_t) {
    std::string reason;
    if (!is_bot(fingerprint, &reason)) return;
    out.push_back(FlaggedFp{hash, std::move(reason)});
  });
  return out;
}

// Replays one flagged-fingerprint list against each session set in order.
void emit_flagged(const std::vector<FlaggedFp>& flagged, const std::string& detector,
                  SessionSets session_sets, AlertSink& sink,
                  std::vector<std::size_t>* alerts_per_set) {
  if (alerts_per_set != nullptr) alerts_per_set->assign(session_sets.size(), 0);
  for (std::size_t i = 0; i < session_sets.size(); ++i) {
    const auto by_fp = sessions_by_fp(*session_sets[i]);
    for (const auto& f : flagged) {
      const auto it = by_fp.find(f.hash);
      emit_fp_alert(sink, detector, f.reason, f.hash, it == by_fp.end() ? nullptr : it->second);
    }
    if (alerts_per_set != nullptr) (*alerts_per_set)[i] = flagged.size();
  }
}

}  // namespace

bool ArtifactDetector::is_bot(const fp::Fingerprint& fingerprint, std::string* reason) const {
  if (fingerprint.webdriver_flag) {
    if (reason != nullptr) *reason = "navigator.webdriver exposed";
    return true;
  }
  if (fingerprint.headless_hint) {
    if (reason != nullptr) *reason = "headless browser token in user agent";
    return true;
  }
  return false;
}

void ArtifactDetector::analyze(const app::FingerprintStore& store,
                               const std::vector<web::Session>& sessions, AlertSink& sink) const {
  const auto by_fp = sessions_by_fp(sessions);
  store.for_each([&](fp::FpHash hash, const fp::Fingerprint& fingerprint, std::uint64_t) {
    std::string reason;
    if (!is_bot(fingerprint, &reason)) return;
    const auto it = by_fp.find(hash);
    emit_fp_alert(sink, "fingerprint.artifact", reason, hash,
                  it == by_fp.end() ? nullptr : it->second);
  });
}

void ArtifactDetector::analyze_many(const app::FingerprintStore& store, SessionSets session_sets,
                                    AlertSink& sink,
                                    std::vector<std::size_t>* alerts_per_set) const {
  const auto flagged = flag_store(
      store, [this](const fp::Fingerprint& f, std::string* r) { return is_bot(f, r); });
  emit_flagged(flagged, "fingerprint.artifact", session_sets, sink, alerts_per_set);
}

ConsistencyDetector::ConsistencyDetector(double min_score) : min_score_(min_score) {}

bool ConsistencyDetector::is_bot(const fp::Fingerprint& fingerprint, std::string* reason) const {
  const auto violations = checker_.check(fingerprint);
  if (checker_.inconsistency_score(fingerprint) < min_score_) return false;
  if (reason != nullptr && !violations.empty()) {
    *reason = violations.front().rule + ": " + violations.front().detail;
  }
  return true;
}

void ConsistencyDetector::analyze(const app::FingerprintStore& store,
                                  const std::vector<web::Session>& sessions,
                                  AlertSink& sink) const {
  const auto by_fp = sessions_by_fp(sessions);
  store.for_each([&](fp::FpHash hash, const fp::Fingerprint& fingerprint, std::uint64_t) {
    std::string reason;
    if (!is_bot(fingerprint, &reason)) return;
    const auto it = by_fp.find(hash);
    emit_fp_alert(sink, "fingerprint.consistency", reason, hash,
                  it == by_fp.end() ? nullptr : it->second);
  });
}

void ConsistencyDetector::analyze_many(const app::FingerprintStore& store,
                                       SessionSets session_sets, AlertSink& sink,
                                       std::vector<std::size_t>* alerts_per_set) const {
  const auto flagged = flag_store(
      store, [this](const fp::Fingerprint& f, std::string* r) { return is_bot(f, r); });
  emit_flagged(flagged, "fingerprint.consistency", session_sets, sink, alerts_per_set);
}

RarityDetector::RarityDetector(double rare_frequency, std::uint64_t min_observations)
    : rare_frequency_(rare_frequency), min_observations_(min_observations) {}

bool RarityDetector::is_rare(const app::FingerprintStore& store, fp::FpHash hash) const {
  const auto observations = store.observations(hash);
  if (observations < min_observations_) return false;
  return store.frequency(hash) < rare_frequency_;
}

void RarityDetector::analyze(const app::FingerprintStore& store, AlertSink& sink) const {
  store.for_each([&](fp::FpHash hash, const fp::Fingerprint&, std::uint64_t count) {
    if (count < min_observations_) return;
    if (store.frequency(hash) >= rare_frequency_) return;
    Alert alert;
    alert.detector = "fingerprint.rarity";
    alert.severity = Severity::Info;
    alert.explanation = "busy but rare fingerprint (" + std::to_string(count) + " observations)";
    alert.fingerprint = hash;
    sink.emit(std::move(alert));
  });
}

void RarityDetector::analyze_repeated(const app::FingerprintStore& store, std::size_t repeats,
                                      AlertSink& sink,
                                      std::vector<std::size_t>* alerts_per_repeat) const {
  if (alerts_per_repeat != nullptr) alerts_per_repeat->assign(repeats, 0);
  if (repeats == 0) return;
  // One scan; the verdict list has no window dependence, so later epochs
  // replay it verbatim.
  std::vector<std::pair<fp::FpHash, std::uint64_t>> rare;
  store.for_each([&](fp::FpHash hash, const fp::Fingerprint&, std::uint64_t count) {
    if (count < min_observations_) return;
    if (store.frequency(hash) >= rare_frequency_) return;
    rare.emplace_back(hash, count);
  });
  for (std::size_t i = 0; i < repeats; ++i) {
    for (const auto& [hash, count] : rare) {
      Alert alert;
      alert.detector = "fingerprint.rarity";
      alert.severity = Severity::Info;
      alert.explanation =
          "busy but rare fingerprint (" + std::to_string(count) + " observations)";
      alert.fingerprint = hash;
      sink.emit(std::move(alert));
    }
    if (alerts_per_repeat != nullptr) (*alerts_per_repeat)[i] = rare.size();
  }
}

void FingerprintBlocklist::block(fp::FpHash hash, sim::SimTime when, std::string reason) {
  auto& entry = entries_[hash];
  if (entry.hits == 0 && entry.added == 0) {
    entry.added = when;
    entry.reason = std::move(reason);
  }
}

bool FingerprintBlocklist::contains(fp::FpHash hash) const { return entries_.contains(hash); }

void FingerprintBlocklist::note_hit(fp::FpHash hash, sim::SimTime when) {
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return;
  it->second.last_hit = when;
  ++it->second.hits;
}

std::vector<double> FingerprintBlocklist::effectiveness_windows_hours() const {
  std::vector<double> out;
  for (const auto& [hash, entry] : entries_) {
    (void)hash;
    if (entry.last_hit < 0) continue;  // blocked pre-emptively, never seen again
    out.push_back(sim::to_hours(entry.last_hit - entry.added));
  }
  return out;
}

void FingerprintBlocklist::checkpoint(util::ByteWriter& out) const {
  out.u64(entries_.size());
  for (const auto& [hash, e] : entries_) {
    out.u64(hash.value());
    out.i64(e.added);
    out.i64(e.last_hit);
    out.str(e.reason);
    out.u64(e.hits);
  }
}

void FingerprintBlocklist::restore(util::ByteReader& in) {
  const auto n = in.u64();
  entries_.clear();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    const fp::FpHash hash{in.u64()};
    Entry e;
    e.added = in.i64();
    e.last_hit = in.i64();
    e.reason = in.str();
    e.hits = in.u64();
    entries_.emplace(hash, std::move(e));
  }
}

}  // namespace fraudsim::detect
