// Detector scoring against ground truth.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "app/actors.hpp"
#include "core/detect/alert.hpp"
#include "util/stats.hpp"
#include "web/session.hpp"

namespace fraudsim::detect {

// Actor-level scoring: which actors did a detector flag vs which actors are
// truly abusers/automated.
struct ActorScore {
  util::ConfusionCounts confusion;
  std::vector<web::ActorId> missed;         // abusers never flagged
  std::vector<web::ActorId> false_alarms;   // humans flagged
};

enum class TruthCriterion { Abuser, Automated };

// Scores a set of flagged actors against all actors seen in `universe`.
[[nodiscard]] ActorScore score_actors(const std::unordered_set<web::ActorId>& flagged,
                                      const std::vector<web::ActorId>& universe,
                                      const app::ActorRegistry& registry,
                                      TruthCriterion criterion);

// Collects the distinct actors appearing in a session list.
[[nodiscard]] std::vector<web::ActorId> actors_of(const std::vector<web::Session>& sessions);

// Actors referenced by alerts (directly, or resolved from sessions).
[[nodiscard]] std::unordered_set<web::ActorId> flagged_actors(const std::vector<Alert>& alerts);

}  // namespace fraudsim::detect
