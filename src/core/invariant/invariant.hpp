// System-wide safety invariants, machine-checked at epoch barriers.
//
// The paper's thesis is that functional abuse lives where legitimate features
// behave unexpectedly — and the platform's own defenses (fault handling,
// brownout, crash recovery) are exactly such features. Hand-written scenarios
// test each fault family in isolation; the InvariantRegistry states what the
// platform must NEVER do, so chaos campaigns can explore fault *combinations*
// against a formal oracle instead of happy-path expectations:
//
//   * seat conservation     — booked + held <= capacity on every flight, the
//                             incremental counters match the reservation log,
//                             nothing oversells past the hold policy;
//   * no zombie holds       — a Held reservation whose TTL lapsed more than a
//                             sweep-slack ago must have been expired;
//   * SMS quota             — the rolling-day window never exceeds the
//                             contract and never runs backwards within a day;
//   * rate-limiter bounds   — no key's in-window count exceeds the configured
//                             limit (brownout only ever tightens);
//   * admission conservation— every request lands in exactly one outcome
//                             bucket, for the app counters and for each
//                             overload class (offered == admitted + shed);
//   * weblog conservation   — exactly one log line per admitted request.
//
// Checks are pure observers: they never mutate platform state, consume no
// randomness, and are driven at deterministic sim-times (epoch barriers) plus
// end-of-run, so enabling them cannot change what the run does — only whether
// it is judged safe. Replay consistency (journaled outcome == replayed
// outcome) is the one invariant that needs a second run; the chaos runner
// owns it (core/chaos).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fraudsim::app {
class Application;
}
namespace fraudsim::detect::graph {
class EntityGraph;
}
namespace fraudsim::mitigate {
class RuleEngine;
}
namespace fraudsim::sim {
class ShardedSimulation;
}

namespace fraudsim::invariant {

// One observed safety violation, attributable: which invariant, at which
// barrier, with the concrete numbers that broke it.
struct Violation {
  std::string invariant;
  std::string detail;
  sim::SimTime time = 0;

  [[nodiscard]] std::string render() const;
};

// A named registry of safety conditions. A check returns nullopt while the
// condition holds and an attributable detail string when it is violated.
// Checks may be stateful (monotonicity needs the previous observation) but
// must never mutate the platform they observe.
class InvariantRegistry {
 public:
  using Check = std::function<std::optional<std::string>(sim::SimTime)>;

  void add(std::string name, Check check);

  // Evaluates every check at `now` (an epoch barrier or end-of-run) and
  // records failures. Returns how many checks failed at this barrier.
  std::size_t check_all(sim::SimTime now);

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  [[nodiscard]] std::size_t size() const { return checks_.size(); }
  // Total individual check evaluations across all barriers so far.
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }

  void clear_violations() { violations_.clear(); }

  // Drops every check, violation and counter. The record/replay harness calls
  // this at the start of each live run before re-binding the platform
  // invariants, so one registry can judge a sequence of runs (e.g. a crashed
  // record and its recovery re-record) without stale bindings or double
  // counting.
  void reset() {
    checks_.clear();
    violations_.clear();
    checks_run_ = 0;
  }

  // One line per violation (or "all invariants held") for reports.
  [[nodiscard]] std::string render_report() const;

 private:
  struct Named {
    std::string name;
    Check check;
  };
  std::vector<Named> checks_;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
};

struct PlatformInvariantOptions {
  // Grace period before a lapsed Held hold counts as a zombie. Expiry is
  // swept periodically (Env default: every minute), so a barrier landing
  // between sweeps legitimately sees briefly-lapsed holds; the slack must
  // exceed a couple of sweep periods.
  sim::SimDuration zombie_hold_slack = sim::minutes(3);
};

// Registers the platform-wide conditions listed above against `app` (and the
// rate-limiter bounds when `rules` is non-null). The references must outlive
// the registry. Safe to call on any platform posture — checks for disabled
// subsystems (overload off, no quota, honeypot off) hold vacuously.
void register_platform_invariants(InvariantRegistry& registry, const app::Application& app,
                                  const mitigate::RuleEngine* rules = nullptr,
                                  PlatformInvariantOptions options = {});

// Entity-graph safety conditions (core/detect/graph), registered only when
// the subsystem is enabled:
//   * graph-bounds          — live nodes/edges never exceed the configured
//                             caps and no component outgrows component_cap;
//   * graph-conservation    — live counts equal created - evicted for nodes
//                             and for edges (nothing leaks, nothing double
//                             frees);
//   * graph-intern-alignment— every live node id round-trips through the
//                             intern table (find(str(id)) == id), so intern
//                             ids stay stable across checkpoint/restore.
// With `app` non-null (a tap attached from the first request of the run),
// also checks event reconciliation: events offered to the graph equal the
// application's admitted-request counter.
void register_graph_invariants(InvariantRegistry& registry,
                               const detect::graph::EntityGraph& graph,
                               const app::Application* app = nullptr);

// Sharded-engine safety conditions (sim::ShardedSimulation), checked at
// epoch barriers:
//   * shard-conservation   — no cross-shard message is lost or duplicated:
//                            sent == delivered + in-flight at every barrier
//                            (a barrier ends quiescent, so in-flight is zero
//                            there and the identity collapses to
//                            sent == delivered);
//   * shard-clock-alignment— every shard clock equals the barrier time the
//                            check runs at (no shard raced past or stalled
//                            behind an epoch boundary).
void register_shard_invariants(InvariantRegistry& registry, const sim::ShardedSimulation& engine);

}  // namespace fraudsim::invariant
