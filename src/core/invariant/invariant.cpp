#include "core/invariant/invariant.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "app/application.hpp"
#include "core/detect/graph/entity_graph.hpp"
#include "core/mitigate/rules.hpp"
#include "sim/sharded_simulation.hpp"

namespace fraudsim::invariant {

std::string Violation::render() const {
  return "[" + sim::format_time(time) + "] " + invariant + ": " + detail;
}

void InvariantRegistry::add(std::string name, Check check) {
  checks_.push_back(Named{std::move(name), std::move(check)});
}

std::size_t InvariantRegistry::check_all(sim::SimTime now) {
  std::size_t failed = 0;
  for (auto& named : checks_) {
    ++checks_run_;
    if (auto detail = named.check(now)) {
      violations_.push_back(Violation{named.name, std::move(*detail), now});
      ++failed;
    }
  }
  return failed;
}

std::string InvariantRegistry::render_report() const {
  if (violations_.empty()) {
    return "all invariants held (" + std::to_string(checks_run_) + " checks, " +
           std::to_string(checks_.size()) + " conditions)\n";
  }
  std::ostringstream out;
  out << violations_.size() << " invariant violation(s):\n";
  for (const auto& v : violations_) out << "  " << v.render() << "\n";
  return out.str();
}

namespace {

// Recomputes one inventory's per-flight seat usage from the reservation log
// and cross-checks the incrementally-maintained counters plus the capacity
// bound. `label` distinguishes the real inventory from the honeypot decoy.
std::optional<std::string> check_seats(const airline::InventoryManager& inventory,
                                       const char* label) {
  std::map<airline::FlightId, std::pair<int, int>> recomputed;  // flight -> (held, sold)
  for (const auto& r : inventory.reservations()) {
    if (r.state == airline::ReservationState::Held) {
      recomputed[r.flight].first += r.nip();
    } else if (r.state == airline::ReservationState::Ticketed) {
      recomputed[r.flight].second += r.nip();
    }
  }
  for (const airline::FlightId id : inventory.flights()) {
    const airline::Flight* f = inventory.flight(id);
    const auto [held, sold] = recomputed[id];
    const int counter_held = inventory.held_seats(id);
    const int counter_sold = inventory.sold_seats(id);
    if (held != counter_held || sold != counter_sold) {
      return std::string(label) + " flight " + std::to_string(id.value()) +
             ": counters (held=" + std::to_string(counter_held) +
             ", sold=" + std::to_string(counter_sold) + ") diverge from reservation log (held=" +
             std::to_string(held) + ", sold=" + std::to_string(sold) + ")";
    }
    if (held < 0 || sold < 0) {
      return std::string(label) + " flight " + std::to_string(id.value()) +
             ": negative seat count (held=" + std::to_string(held) +
             ", sold=" + std::to_string(sold) + ")";
    }
    if (held + sold > f->capacity) {
      return std::string(label) + " flight " + std::to_string(id.value()) + ": oversold — held " +
             std::to_string(held) + " + sold " + std::to_string(sold) + " > capacity " +
             std::to_string(f->capacity);
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_zombies(const airline::InventoryManager& inventory,
                                         const char* label, sim::SimTime now,
                                         sim::SimDuration slack) {
  for (const auto& r : inventory.reservations()) {
    if (r.state != airline::ReservationState::Held) continue;
    if (r.hold_expiry + slack <= now) {
      return std::string(label) + " PNR " + r.pnr + " (flight " + std::to_string(r.flight.value()) +
             ", " + std::to_string(r.nip()) + " seats) still Held " +
             sim::format_time(now - r.hold_expiry) + " past its TTL";
    }
  }
  return std::nullopt;
}

}  // namespace

void register_platform_invariants(InvariantRegistry& registry, const app::Application& app,
                                  const mitigate::RuleEngine* rules,
                                  PlatformInvariantOptions options) {
  // Seat conservation: booked + held never exceed capacity and the O(1)
  // counters never drift from the reservation log — on the real inventory
  // and, with honeypots on, the decoy (a decoy oversell would leak the
  // deception to a probing attacker).
  registry.add("seat-conservation", [&app](sim::SimTime) -> std::optional<std::string> {
    if (auto v = check_seats(app.inventory(), "inventory")) return v;
    if (app.honeypot_enabled()) {
      if (auto v = check_seats(app.decoy_inventory(), "decoy")) return v;
    }
    return std::nullopt;
  });

  // Hold-TTL expiry: a lapsed hold must be released within a couple of sweep
  // periods — zombie holds are exactly the seat-spinning denial the paper's
  // §IV-A mitigation (hold TTLs) exists to bound.
  const sim::SimDuration slack = options.zombie_hold_slack;
  registry.add("no-zombie-holds", [&app, slack](sim::SimTime now) -> std::optional<std::string> {
    if (auto v = check_zombies(app.inventory(), "inventory", now, slack)) return v;
    if (app.honeypot_enabled()) {
      if (auto v = check_zombies(app.decoy_inventory(), "decoy", now, slack)) return v;
    }
    return std::nullopt;
  });

  // SMS rolling-day quota: the contract is never exceeded, and within one sim
  // day the window only moves forward (a backwards step means the quota
  // ledger lost submissions — free sends for a pumping ring).
  registry.add("sms-quota",
               [&app, last = std::pair<std::int64_t, std::uint64_t>{-1, 0}](
                   sim::SimTime) mutable -> std::optional<std::string> {
                 const auto& gw = app.sms_gateway();
                 const std::uint64_t quota = gw.quota_used();
                 const std::int64_t day = gw.quota_day();
                 if (day < last.first) {
                   return "quota day ran backwards: " + std::to_string(day) + " after " +
                          std::to_string(last.first);
                 }
                 if (day == last.first && quota < last.second) {
                   return "quota window ran backwards on day " + std::to_string(day) + ": " +
                          std::to_string(quota) + " after " + std::to_string(last.second);
                 }
                 last = {day, quota};
                 return std::nullopt;
               });
  registry.add("sms-quota-bound", [&app](sim::SimTime) -> std::optional<std::string> {
    const auto& gw = app.sms_gateway();
    const std::uint64_t contract = gw.config().daily_quota;
    // Each submission increments the window only after the quota gate passes,
    // so used == contract is reachable but used > contract means the gate was
    // bypassed — free deliveries for a pumping ring.
    if (contract != 0 && gw.quota_used() > contract) {
      return "rolling-day window charged " + std::to_string(gw.quota_used()) +
             " submissions against a contract of " + std::to_string(contract);
    }
    if (gw.quota_used() > gw.carrier_attempts()) {
      return "quota window counts " + std::to_string(gw.quota_used()) +
             " submissions but only " + std::to_string(gw.carrier_attempts()) +
             " carrier attempts were ever made";
    }
    return std::nullopt;
  });

  // Rate-limiter bounds: no key may hold more in-window events than the
  // configured limit — allow() records only within-limit events and brownout
  // only tightens effective limits, so an excess means the window ledger
  // itself is corrupt.
  if (rules != nullptr) {
    registry.add("rate-limiter-bounds", [rules](sim::SimTime now) -> std::optional<std::string> {
      std::optional<std::string> violation;
      rules->for_each_limiter(
          [&](const mitigate::RateLimitSpec& spec, const mitigate::SlidingWindowRateLimiter& l) {
            if (violation) return;
            const std::uint64_t max = l.max_in_window(now);
            if (max > spec.limit) {
              violation = "limiter '" + spec.name + "': a key holds " + std::to_string(max) +
                          " events in-window, limit " + std::to_string(spec.limit);
            }
          });
      return violation;
    });
  }

  // Admission conservation: every request lands in exactly one outcome
  // bucket. App-level: terminal outcomes never exceed requests and deadline
  // misses are a subset of sheds. Overload-level: per class, offered ==
  // admitted + shed_queue + shed_fail_fast + deadline_missed.
  registry.add("admission-conservation", [&app](sim::SimTime) -> std::optional<std::string> {
    const auto s = app.stats();
    const std::uint64_t terminal =
        s.blocked + s.challenged + s.rate_limited + s.honeypotted + s.shed;
    if (terminal > s.requests) {
      return "terminal outcomes (" + std::to_string(terminal) + ") exceed requests (" +
             std::to_string(s.requests) + ")";
    }
    if (s.deadline_missed > s.shed) {
      return "deadline_missed (" + std::to_string(s.deadline_missed) + ") exceeds shed (" +
             std::to_string(s.shed) + ")";
    }
    if (app.overload().enabled()) {
      for (std::size_t i = 0; i < overload::kRequestClasses; ++i) {
        const auto cls = static_cast<overload::RequestClass>(i);
        const auto c = app.overload().stats(cls);
        const std::uint64_t accounted =
            c.admitted + c.shed_queue + c.shed_fail_fast + c.deadline_missed;
        if (accounted != c.offered) {
          return std::string("class ") + overload::to_string(cls) + ": offered " +
                 std::to_string(c.offered) + " != admitted " + std::to_string(c.admitted) +
                 " + shed_queue " + std::to_string(c.shed_queue) + " + shed_fail_fast " +
                 std::to_string(c.shed_fail_fast) + " + deadline_missed " +
                 std::to_string(c.deadline_missed);
        }
      }
    }
    return std::nullopt;
  });

  // Weblog conservation: exactly one log line per request the facade
  // admitted — server telemetry that silently drops (or duplicates) lines is
  // how abuse hides from every log-driven detector downstream.
  registry.add("weblog-conservation", [&app](sim::SimTime) -> std::optional<std::string> {
    const std::uint64_t logged = app.weblog().size();
    const std::uint64_t requests = app.stats().requests;
    if (logged != requests) {
      return "weblog has " + std::to_string(logged) + " lines for " + std::to_string(requests) +
             " admitted requests";
    }
    return std::nullopt;
  });

  // Detection-batch conservation: every session-view a pipeline run offered
  // to a detector family was either scored or recorded as skipped — the
  // batched execution path cannot silently drop (or double-count) work.
  // Vacuously true while no metrics-bound pipeline has run. The counters are
  // mode-independent, so this holds identically under FRAUDSIM_DETECT_BATCH=0.
  registry.add("detect-batch-conservation", [&app](sim::SimTime) -> std::optional<std::string> {
    const auto& metrics = app.metrics();
    const std::uint64_t in = metrics.counter_value("detect.batch.sessions_in");
    const std::uint64_t scored = metrics.counter_value("detect.batch.sessions_scored");
    const std::uint64_t skipped = metrics.counter_value("detect.batch.sessions_skipped");
    if (in != scored + skipped) {
      return "detect.batch.sessions_in (" + std::to_string(in) +
             ") != sessions_scored (" + std::to_string(scored) + ") + sessions_skipped (" +
             std::to_string(skipped) + ")";
    }
    return std::nullopt;
  });
}

void register_graph_invariants(InvariantRegistry& registry,
                               const detect::graph::EntityGraph& graph,
                               const app::Application* app) {
  // Memory bounds: the caps are enforced at insert time, so exceeding one
  // means eviction is broken — the graph would grow without bound in
  // production.
  registry.add("graph-bounds", [&graph](sim::SimTime) -> std::optional<std::string> {
    const auto& config = graph.config();
    if (graph.node_count() > config.max_nodes) {
      return "live nodes (" + std::to_string(graph.node_count()) + ") exceed max_nodes (" +
             std::to_string(config.max_nodes) + ")";
    }
    if (graph.edge_count() > config.max_edges) {
      return "live edges (" + std::to_string(graph.edge_count()) + ") exceed max_edges (" +
             std::to_string(config.max_edges) + ")";
    }
    if (const std::size_t biggest = graph.max_component_size(); biggest > config.component_cap) {
      return "a component holds " + std::to_string(biggest) + " nodes, component_cap " +
             std::to_string(config.component_cap);
    }
    return std::nullopt;
  });

  // Conservation: live counts must equal created - evicted, for nodes and for
  // edges — a leak (or a double free) in eviction shows up here long before
  // it corrupts a checkpoint.
  registry.add("graph-conservation", [&graph](sim::SimTime) -> std::optional<std::string> {
    const auto& s = graph.stats();
    if (graph.node_count() != s.nodes_created - s.nodes_evicted) {
      return "live nodes (" + std::to_string(graph.node_count()) + ") != created (" +
             std::to_string(s.nodes_created) + ") - evicted (" +
             std::to_string(s.nodes_evicted) + ")";
    }
    if (graph.edge_count() != s.edges_created - s.edges_evicted) {
      return "live edges (" + std::to_string(graph.edge_count()) + ") != created (" +
             std::to_string(s.edges_created) + ") - evicted (" +
             std::to_string(s.edges_evicted) + ")";
    }
    return std::nullopt;
  });

  // Intern alignment: every live node id round-trips through the intern
  // table. A restored graph whose id assignment drifted would break this for
  // the first key interned after the restore.
  registry.add("graph-intern-alignment", [&graph](sim::SimTime) -> std::optional<std::string> {
    const auto& intern = graph.interner();
    if (intern.size() != graph.node_count()) {
      return "intern table holds " + std::to_string(intern.size()) + " keys for " +
             std::to_string(graph.node_count()) + " live nodes";
    }
    for (std::uint32_t id = 1; id <= intern.capacity(); ++id) {
      if (!intern.contains(id)) continue;
      if (intern.find(intern.str(id)) != id) {
        return "intern id " + std::to_string(id) + " does not round-trip through its key";
      }
      if (!graph.alive(id)) {
        return "intern id " + std::to_string(id) + " is live in the table but has no node";
      }
    }
    return std::nullopt;
  });

  // Event reconciliation (tap attached from the run's first request): every
  // facade call the application admitted was offered to the graph exactly
  // once — drops beyond the injected "graph.ingest" outages mean the tap
  // missed traffic the detectors downstream assume it saw.
  if (app != nullptr) {
    registry.add("graph-event-reconciliation",
                 [&graph, app](sim::SimTime) -> std::optional<std::string> {
                   const std::uint64_t seen = graph.stats().events_seen;
                   const std::uint64_t requests = app->stats().requests;
                   if (seen != requests) {
                     return "graph saw " + std::to_string(seen) + " events for " +
                            std::to_string(requests) + " application requests";
                   }
                   return std::nullopt;
                 });
  }
}

void register_shard_invariants(InvariantRegistry& registry,
                               const sim::ShardedSimulation& engine) {
  // Conservation: every message a shard queued was either delivered at a
  // barrier or is still waiting in an outbox — nothing lost (sent exceeds
  // the rest) and nothing duplicated (delivered exceeds sent). An injected
  // shard.exchange fault only charges retries, so this must hold through
  // chaos campaigns too.
  registry.add("shard-conservation", [&engine](sim::SimTime) -> std::optional<std::string> {
    const std::uint64_t sent = engine.messages_sent();
    const std::uint64_t delivered = engine.messages_delivered();
    const std::uint64_t in_flight = engine.messages_in_flight();
    if (sent != delivered + in_flight) {
      return "messages sent (" + std::to_string(sent) + ") != delivered (" +
             std::to_string(delivered) + ") + in-flight (" + std::to_string(in_flight) + ")" +
             (delivered + in_flight > sent ? " — duplicated" : " — lost");
    }
    return std::nullopt;
  });
  // Barrier alignment: when a check runs (always at a barrier), every shard
  // clock must sit exactly at that barrier — a shard ahead raced past an
  // epoch boundary, a shard behind stalled mid-epoch.
  registry.add("shard-clock-alignment",
               [&engine](sim::SimTime now) -> std::optional<std::string> {
                 for (std::uint32_t k = 0; k < engine.shards(); ++k) {
                   const sim::SimTime at = engine.shard(k).now();
                   if (at != now) {
                     return "shard " + std::to_string(k) + " clock at " + std::to_string(at) +
                            ", barrier at " + std::to_string(now);
                   }
                 }
                 return std::nullopt;
               });
}

}  // namespace fraudsim::invariant
