// The Airline D advanced SMS Pumping case study (§IV-C) as a scenario.
//
// Timeline:
//   days [0, baseline_days)        — legitimate traffic only (the "before")
//   days [baseline_days, ...)      — pumping ring active (the "during")
// The ring buys a few tickets, then pumps boarding-pass SMS across ~42
// countries weighted to premium destinations, via country-matched residential
// proxies with fingerprint rotation. Detection/mitigation posture is
// configurable to reproduce both the vulnerable Dec-2022 configuration (no
// per-booking limit; only a path-level monitor that trips late and removes
// the feature) and the hardened alternatives.
#pragma once

#include "attack/sms_pump.hpp"
#include "core/detect/sms_anomaly.hpp"
#include "core/mitigate/controller.hpp"
#include "core/scenario/env.hpp"
#include "econ/attacker_econ.hpp"
#include "econ/defender_econ.hpp"

namespace fraudsim::scenario {

struct SmsPumpScenarioConfig {
  std::uint64_t seed = 2212;
  int fleet_flights = 20;
  int capacity = 200;
  int baseline_days = 7;
  int attack_days = 7;
  attack::SmsPumpConfig pump;          // stop_at filled from the timeline
  // Mitigation posture.
  std::uint64_t per_booking_sms_cap = 0;  // 0 = vulnerable configuration
  bool disable_sms_on_path_trip = true;   // the emergency mitigation
  double path_daily_limit = 2500;
  bool loyalty_gate_sms = false;          // §V feature-access restriction
  mitigate::ChallengeMode challenge = mitigate::ChallengeMode::Off;
  workload::LegitTrafficConfig legit;
  sms::CarrierPolicy carrier_policy;      // §V carrier-collaboration knobs
};

struct SmsPumpScenarioResult {
  std::vector<detect::CountrySurge> surges;  // ranked, Table I input
  double global_surge_fraction = 0.0;        // boarding-pass SMS, during vs before
  std::size_t attacker_countries = 0;        // distinct destinations the ring hit
  attack::SmsPumpStats pump;
  workload::LegitTrafficStats legit;
  econ::AttackerPnL attacker_pnl;
  econ::DefenderPnL defender_pnl;
  std::optional<sim::SimTime> path_trip_time;
  std::optional<sim::SimTime> per_booking_trip_time;
  std::optional<sim::SimTime> sms_disabled_at;
  sim::SimTime attack_start = 0;
  std::uint64_t boarding_sms_before = 0;  // per-day-normalised counts follow
  std::uint64_t boarding_sms_during = 0;
};

[[nodiscard]] SmsPumpScenarioResult run_sms_pump_scenario(const SmsPumpScenarioConfig& config);

}  // namespace fraudsim::scenario
