#include "core/scenario/scale_scenario.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/detect/graph/entity_graph.hpp"
#include "core/detect/graph/graph_detector.hpp"
#include "core/fault/fault.hpp"
#include "core/invariant/invariant.hpp"
#include "core/recover/atomic_file.hpp"
#include "core/recover/manifest.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_simulation.hpp"
#include "sim/simulation.hpp"
#include "util/archive.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/table.hpp"

namespace fraudsim::scenario {

namespace {

// Cross-shard message types.
constexpr std::uint32_t kMsgHoldRequest = 1;  // a=user, b=flight, c=intent_pay
constexpr std::uint32_t kMsgHoldGranted = 2;  // a=user, b=hold idx, c=intent_pay (src=owner)
constexpr std::uint32_t kMsgHoldDenied = 3;   // a=user
constexpr std::uint32_t kMsgPayRequest = 4;   // a=hold idx, b=hold generation

constexpr std::uint64_t kCheckpointMagic = 0x3176'4353'5346ULL;  // "FSSCv1"

// Closure payload packing: every event closure captures exactly (World*,
// u64) — 16 trivially-copyable bytes, inside std::function's small-buffer
// optimisation, so the hot path never allocates per event.
//   pay decision: [user shard:12][flight shard:12][hold idx:20][generation:20]
//   expiry:       [shard:12][hold idx:20] (no generation — pay cancels the
//                 expiry event, so a firing expiry always matches its hold)
constexpr std::uint64_t pack_pay(std::uint32_t us, std::uint32_t fs, std::uint64_t hidx,
                                 std::uint32_t gen) {
  return (static_cast<std::uint64_t>(us) << 52) | (static_cast<std::uint64_t>(fs) << 40) |
         ((hidx & 0xFFFFF) << 20) | (gen & 0xFFFFF);
}
constexpr std::uint64_t pack_expiry(std::uint32_t shard, std::uint64_t hidx) {
  return (static_cast<std::uint64_t>(shard) << 20) | (hidx & 0xFFFFF);
}

struct UserState {
  std::uint64_t draws = 0;  // stateless-randomness cursor
  sim::EventId pending_event = 0;
  sim::SimTime pending_at = 0;
  std::uint32_t holds = 0;
  std::uint32_t denials = 0;
  std::uint32_t pays = 0;
};

struct FlightState {
  std::uint32_t held = 0;
  std::uint32_t paid = 0;
  std::uint32_t capacity = 0;
  std::uint32_t fare = 0;  // drawn from the owner shard's forked Rng at init
};

struct HoldRec {
  std::uint64_t user = 0;
  std::uint64_t flight = 0;
  sim::EventId expiry_event = 0;
  sim::SimTime expiry_at = 0;
  std::uint32_t gen = 0;  // bumped on every reuse of this slot
  bool live = false;
};

struct ShardCounters {
  std::uint64_t activities = 0;
  std::uint64_t holds = 0;
  std::uint64_t denials = 0;
  std::uint64_t pays = 0;
  std::uint64_t pay_late = 0;
  std::uint64_t expiries = 0;
  std::uint64_t graph_events = 0;
};

struct GraphOp {
  std::uint64_t user = 0;
  std::uint64_t flight = 0;
  sim::SimTime at = 0;
  std::uint8_t kind = 0;  // 0 = hold, 1 = pay
};

struct ShardState {
  explicit ShardState(const detect::graph::GraphConfig& gcfg) : graph(gcfg) {}

  std::vector<HoldRec> holds;
  std::vector<std::uint32_t> free_holds;  // LIFO — order is checkpointed
  // Pay decisions scheduled but not yet fired, keyed by packed payload
  // (unique per live grant). A decision scheduled in the last pay_delay of an
  // epoch is still pending when a checkpoint runs, so these descriptors must
  // survive a resume like activity timers and hold expiries do. std::map for
  // deterministic serialisation order.
  std::map<std::uint64_t, std::pair<sim::EventId, sim::SimTime>> pending_pays;
  ShardCounters counters;
  // Collected on the shard's thread during an epoch, applied to `graph` on
  // the main thread at the barrier (the graph consults the thread_local
  // fault registry, so ingest must never run on a worker).
  std::vector<GraphOp> graph_ops;
  detect::graph::EntityGraph graph;
};

// The scheduling/messaging seam the workload runs against. One
// implementation wraps the serial engine, one the sharded engine; everything
// above this interface is shared, which is what makes "serial vs K=1
// byte-identical" a property of the engines rather than of two workloads.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual sim::EventId schedule(std::uint32_t shard, sim::SimTime at, sim::EventFn fn) = 0;
  virtual bool cancel(std::uint32_t shard, sim::EventId id) = 0;
  [[nodiscard]] virtual sim::SimTime now(std::uint32_t shard) const = 0;
  virtual void send(std::uint32_t src, std::uint32_t dst, std::uint32_t type, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c) = 0;
  [[nodiscard]] virtual std::uint32_t user_shard(std::uint64_t user) const = 0;
  [[nodiscard]] virtual std::uint32_t flight_shard(std::uint64_t flight) const = 0;
};

class SerialTransport final : public Transport {
 public:
  sim::EventId schedule(std::uint32_t, sim::SimTime at, sim::EventFn fn) override {
    return sim_.schedule_at(at, std::move(fn));
  }
  bool cancel(std::uint32_t, sim::EventId id) override { return sim_.cancel(id); }
  [[nodiscard]] sim::SimTime now(std::uint32_t) const override { return sim_.now(); }
  void send(std::uint32_t, std::uint32_t, std::uint32_t, std::uint64_t, std::uint64_t,
            std::uint64_t) override {
    assert(false && "serial run owns every flight locally — nothing to send");
  }
  [[nodiscard]] std::uint32_t user_shard(std::uint64_t) const override { return 0; }
  [[nodiscard]] std::uint32_t flight_shard(std::uint64_t) const override { return 0; }

  sim::Simulation sim_;
};

class ShardedTransport final : public Transport {
 public:
  explicit ShardedTransport(const sim::ShardedSimulation::Config& cfg) : engine_(cfg) {}

  sim::EventId schedule(std::uint32_t shard, sim::SimTime at, sim::EventFn fn) override {
    return engine_.shard(shard).schedule_at(at, std::move(fn));
  }
  bool cancel(std::uint32_t shard, sim::EventId id) override {
    return engine_.shard(shard).cancel(id);
  }
  [[nodiscard]] sim::SimTime now(std::uint32_t shard) const override {
    return engine_.shard(shard).now();
  }
  void send(std::uint32_t src, std::uint32_t dst, std::uint32_t type, std::uint64_t a,
            std::uint64_t b, std::uint64_t c) override {
    engine_.send(src, dst, type, a, b, c);
  }
  // Disjoint key domains (2u vs 2f+1) so a user and a flight with the same
  // numeric id land on independently-hashed shards.
  [[nodiscard]] std::uint32_t user_shard(std::uint64_t user) const override {
    return engine_.shard_of(2 * user);
  }
  [[nodiscard]] std::uint32_t flight_shard(std::uint64_t flight) const override {
    return engine_.shard_of(2 * flight + 1);
  }

  sim::ShardedSimulation engine_;
};

struct World {
  const ScaleConfig* cfg = nullptr;
  Transport* transport = nullptr;
  std::vector<UserState> users;
  std::vector<FlightState> flights;
  std::vector<std::unique_ptr<ShardState>> shards;

  [[nodiscard]] std::uint64_t user_seed(std::uint64_t u) const {
    return util::splitmix64(cfg->seed ^ (0x9E3779B97F4A7C15ULL * (u + 1)));
  }
  // Stateless per-user randomness: draw n of user u is a pure hash, so the
  // behaviour stream is identical on any shard, any thread, any K.
  [[nodiscard]] std::uint64_t next_draw(std::uint64_t u) {
    UserState& s = users[u];
    ++s.draws;
    return util::splitmix64(user_seed(u) + 0x9E3779B97F4A7C15ULL * s.draws);
  }
  [[nodiscard]] bool sampled(std::uint64_t u) const {
    return cfg->graph_sample > 0 && u % cfg->graph_sample == 0;
  }
};

[[nodiscard]] detect::graph::GraphConfig scale_graph_config(const ScaleConfig& cfg) {
  // Sized so the sampled population never triggers cap evictions — eviction
  // is deterministic, but cap-free graphs keep the scenario's byte-identity
  // reasoning simple.
  detect::graph::GraphConfig gcfg;
  const std::uint64_t sampled =
      cfg.graph_sample > 0 ? cfg.users / cfg.graph_sample + 1 : cfg.users;
  gcfg.max_nodes = std::max<std::size_t>(4096, 2 * sampled + cfg.flights + 16);
  gcfg.max_edges = gcfg.max_nodes * 4;
  gcfg.component_cap = gcfg.max_nodes;  // rings are scored, not capped, here
  return gcfg;
}

void on_activity(World* w, std::uint64_t u);
void on_expiry(World* w, std::uint64_t packed);
void on_pay_decision(World* w, std::uint64_t packed);

void schedule_activity(World* w, std::uint64_t u, sim::SimTime at) {
  UserState& user = w->users[u];
  user.pending_at = at;
  user.pending_event = w->transport->schedule(w->transport->user_shard(u), at,
                                              [w, u] { on_activity(w, u); });
}

std::uint64_t alloc_hold(ShardState& ss) {
  std::uint64_t idx;
  if (!ss.free_holds.empty()) {
    idx = ss.free_holds.back();
    ss.free_holds.pop_back();
  } else {
    idx = ss.holds.size();
    ss.holds.emplace_back();
  }
  assert(idx < (1ULL << 20) && "hold index must fit the closure packing");
  ++ss.holds[idx].gen;
  return idx;
}

void free_hold(ShardState& ss, std::uint64_t idx) {
  ss.free_holds.push_back(static_cast<std::uint32_t>(idx));
}

void apply_pay(World* w, std::uint32_t fs, std::uint64_t hidx, std::uint32_t gen) {
  ShardState& ss = *w->shards[fs];
  if (hidx >= ss.holds.size()) return;
  HoldRec& h = ss.holds[hidx];
  // Generation check: the hold may have expired — and its slot been reused
  // for a different hold — between the pay decision and this apply.
  if (!h.live || (h.gen & 0xFFFFF) != (gen & 0xFFFFF)) {
    ++ss.counters.pay_late;
    return;
  }
  h.live = false;
  w->transport->cancel(fs, h.expiry_event);  // exercises cancel + compaction
  FlightState& fl = w->flights[h.flight];
  --fl.held;
  ++fl.paid;
  ++ss.counters.pays;
  ++w->users[h.user].pays;
  if (w->sampled(h.user)) {
    ss.graph_ops.push_back({h.user, h.flight, w->transport->now(fs), 1});
  }
  free_hold(ss, hidx);
}

void on_pay_decision(World* w, std::uint64_t packed) {
  const auto us = static_cast<std::uint32_t>(packed >> 52);
  const auto fs = static_cast<std::uint32_t>((packed >> 40) & 0xFFF);
  const std::uint64_t hidx = (packed >> 20) & 0xFFFFF;
  const auto gen = static_cast<std::uint32_t>(packed & 0xFFFFF);
  w->shards[us]->pending_pays.erase(packed);
  if (us == fs) {
    apply_pay(w, fs, hidx, gen);
  } else {
    w->transport->send(us, fs, kMsgPayRequest, hidx, gen, 0);
  }
}

// All pay decisions go through here so the pending-descriptor map stays in
// lockstep with the queue — a decision still pending at a checkpoint must be
// re-registrable on resume.
void schedule_pay(World* w, sim::SimTime at, std::uint64_t packed) {
  const auto us = static_cast<std::uint32_t>(packed >> 52);
  const sim::EventId id =
      w->transport->schedule(us, at, [w, packed] { on_pay_decision(w, packed); });
  w->shards[us]->pending_pays.emplace(packed, std::make_pair(id, at));
}

void on_expiry(World* w, std::uint64_t packed) {
  const auto s = static_cast<std::uint32_t>(packed >> 20);
  const std::uint64_t hidx = packed & 0xFFFFF;
  ShardState& ss = *w->shards[s];
  HoldRec& h = ss.holds[hidx];
  if (!h.live) return;
  h.live = false;
  --w->flights[h.flight].held;
  ++ss.counters.expiries;
  free_hold(ss, hidx);
}

void apply_hold(World* w, std::uint32_t fs, sim::SimTime now, std::uint64_t u, std::uint64_t f,
                bool intent_pay, bool remote) {
  ShardState& ss = *w->shards[fs];
  FlightState& fl = w->flights[f];
  if (fl.held + fl.paid >= fl.capacity) {
    ++ss.counters.denials;
    if (remote) {
      w->transport->send(fs, w->transport->user_shard(u), kMsgHoldDenied, u, 0, 0);
    } else {
      ++w->users[u].denials;
    }
    return;
  }
  ++fl.held;
  const std::uint64_t hidx = alloc_hold(ss);
  HoldRec& h = ss.holds[hidx];
  h.user = u;
  h.flight = f;
  h.live = true;
  h.expiry_at = now + w->cfg->hold_ttl;
  const std::uint64_t packed = pack_expiry(fs, hidx);
  h.expiry_event =
      w->transport->schedule(fs, h.expiry_at, [w, packed] { on_expiry(w, packed); });
  ++ss.counters.holds;
  if (w->sampled(u)) ss.graph_ops.push_back({u, f, now, 0});
  if (remote) {
    w->transport->send(fs, w->transport->user_shard(u), kMsgHoldGranted, u, hidx,
                       intent_pay ? 1 : 0);
  } else {
    ++w->users[u].holds;
    if (intent_pay) {
      schedule_pay(w, now + w->cfg->pay_delay,
                   pack_pay(fs, fs, hidx, w->shards[fs]->holds[hidx].gen));
    }
  }
}

void on_activity(World* w, std::uint64_t u) {
  const std::uint32_t us = w->transport->user_shard(u);
  ShardState& ss = *w->shards[us];
  const sim::SimTime now = w->transport->now(us);
  ++ss.counters.activities;
  const std::uint64_t r = w->next_draw(u);
  const std::uint64_t f = r % w->cfg->flights;
  const bool intent_pay = ((r >> 24) % 100) < w->cfg->pay_percent;
  const sim::SimDuration dt =
      w->cfg->think_min +
      static_cast<sim::SimDuration>((r >> 32) %
                                    static_cast<std::uint64_t>(w->cfg->think_spread + 1));
  const sim::SimTime next_at = now + dt;
  if (next_at < w->cfg->horizon) {
    schedule_activity(w, u, next_at);
  } else {
    w->users[u].pending_event = 0;
    w->users[u].pending_at = 0;
  }
  const std::uint32_t fs = w->transport->flight_shard(f);
  if (fs == us) {
    apply_hold(w, fs, now, u, f, intent_pay, /*remote=*/false);
  } else {
    w->transport->send(us, fs, kMsgHoldRequest, u, f, intent_pay ? 1 : 0);
  }
}

// Main-thread message handler (barrier exchange).
void on_message(World* w, std::uint32_t dst, const sim::ShardMessage& msg) {
  switch (msg.type) {
    case kMsgHoldRequest:
      apply_hold(w, dst, w->transport->now(dst), msg.a, msg.b, msg.c != 0, /*remote=*/true);
      break;
    case kMsgHoldGranted: {
      ++w->users[msg.a].holds;
      if (msg.c != 0) {
        const std::uint32_t us = dst;
        const std::uint32_t fs = msg.src;
        const std::uint32_t gen = w->shards[fs]->holds[msg.b].gen;
        schedule_pay(w, w->transport->now(us) + w->cfg->pay_delay,
                     pack_pay(us, fs, msg.b, gen));
      }
      break;
    }
    case kMsgHoldDenied:
      ++w->users[msg.a].denials;
      break;
    case kMsgPayRequest:
      apply_pay(w, dst, msg.a, static_cast<std::uint32_t>(msg.b));
      break;
    default:
      assert(false && "unknown shard message type");
  }
}

// --- Init --------------------------------------------------------------------

// Static state: capacities and fares. Fares are the per-shard forked-Rng
// probe — each owner shard draws from its own fork, in global flight order,
// so the assignment is a pure function of (seed, K) and identical on resume.
void init_static(World& w) {
  w.users.assign(w.cfg->users, UserState{});
  w.flights.assign(w.cfg->flights, FlightState{});
  std::vector<sim::Rng> forks;
  forks.reserve(w.shards.size());
  const sim::Rng root(w.cfg->seed);
  for (std::size_t k = 0; k < w.shards.size(); ++k) {
    forks.push_back(root.fork("shard/" + std::to_string(k)));
  }
  for (std::uint64_t f = 0; f < w.cfg->flights; ++f) {
    FlightState& fl = w.flights[f];
    fl.capacity = w.cfg->seats_per_flight;
    fl.fare = static_cast<std::uint32_t>(
        forks[w.transport->flight_shard(f)].uniform_int(50, 500));
  }
}

// Fresh-run only: first activity per user, in global id order.
void init_schedule(World& w) {
  const sim::SimDuration window = w.cfg->think_min + w.cfg->think_spread;
  for (std::uint64_t u = 0; u < w.cfg->users; ++u) {
    const std::uint64_t r = w.next_draw(u);
    const sim::SimTime t0 = 1 + static_cast<sim::SimTime>(
                                    r % static_cast<std::uint64_t>(std::max<sim::SimDuration>(
                                            window, 1)));
    if (t0 < w.cfg->horizon) schedule_activity(&w, u, t0);
  }
}

// --- Barrier work ------------------------------------------------------------

// Applies the epoch's collected graph ops to each shard's private graph, in
// shard order — on the main thread, where the thread_local fault registry
// (graph.ingest) is the armed one.
void apply_graph_ops(World& w) {
  for (auto& shard : w.shards) {
    ShardState& ss = *shard;
    for (const GraphOp& op : ss.graph_ops) {
      if (!ss.graph.begin_event(op.at)) continue;
      ++ss.counters.graph_events;
      const auto a = ss.graph.touch(op.at, detect::graph::NodeType::Session,
                                    "u" + std::to_string(op.user));
      const auto b = ss.graph.touch(op.at, detect::graph::NodeType::Booking,
                                    "f" + std::to_string(op.flight));
      ss.graph.connect(op.at, a, b);
      ss.graph.add_signal(op.at, a,
                          op.kind == 0 ? detect::graph::Signal::Holds
                                       : detect::graph::Signal::Pays,
                          1.0);
    }
    ss.graph_ops.clear();
  }
}

// Merges the per-shard graphs into one population-scale graph via the
// canonical partition. Rebuilt fresh at each barrier — the partition is a
// pure function of the merged edge set, so shard merge order cannot change
// the components. (EntityGraph is not assignable — it pins a fault-point
// reference — hence the emplace-into-optional shape.)
void rebuild_merged(std::optional<detect::graph::EntityGraph>& merged, const World& w,
                    sim::SimTime at) {
  merged.emplace(scale_graph_config(*w.cfg));
  for (const auto& shard : w.shards) merged->merge_from(shard->graph, at);
}

// --- Checkpoint --------------------------------------------------------------

[[nodiscard]] std::string shard_dir(const ScaleConfig& cfg, std::uint32_t k) {
  std::string n = std::to_string(k);
  while (n.size() < 3) n.insert(n.begin(), '0');
  return cfg.out_dir + "/shards/shard-" + n;
}

[[nodiscard]] std::string checkpoint_name(std::uint64_t barrier_index) {
  return "checkpoint-" + std::to_string(barrier_index) + ".fsc";
}

[[nodiscard]] bool parse_checkpoint_name(const std::string& rel, std::uint64_t& idx) {
  constexpr std::string_view prefix = "checkpoint-";
  constexpr std::string_view suffix = ".fsc";
  if (rel.size() <= prefix.size() + suffix.size()) return false;
  if (rel.compare(0, prefix.size(), prefix) != 0) return false;
  if (rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  idx = 0;
  for (std::size_t i = prefix.size(); i < rel.size() - suffix.size(); ++i) {
    if (rel[i] < '0' || rel[i] > '9') return false;
    idx = idx * 10 + static_cast<std::uint64_t>(rel[i] - '0');
  }
  return true;
}

// Serialises one shard's slice of the world: its counters, hold table, the
// state of every user/flight it owns (global id order), its entity graph,
// and the event-queue descriptors needed to re-register pending events under
// their original ids. Shard 0 additionally carries the engine bookkeeping.
[[nodiscard]] std::string checkpoint_shard(const World& w, sim::ShardedSimulation& engine,
                                           std::uint32_t k, std::uint64_t barrier_index) {
  util::ByteWriter out;
  out.u64(kCheckpointMagic);
  out.u64(w.cfg->digest());
  out.u64(barrier_index);
  out.i64(engine.now());
  if (k == 0) engine.checkpoint(out);

  const ShardState& ss = *w.shards[k];
  out.u64(ss.counters.activities);
  out.u64(ss.counters.holds);
  out.u64(ss.counters.denials);
  out.u64(ss.counters.pays);
  out.u64(ss.counters.pay_late);
  out.u64(ss.counters.expiries);
  out.u64(ss.counters.graph_events);

  out.u64(ss.holds.size());
  for (const HoldRec& h : ss.holds) {
    out.boolean(h.live);
    out.u32(h.gen);
    out.u64(h.user);
    out.u64(h.flight);
    out.u64(h.expiry_event);
    out.i64(h.expiry_at);
  }
  out.u64(ss.free_holds.size());
  for (const std::uint32_t idx : ss.free_holds) out.u32(idx);

  // Pay decisions scheduled but not yet fired. Rare (only grants landing in
  // the last pay_delay of an epoch leave one pending at a barrier) but losing
  // a single one forks the timeline, so they are first-class checkpoint state.
  out.u64(ss.pending_pays.size());
  for (const auto& [packed, ev] : ss.pending_pays) {
    out.u64(packed);
    out.u64(ev.first);
    out.i64(ev.second);
  }

  std::uint64_t owned_users = 0;
  for (std::uint64_t u = 0; u < w.cfg->users; ++u) {
    if (w.transport->user_shard(u) == k) ++owned_users;
  }
  out.u64(owned_users);
  for (std::uint64_t u = 0; u < w.cfg->users; ++u) {
    if (w.transport->user_shard(u) != k) continue;
    const UserState& s = w.users[u];
    out.u64(u);
    out.u64(s.draws);
    out.u64(s.pending_event);
    out.i64(s.pending_at);
    out.u32(s.holds);
    out.u32(s.denials);
    out.u32(s.pays);
  }
  std::uint64_t owned_flights = 0;
  for (std::uint64_t f = 0; f < w.cfg->flights; ++f) {
    if (w.transport->flight_shard(f) == k) ++owned_flights;
  }
  out.u64(owned_flights);
  for (std::uint64_t f = 0; f < w.cfg->flights; ++f) {
    if (w.transport->flight_shard(f) != k) continue;
    out.u64(f);
    out.u32(w.flights[f].held);
    out.u32(w.flights[f].paid);
  }

  ss.graph.checkpoint(out);
  out.u64(engine.shard(k).queue().next_id());
  return out.bytes();
}

// Restores one shard from its blob, re-registering pending events (activity
// timers, hold expiries, pay decisions) under their ORIGINAL event ids so the
// resumed queue drains in the exact order the uninterrupted run would have
// used.
[[nodiscard]] bool restore_shard(World& w, sim::ShardedSimulation& engine, std::uint32_t k,
                                 const std::string& blob, std::uint64_t expect_index) {
  util::ByteReader in(blob);
  if (in.u64() != kCheckpointMagic) return false;
  if (in.u64() != w.cfg->digest()) return false;
  if (in.u64() != expect_index) return false;
  (void)in.i64();  // barrier time — carried by the engine blob
  if (k == 0) engine.restore(in);

  ShardState& ss = *w.shards[k];
  ss.counters.activities = in.u64();
  ss.counters.holds = in.u64();
  ss.counters.denials = in.u64();
  ss.counters.pays = in.u64();
  ss.counters.pay_late = in.u64();
  ss.counters.expiries = in.u64();
  ss.counters.graph_events = in.u64();

  World* wp = &w;
  ss.holds.assign(in.u64(), HoldRec{});
  for (std::uint64_t i = 0; i < ss.holds.size(); ++i) {
    HoldRec& h = ss.holds[i];
    h.live = in.boolean();
    h.gen = in.u32();
    h.user = in.u64();
    h.flight = in.u64();
    h.expiry_event = in.u64();
    h.expiry_at = in.i64();
    if (h.live) {
      const std::uint64_t packed = pack_expiry(k, i);
      engine.shard(k).queue().restore_entry(h.expiry_at, h.expiry_event,
                                            [wp, packed] { on_expiry(wp, packed); });
    }
  }
  ss.free_holds.assign(in.u64(), 0);
  for (std::uint32_t& idx : ss.free_holds) idx = in.u32();

  ss.pending_pays.clear();
  const std::uint64_t pending_pays = in.u64();
  for (std::uint64_t i = 0; i < pending_pays; ++i) {
    const std::uint64_t packed = in.u64();
    const std::uint64_t id = in.u64();
    const sim::SimTime at = in.i64();
    engine.shard(k).queue().restore_entry(at, id,
                                          [wp, packed] { on_pay_decision(wp, packed); });
    ss.pending_pays.emplace(packed, std::make_pair(id, at));
  }

  const std::uint64_t owned_users = in.u64();
  for (std::uint64_t i = 0; i < owned_users; ++i) {
    const std::uint64_t u = in.u64();
    if (u >= w.users.size()) return false;
    UserState& s = w.users[u];
    s.draws = in.u64();
    s.pending_event = in.u64();
    s.pending_at = in.i64();
    s.holds = in.u32();
    s.denials = in.u32();
    s.pays = in.u32();
    if (s.pending_event != 0) {
      engine.shard(k).queue().restore_entry(s.pending_at, s.pending_event,
                                            [wp, u] { on_activity(wp, u); });
    }
  }
  const std::uint64_t owned_flights = in.u64();
  for (std::uint64_t i = 0; i < owned_flights; ++i) {
    const std::uint64_t f = in.u64();
    if (f >= w.flights.size()) return false;
    w.flights[f].held = in.u32();
    w.flights[f].paid = in.u32();
  }

  ss.graph.restore(in);
  engine.shard(k).queue().set_next_id(in.u64());
  return in.ok();
}

// --- Artifacts ---------------------------------------------------------------

[[nodiscard]] std::uint64_t state_digest(const World& w, std::uint64_t sent,
                                         std::uint64_t delivered) {
  std::uint64_t d = util::fnv1a("scale.v1");
  for (const UserState& u : w.users) {
    d = util::hash_combine(d, u.draws);
    d = util::hash_combine(d, (static_cast<std::uint64_t>(u.holds) << 32) | u.denials);
    d = util::hash_combine(d, u.pays);
  }
  for (const FlightState& f : w.flights) {
    d = util::hash_combine(d, (static_cast<std::uint64_t>(f.held) << 32) | f.paid);
    d = util::hash_combine(d, f.fare);
  }
  d = util::hash_combine(d, sent);
  d = util::hash_combine(d, delivered);
  return d;
}

struct EngineTotals {
  std::uint64_t fired = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t barriers = 0;
  // Per shard, in shard order: fired / sent / delivered.
  std::vector<std::array<std::uint64_t, 3>> per_shard;
};

[[nodiscard]] ScaleArtifacts build_artifacts(const World& w, const EngineTotals& totals,
                                             const detect::graph::EntityGraph& merged,
                                             const invariant::InvariantRegistry& registry) {
  ScaleArtifacts art;
  ShardCounters sum;
  for (const auto& shard : w.shards) {
    const ShardCounters& c = shard->counters;
    sum.activities += c.activities;
    sum.holds += c.holds;
    sum.denials += c.denials;
    sum.pays += c.pays;
    sum.pay_late += c.pay_late;
    sum.expiries += c.expiries;
    sum.graph_events += c.graph_events;
  }
  art.events_fired = totals.fired;
  art.activities = sum.activities;
  art.holds = sum.holds;
  art.denials = sum.denials;
  art.pays = sum.pays;
  art.pay_late = sum.pay_late;
  art.expiries = sum.expiries;
  art.messages_sent = totals.sent;
  art.messages_delivered = totals.delivered;
  art.exchange_retries = totals.retries;
  art.barriers = totals.barriers;
  art.graph_events = sum.graph_events;
  art.state_digest = state_digest(w, totals.sent, totals.delivered);
  art.invariant_violations = registry.violations().size();
  // Rendered from the violation list, not render_report(): that report embeds
  // the lifetime check counter, which a resumed run (whose registry only saw
  // post-resume barriers) could not reproduce byte-for-byte.
  if (registry.clean()) {
    art.invariant_report = "all invariants held\n";
  } else {
    art.invariant_report = std::to_string(registry.violations().size()) +
                           " invariant violation(s):\n";
    for (const auto& v : registry.violations()) {
      art.invariant_report += "  " + v.render() + "\n";
    }
  }

  // Shards CSV: one row per shard. Serial runs emit their single row as
  // "shard 0" — byte-identical to the K=1 sharded run by construction.
  std::string csv = "shard,users,flights,fired,sent,delivered,holds,denials,pays,expiries\n";
  std::vector<std::uint64_t> users_on(w.shards.size(), 0);
  std::vector<std::uint64_t> flights_on(w.shards.size(), 0);
  for (std::uint64_t u = 0; u < w.cfg->users; ++u) ++users_on[w.transport->user_shard(u)];
  for (std::uint64_t f = 0; f < w.cfg->flights; ++f) ++flights_on[w.transport->flight_shard(f)];
  for (std::size_t k = 0; k < w.shards.size(); ++k) {
    const ShardCounters& c = w.shards[k]->counters;
    csv += std::to_string(k) + "," + std::to_string(users_on[k]) + "," +
           std::to_string(flights_on[k]) + "," + std::to_string(totals.per_shard[k][0]) + "," +
           std::to_string(totals.per_shard[k][1]) + "," +
           std::to_string(totals.per_shard[k][2]) + "," + std::to_string(c.holds) + "," +
           std::to_string(c.denials) + "," + std::to_string(c.pays) + "," +
           std::to_string(c.expiries) + "\n";
  }
  art.shards_csv = std::move(csv);

  // Graph CSV from the merged, canonically-partitioned graph.
  const detect::graph::GraphDetector detector(merged, {});
  std::string gcsv = "component,size,sessions,bookings,sharing,signal_mass,score,flagged\n";
  for (const auto& v : detector.scored_components(w.cfg->horizon)) {
    gcsv += std::to_string(v.summary.id) + "," + std::to_string(v.summary.size) + "," +
            std::to_string(v.summary.sessions) + "," + std::to_string(v.summary.bookings) +
            "," + util::format_fixed(v.sharing, 2) + "," +
            util::format_fixed(v.signal_mass, 4) + "," + util::format_fixed(v.score, 4) + "," +
            (v.flagged ? "1" : "0") + "\n";
  }
  art.graph_csv = std::move(gcsv);

  util::AsciiTable table({"metric", "value"});
  const auto row = [&table](const char* name, std::uint64_t v) {
    table.add_row({name, std::to_string(v)});
  };
  row("users", w.cfg->users);
  row("flights", w.cfg->flights);
  row("shards", w.shards.size());
  row("barriers", totals.barriers);
  row("events_fired", totals.fired);
  row("activities", sum.activities);
  row("holds", sum.holds);
  row("denials", sum.denials);
  row("pays", sum.pays);
  row("pay_late", sum.pay_late);
  row("expiries", sum.expiries);
  row("messages_sent", totals.sent);
  row("messages_delivered", totals.delivered);
  row("exchange_retries", totals.retries);
  row("graph_events", sum.graph_events);
  row("graph_nodes", merged.node_count());
  row("graph_edges", merged.edge_count());
  std::string report = table.render();
  report += "state_digest: " + std::to_string(art.state_digest) + "\n";
  report += art.invariant_report;
  art.report = std::move(report);
  return art;
}

}  // namespace

std::uint64_t ScaleConfig::digest() const {
  // Every field that changes behaviour — and NOT `threads`, which must not:
  // a digest mismatch across thread counts would be a determinism bug, not a
  // different configuration.
  std::uint64_t d = util::fnv1a("scale.config.v1");
  d = util::hash_combine(d, seed);
  d = util::hash_combine(d, users);
  d = util::hash_combine(d, flights);
  d = util::hash_combine(d, seats_per_flight);
  d = util::hash_combine(d, static_cast<std::uint64_t>(horizon));
  d = util::hash_combine(d, static_cast<std::uint64_t>(epoch));
  d = util::hash_combine(d, static_cast<std::uint64_t>(think_min));
  d = util::hash_combine(d, static_cast<std::uint64_t>(think_spread));
  d = util::hash_combine(d, static_cast<std::uint64_t>(hold_ttl));
  d = util::hash_combine(d, static_cast<std::uint64_t>(pay_delay));
  d = util::hash_combine(d, pay_percent);
  d = util::hash_combine(d, graph_sample);
  d = util::hash_combine(d, shards);
  return d;
}

ScaleArtifacts run_scale_serial(const ScaleConfig& cfg) {
  SerialTransport transport;
  World w;
  w.cfg = &cfg;
  w.transport = &transport;
  w.shards.push_back(std::make_unique<ShardState>(scale_graph_config(cfg)));
  init_static(w);
  init_schedule(w);

  invariant::InvariantRegistry registry;
  // The serial mirror registers the same invariant NAMES over its (vacuous)
  // message accounting, so its report is byte-identical to a clean K=1 run.
  registry.add("shard-conservation",
               [](sim::SimTime) -> std::optional<std::string> { return std::nullopt; });
  sim::Simulation& s = transport.sim_;
  registry.add("shard-clock-alignment",
               [&s](sim::SimTime now) -> std::optional<std::string> {
                 if (s.now() != now) {
                   return "shard 0 clock at " + std::to_string(s.now()) + ", barrier at " +
                          std::to_string(now);
                 }
                 return std::nullopt;
               });

  std::optional<detect::graph::EntityGraph> merged;
  merged.emplace(scale_graph_config(cfg));
  std::uint64_t barriers = 0;
  sim::SimTime t = 0;
  while (t < cfg.horizon) {
    const sim::SimTime barrier = std::min<sim::SimTime>(t + std::max<sim::SimDuration>(cfg.epoch, 1),
                                                        cfg.horizon);
    s.run_before(barrier);
    apply_graph_ops(w);
    rebuild_merged(merged, w, barrier);
    registry.check_all(barrier);
    t = barrier;
    ++barriers;
  }

  EngineTotals totals;
  totals.fired = s.fired_events();
  totals.barriers = barriers;
  totals.per_shard.push_back({s.fired_events(), 0, 0});
  return build_artifacts(w, totals, *merged, registry);
}

namespace {

// Shared core of run_scale_sharded / resume_scale_sharded.
ScaleArtifacts run_sharded_impl(const ScaleConfig& cfg, bool try_resume) {
  sim::ShardedSimulation::Config ecfg;
  ecfg.shards = std::max<std::uint32_t>(cfg.shards, 1);
  ecfg.epoch = std::max<sim::SimDuration>(cfg.epoch, 1);
  ecfg.threads = std::max(cfg.threads, 1u);
  ShardedTransport transport(ecfg);
  sim::ShardedSimulation& engine = transport.engine_;

  World w;
  w.cfg = &cfg;
  w.transport = &transport;
  for (std::uint32_t k = 0; k < engine.shards(); ++k) {
    w.shards.push_back(std::make_unique<ShardState>(scale_graph_config(cfg)));
  }
  init_static(w);

  World* wp = &w;
  engine.set_message_handler(
      [wp](std::uint32_t dst, const sim::ShardMessage& msg) { on_message(wp, dst, msg); });
  engine.set_exchange_guard([](sim::SimTime now) {
    return fault::FaultRegistry::global().point("shard.exchange").should_fail(now);
  });

  invariant::InvariantRegistry registry;
  invariant::register_shard_invariants(registry, engine);

  // Resume: newest barrier index whose checkpoint EVERY shard can prove
  // intact via its own manifest. Shard-local recovery — one shard's torn
  // write only rolls the fleet back to the last epoch all shards committed.
  std::uint64_t resumed_index = 0;
  bool resumed = false;
  if (try_resume && !cfg.out_dir.empty()) {
    std::set<std::uint64_t> common;
    bool first = true;
    for (std::uint32_t k = 0; k < engine.shards() && (first || !common.empty()); ++k) {
      const std::string dir = shard_dir(cfg, k);
      std::set<std::uint64_t> intact;
      if (auto manifest = recover::Manifest::load(dir + "/" + recover::kManifestFilename);
          manifest.has_value() && manifest.value().seed == cfg.seed &&
          manifest.value().config_digest == cfg.digest()) {
        const auto audit = recover::audit_artifacts(manifest.value(), dir);
        for (const std::string& rel : audit.intact) {
          std::uint64_t idx = 0;
          if (parse_checkpoint_name(rel, idx)) intact.insert(idx);
        }
      }
      if (first) {
        common = std::move(intact);
        first = false;
      } else {
        std::set<std::uint64_t> merged_set;
        std::set_intersection(common.begin(), common.end(), intact.begin(), intact.end(),
                              std::inserter(merged_set, merged_set.begin()));
        common = std::move(merged_set);
      }
    }
    if (!common.empty()) {
      const std::uint64_t idx = *common.rbegin();
      bool ok = true;
      for (std::uint32_t k = 0; k < engine.shards() && ok; ++k) {
        std::ifstream file(shard_dir(cfg, k) + "/" + checkpoint_name(idx), std::ios::binary);
        std::string blob((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
        ok = file.good() && restore_shard(w, engine, k, blob, idx);
      }
      if (ok) {
        resumed = true;
        resumed_index = idx;
      } else {
        // A blob failed to parse despite an intact manifest — start clean.
        for (std::uint32_t k = 0; k < engine.shards(); ++k) {
          w.shards[k] = std::make_unique<ShardState>(scale_graph_config(cfg));
        }
        init_static(w);
      }
    }
  }
  if (!resumed) init_schedule(w);

  std::optional<detect::graph::EntityGraph> merged;
  merged.emplace(scale_graph_config(cfg));
  std::uint64_t barrier_index = resumed ? resumed_index : 0;
  // Per-shard manifests accumulate every checkpoint this process writes.
  std::vector<recover::Manifest> manifests(engine.shards());
  for (auto& m : manifests) {
    m.seed = cfg.seed;
    m.config_digest = cfg.digest();
  }

  engine.add_barrier_hook([&](sim::SimTime barrier) {
    apply_graph_ops(w);
    rebuild_merged(merged, w, barrier);
    registry.check_all(barrier);
    ++barrier_index;
    if (cfg.checkpoint_every > 0 && !cfg.out_dir.empty() &&
        barrier_index % cfg.checkpoint_every == 0 && barrier < cfg.horizon) {
      for (std::uint32_t k = 0; k < engine.shards(); ++k) {
        const std::string dir = shard_dir(cfg, k);
        std::filesystem::create_directories(dir);
        const std::string rel = checkpoint_name(barrier_index);
        const std::string blob = checkpoint_shard(w, engine, k, barrier_index);
        if (auto written = recover::AtomicFile::write(dir + "/" + rel, blob, barrier);
            written.has_value()) {
          manifests[k].add(written.value(), rel);
          (void)manifests[k].write(dir, barrier);
        }
      }
    }
  });

  engine.run_until(cfg.horizon);

  EngineTotals totals;
  totals.fired = engine.fired_events();
  totals.sent = engine.messages_sent();
  totals.delivered = engine.messages_delivered();
  totals.retries = engine.exchange_retries();
  totals.barriers = barrier_index;
  for (std::uint32_t k = 0; k < engine.shards(); ++k) {
    totals.per_shard.push_back({engine.shard(k).fired_events(), 0, 0});
  }
  // Per-shard sent/delivered split is not exposed by the engine; the CSV
  // carries the global columns on shard rows via per-shard sent only when
  // K == 1 (where they equal the totals).
  if (engine.shards() == 1) {
    totals.per_shard[0][1] = totals.sent;
    totals.per_shard[0][2] = totals.delivered;
  }
  return build_artifacts(w, totals, *merged, registry);
}

}  // namespace

ScaleArtifacts run_scale_sharded(const ScaleConfig& cfg) {
  return run_sharded_impl(cfg, /*try_resume=*/false);
}

ScaleArtifacts resume_scale_sharded(const ScaleConfig& cfg) {
  return run_sharded_impl(cfg, /*try_resume=*/true);
}

}  // namespace fraudsim::scenario
