// Scenario environment: one-stop assembly of the full platform.
//
// Wires the simulation kernel, geo/IP plane, carrier network, application
// facade, rule engine, actor registry, proxy pools and legitimate traffic —
// everything a case-study scenario or an example program needs, seeded from a
// single integer.
#pragma once

#include <memory>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "core/mitigate/rules.hpp"
#include "fingerprint/population.hpp"
#include "net/proxy.hpp"
#include "sim/simulation.hpp"
#include "sms/carrier.hpp"
#include "workload/legit_traffic.hpp"

namespace fraudsim::scenario {

struct EnvConfig {
  std::uint64_t seed = 42;
  app::ApplicationConfig application;
  sms::CarrierPolicy carrier_policy;
  workload::LegitTrafficConfig legit;
  // Period of the availability-refresh sweep (expired holds release seats).
  sim::SimDuration expiry_sweep = sim::minutes(1);
};

class Env {
 public:
  explicit Env(EnvConfig config);

  // Adds `count` flights for `airline` departing at `departure` (numbered
  // sequentially). Returns the flight ids.
  std::vector<airline::FlightId> add_flights(const std::string& airline, int count, int capacity,
                                             sim::SimTime departure);

  // Number of flights needed so the configured booking demand cannot sell the
  // schedule out over `horizon` (airlines size capacity to demand; a schedule
  // that sells out mid-scenario would starve every later measurement).
  [[nodiscard]] static int fleet_size_for(double booking_sessions_per_hour,
                                          sim::SimDuration horizon, int capacity);

  // Starts legitimate traffic and the expiry sweep until `until`.
  void start_background(sim::SimTime until);

  // One expiry sweep, synchronously: releases expired holds (real + decoy)
  // and drains due SMS retries. The background sweep runs exactly this body;
  // the record/replay harness drives it directly so sweeps land as journal
  // records instead of unrecorded internal events.
  void apply_expiry_sweep();

  void run_until(sim::SimTime t) { sim.run_until(t); }

  sim::Simulation sim;
  net::GeoDb geo;
  sms::TariffTable tariffs;
  sms::CarrierNetwork carriers;
  app::ActorRegistry actors;
  fp::PopulationModel population;
  sim::Rng rng;
  app::Application app;
  mitigate::RuleEngine engine;
  net::ResidentialProxyPool residential;
  net::DatacenterProxyPool datacenter;
  std::unique_ptr<workload::LegitTraffic> legit;

 private:
  void schedule_expiry_sweep(sim::SimTime until);
  EnvConfig config_;
};

}  // namespace fraudsim::scenario
