#include "core/scenario/soc_report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "analytics/report.hpp"
#include "util/table.hpp"

namespace fraudsim::scenario {

std::string render_soc_report(const SocReportInputs& inputs) {
  std::ostringstream out;
  const auto& app = inputs.application;
  out << "==================== SOC WEEKLY REPORT ====================\n";
  out << "window: " << sim::format_time(inputs.from) << " .. " << sim::format_time(inputs.to)
      << "\n\n";

  // --- Traffic & business ----------------------------------------------------
  const auto requests = app.weblog().range(inputs.from, inputs.to);
  std::uint64_t blocked = 0;
  std::uint64_t challenged = 0;
  std::uint64_t limited = 0;
  std::uint64_t shed = 0;
  for (const auto& r : requests) {
    if (r.status_code == 403) ++blocked;
    if (r.status_code == 401) ++challenged;
    if (r.status_code == 429) ++limited;
    if (r.status_code == 503) ++shed;
  }
  std::uint64_t holds = 0;
  std::uint64_t ticketed = 0;
  for (const auto& r : app.inventory().reservations()) {
    if (r.created < inputs.from || r.created >= inputs.to) continue;
    ++holds;
    if (r.state == airline::ReservationState::Ticketed) ++ticketed;
  }
  util::Money sms_cost;
  std::uint64_t sms_count = 0;
  std::uint64_t sms_abuse = 0;
  for (const auto& r : app.sms_gateway().log()) {
    if (!r.delivered || r.time < inputs.from || r.time >= inputs.to) continue;
    ++sms_count;
    sms_cost += r.app_cost;
    if (inputs.actors.abuser(r.actor)) ++sms_abuse;
  }

  util::AsciiTable traffic({"Traffic & business", "count"});
  traffic.add_row({"HTTP requests", util::format_count(requests.size())});
  traffic.add_row({"sessions analysed", util::format_count(inputs.detection.sessions.size())});
  traffic.add_row({"holds created", util::format_count(holds)});
  traffic.add_row({"holds ticketed", util::format_count(ticketed)});
  traffic.add_row({"SMS delivered", util::format_count(sms_count)});
  traffic.add_row({"SMS spend", sms_cost.str()});
  traffic.add_row({"SMS to flagged abusers", util::format_count(sms_abuse)});
  out << traffic.render() << "\n";

  // --- Policy outcomes ----------------------------------------------------------
  util::AsciiTable policy({"Policy outcome", "count"});
  policy.add_row({"blocked (403)", util::format_count(blocked)});
  policy.add_row({"challenged (401)", util::format_count(challenged)});
  policy.add_row({"rate limited (429)", util::format_count(limited)});
  if (app.overload().enabled()) {
    policy.add_row({"shed (503)", util::format_count(shed)});
  }
  out << policy.render() << "\n";
  // Overload control section (renders empty with the subsystem disabled).
  out << analytics::render_overload_report(app.overload().snapshot(inputs.to));
  if (!app.rule_hits().empty()) {
    util::AsciiTable rules({"Rule", "hits"});
    std::map<std::string, std::uint64_t> ordered(app.rule_hits().begin(), app.rule_hits().end());
    for (const auto& [rule, hits] : ordered) {
      rules.add_row({rule, util::format_count(hits)});
    }
    out << rules.render() << "\n";
  }

  // --- Detection ------------------------------------------------------------------
  util::AsciiTable detect_table({"Detector", "alerts", "precision", "recall"});
  for (const auto& report : inputs.detection.reports) {
    detect_table.add_row({report.detector, util::format_count(report.alerts),
                          util::format_percent(report.score.confusion.precision(), 0),
                          util::format_percent(report.score.confusion.recall(), 0)});
  }
  out << detect_table.render() << "\n";
  if (!inputs.detection.skipped.empty()) {
    util::AsciiTable skipped({"Detector skipped", "reason"});
    for (const auto& s : inputs.detection.skipped) {
      skipped.add_row({s.family, s.reason});
    }
    out << skipped.render() << "\n";
  }

  // --- Top suspicious components --------------------------------------------------
  // Rendered only with the entity graph attached; ordered by amplification
  // score (desc), canonical id breaking ties, capped at 10 rows.
  if (inputs.graph != nullptr) {
    auto verdicts = inputs.graph->scored_components(inputs.to);
    std::stable_sort(verdicts.begin(), verdicts.end(),
                     [](const auto& a, const auto& b) { return a.score > b.score; });
    util::AsciiTable components(
        {"Component", "size", "sessions", "fps", "ips", "tokens", "score", "flagged"});
    std::size_t shown = 0;
    for (const auto& v : verdicts) {
      if (v.score <= 0.0 && !v.flagged) continue;
      if (shown++ >= 10) break;
      components.add_row({std::to_string(v.summary.id), util::format_count(v.summary.size),
                          util::format_count(v.summary.sessions),
                          util::format_count(v.summary.fingerprints),
                          util::format_count(v.summary.ips),
                          util::format_count(v.summary.tokens),
                          util::format_double(v.score, 1), v.flagged ? "RING" : ""});
    }
    out << "Top suspicious components (" << verdicts.size() << " total, "
        << inputs.graph->graph().node_count() << " nodes/"
        << inputs.graph->graph().edge_count() << " edges live):\n";
    out << components.render() << "\n";
  }

  // --- Platform metrics ----------------------------------------------------------
  // The registry is the platform's single source of truth: every subsystem
  // tally (app.*, overload.*, sms.*, otp.*, mitigate.*, detect.*) lands here.
  if (!app.metrics().empty()) {
    out << app.metrics().snapshot().render_table("Platform metrics") << "\n";
  }

  // --- Enforcement timeline ----------------------------------------------------------
  if (!inputs.actions.empty()) {
    out << "Enforcement actions (" << inputs.actions.size() << "):\n";
    std::size_t shown = 0;
    for (const auto& action : inputs.actions) {
      if (shown++ >= 15) {
        out << "  ... " << inputs.actions.size() - 15 << " more\n";
        break;
      }
      out << "  " << sim::format_time(action.time) << "  " << action.kind << "  "
          << action.detail << "\n";
    }
  }
  out << "============================================================\n";
  return out.str();
}

}  // namespace fraudsim::scenario
