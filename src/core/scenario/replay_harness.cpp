#include "core/scenario/replay_harness.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "app/export.hpp"
#include "core/detect/graph/graph_ingest.hpp"
#include "core/detect/pipeline.hpp"
#include "core/fault/crash.hpp"
#include "core/fault/fault.hpp"
#include "core/journal/recording.hpp"
#include "core/recover/manifest.hpp"
#include "core/scenario/soc_report.hpp"
#include "util/hash.hpp"

namespace fraudsim::scenario {

namespace {

// Everything one mode needs: the platform plus its mitigation controller,
// wired exactly the same way in record, replay and rescore.
struct Platform {
  std::unique_ptr<Env> env;
  std::unique_ptr<mitigate::MitigationController> controller;
  std::vector<airline::FlightId> flights;
  // Flash-crowd surge generators (live modes only; owned here so their
  // scheduled arrivals stay valid for the whole run).
  std::vector<std::unique_ptr<workload::LegitTraffic>> surges;
  // Entity graph + its admit-path tap (config.graph.enabled only). Attached
  // in EVERY mode — record, replay, rescore, baseline — so the graph grows
  // from the identical facade-event stream live and during a journal walk.
  std::unique_ptr<detect::graph::EntityGraph> graph;
  std::unique_ptr<detect::graph::GraphIngest> graph_ingest;
};

Platform build_platform(const RecordedScenarioConfig& config,
                        const RescoreCandidate* candidate = nullptr) {
  EnvConfig env_config;
  env_config.seed = config.seed;
  env_config.legit = config.legit;
  env_config.application.overload = config.overload;
  Platform p;
  p.env = std::make_unique<Env>(env_config);
  p.flights = p.env->add_flights("FS", config.flights, config.capacity, config.departure);
  for (const auto& spec : config.rate_limits) p.env->engine.add_rate_limit(spec);
  p.env->engine.set_challenge_mode(config.challenge_mode);
  mitigate::ControllerConfig controller_config = config.controller;
  if (candidate != nullptr && candidate->controller) controller_config = *candidate->controller;
  p.controller = std::make_unique<mitigate::MitigationController>(p.env->app, p.env->engine,
                                                                  controller_config);
  if (candidate != nullptr && candidate->configure_engine) {
    candidate->configure_engine(p.env->engine);
  }
  if (config.graph.enabled) {
    p.graph = std::make_unique<detect::graph::EntityGraph>(config.graph.graph);
    p.graph_ingest = std::make_unique<detect::graph::GraphIngest>(*p.graph);
    p.env->app.set_tap(p.graph_ingest.get());
  }
  return p;
}

// The scripted seat-spin attacker: waves of bulk holds that are never paid,
// starting on a naive instrumented browser (automation artifacts visible)
// and rotating to spoofed population look-alikes once blocked — the §IV-A
// adaptation loop, scripted so the whole run is journalable.
class SeatSpinScript {
 public:
  SeatSpinScript(Env& env, const RecordedScenarioConfig& config,
                 std::vector<airline::FlightId> flights)
      : env_(env),
        config_(config),
        flights_(std::move(flights)),
        rng_(env.rng.fork("seat-spin-script")),
        actor_(env.actors.register_actor(app::ActorKind::SeatSpinBot)) {
    rotate_identity();
  }

  void start() {
    env_.sim.schedule_at(config_.attacker_start, [this] { wave(); });
  }

 private:
  void wave() {
    for (int i = 0; i < config_.attacker_holds_per_wave; ++i) {
      const auto flight =
          flights_[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(flights_.size()) - 1))];
      const app::ClientContext ctx = context();
      (void)env_.app.browse(ctx, web::Endpoint::SearchFlights);
      (void)env_.app.quote_fare(ctx, flight);
      const auto result = env_.app.hold(ctx, flight, make_party());
      if (result.status == app::CallStatus::Blocked ||
          result.status == app::CallStatus::RateLimited) {
        rotate_identity();
      }
    }
    if (env_.sim.now() + config_.attacker_period < config_.horizon) {
      env_.sim.schedule_in(config_.attacker_period, [this] { wave(); });
    }
  }

  [[nodiscard]] app::ClientContext context() const {
    app::ClientContext ctx;
    ctx.ip = ip_;
    ctx.session = session_;
    ctx.fingerprint = fingerprint_;
    ctx.actor = actor_;
    return ctx;
  }

  void rotate_identity() {
    fingerprint_ = rotations_ == 0 ? env_.population.sample_naive_bot(rng_)
                                   : env_.population.sample_spoofed(rng_, fp::SpoofOptions{});
    ip_ = net::IpV4{static_cast<std::uint32_t>(0x2D000000u) +
                    static_cast<std::uint32_t>(rng_.uniform_int(0, 0xFFFF))};
    // High session band: never collides with the legit generator's ids.
    session_ = web::SessionId{0x0100'0000'0000'0000ull + ++rotations_};
  }

  [[nodiscard]] std::vector<airline::Passenger> make_party() {
    std::vector<airline::Passenger> party;
    party.reserve(static_cast<std::size_t>(config_.attacker_party));
    for (int i = 0; i < config_.attacker_party; ++i) {
      airline::Passenger p;
      p.first_name = rng_.random_lowercase(6);
      p.surname = rng_.random_lowercase(8);
      p.birthdate = airline::Date{1970 + static_cast<int>(rng_.uniform_int(0, 35)),
                                  1 + static_cast<int>(rng_.uniform_int(0, 11)),
                                  1 + static_cast<int>(rng_.uniform_int(0, 27))};
      p.email = p.first_name + "@spin.example";
      party.push_back(std::move(p));
    }
    return party;
  }

  Env& env_;
  const RecordedScenarioConfig& config_;
  std::vector<airline::FlightId> flights_;
  sim::Rng rng_;
  web::ActorId actor_;
  fp::Fingerprint fingerprint_;
  net::IpV4 ip_;
  web::SessionId session_;
  std::uint64_t rotations_ = 0;
};

void schedule_expiry_loop(Env& env, const RecordedScenarioConfig& config,
                          journal::RecordingJournal* recording, sim::SimDuration period) {
  if (env.sim.now() + period > config.horizon) return;
  env.sim.schedule_in(period, [&env, &config, recording, period] {
    if (recording != nullptr) recording->expiry_sweep(env.sim.now());
    env.apply_expiry_sweep();
    schedule_expiry_loop(env, config, recording, period);
  });
}

void run_recorded_sweep(Env& env, mitigate::MitigationController& controller,
                        journal::RecordingJournal* recording) {
  if (recording != nullptr) recording->mitigation_sweep(env.sim.now());
  const std::size_t before = controller.actions().size();
  controller.sweep();
  if (recording != nullptr) {
    for (std::size_t i = before; i < controller.actions().size(); ++i) {
      const auto& action = controller.actions()[i];
      recording->mitigation_action(action.time, action.kind, action.detail);
    }
  }
}

void schedule_sweep_loop(Env& env, mitigate::MitigationController& controller,
                         const RecordedScenarioConfig& config,
                         journal::RecordingJournal* recording) {
  if (env.sim.now() + config.controller.sweep_interval > config.horizon) return;
  env.sim.schedule_in(config.controller.sweep_interval,
                      [&env, &controller, &config, recording] {
                        run_recorded_sweep(env, controller, recording);
                        schedule_sweep_loop(env, controller, config, recording);
                      });
}

void schedule_mitigation(Env& env, mitigate::MitigationController& controller,
                         const RecordedScenarioConfig& config,
                         journal::RecordingJournal* recording) {
  env.sim.schedule_at(config.controller_fit_at, [&env, &controller, &config, recording] {
    const sim::SimTime now = env.sim.now();
    if (recording != nullptr) recording->controller_fit(now, 0, now);
    controller.fit_nip_baseline(0, now);
    schedule_sweep_loop(env, controller, config, recording);
  });
}

// Full platform state, in a fixed order shared with replay's restore path.
// The fault registry rides along so armed chaos schedules (and their EveryNth
// / OnNth / Burst cursors) survive a checkpoint-anchored restore exactly like
// every other piece of platform state.
std::string checkpoint_state(Platform& p) {
  util::ByteWriter state;
  Env& env = *p.env;
  env.actors.checkpoint(state);
  env.app.checkpoint(state);
  env.engine.checkpoint(state);
  p.controller->checkpoint(state);
  fault::FaultRegistry::global().checkpoint(state);
  // Graph state rides last, and ONLY when the subsystem is enabled: the
  // default-off blob layout stays byte-identical to pre-graph journals.
  if (p.graph != nullptr) p.graph->checkpoint(state);
  return state.take();
}

// `on_checkpoint` (optional) runs after the blob is journalled — the hook
// record_run_dir uses to duplicate each checkpoint as an atomic sidecar.
void schedule_checkpoint_loop(Platform& p, const RecordedScenarioConfig& config,
                              journal::RecordingJournal& recording,
                              const std::function<void(sim::SimTime, const std::string&)>&
                                  on_checkpoint = nullptr) {
  Env& env = *p.env;
  if (config.checkpoint_every <= 0) return;
  if (env.sim.now() + config.checkpoint_every > config.horizon) return;
  env.sim.schedule_in(config.checkpoint_every,
                      [&p, &env, &config, &recording, on_checkpoint] {
                        const std::string blob = checkpoint_state(p);
                        recording.checkpoint_blob(env.sim.now(), blob);
                        if (on_checkpoint) on_checkpoint(env.sim.now(), blob);
                        schedule_checkpoint_loop(p, config, recording, on_checkpoint);
                      });
}

// Artifact production must be one code path for every mode: record and
// replay call exactly this, so "byte-identical artifacts" compares the runs,
// not the exporters.
RunArtifacts make_artifacts(Platform& p, const RecordedScenarioConfig& config) {
  RunArtifacts artifacts;
  artifacts.metrics = p.env->app.metrics().snapshot();
  std::ostringstream metrics;
  artifacts.metrics.write_csv(metrics);
  artifacts.metrics_csv = metrics.str();

  // Graph-off artifacts must stay byte-identical to a build without the
  // subsystem: no component column, no SOC section, default pipeline.
  std::ostringstream weblog;
  if (p.graph != nullptr) {
    const detect::graph::EntityGraph& graph = *p.graph;
    (void)app::export_weblog_csv(weblog, p.env->app.weblog().all(),
                                 [&graph](const web::HttpRequest& r) -> std::uint64_t {
                                   const auto id = graph.find(
                                       detect::graph::NodeType::Session, r.session.str());
                                   return id == 0 ? 0 : graph.component_of(id);
                                 });
  } else {
    (void)app::export_weblog_csv(weblog, p.env->app.weblog().all());
  }
  artifacts.weblog_csv = weblog.str();

  detect::PipelineConfig pipeline_config;  // defaults, untrained: deterministic
  pipeline_config.graph = config.graph.detector;
  detect::DetectionPipeline pipeline(pipeline_config);
  std::unique_ptr<detect::graph::GraphDetector> graph_view;
  if (p.graph != nullptr) {
    pipeline.enable_graph(*p.graph);
    // A second instance over the same graph + config scores components
    // identically to the pipeline's own detector; the report only reads it.
    graph_view = std::make_unique<detect::graph::GraphDetector>(*p.graph,
                                                                config.graph.detector);
  }
  const auto detection = pipeline.run(p.env->app, p.env->actors, 0, config.horizon);
  artifacts.soc_report = render_soc_report(SocReportInputs{
      p.env->app, p.env->actors, detection, 0, config.horizon, p.controller->actions(),
      graph_view.get()});
  return artifacts;
}

// Live runs own invariant binding: the registry is reset and the standard
// platform conditions are registered against THIS run's application, so a
// recovery re-record (second live run on one registry) never double-counts or
// dangles into the previous platform instance.
void begin_live_invariants(Platform& p, const RecordedScenarioConfig& config) {
  if (config.invariants == nullptr) return;
  config.invariants->reset();
  invariant::register_platform_invariants(*config.invariants, p.env->app, &p.env->engine);
  if (p.graph != nullptr) {
    // The tap is attached before any traffic starts, so full event
    // reconciliation against the application's request counter applies.
    invariant::register_graph_invariants(*config.invariants, *p.graph, &p.env->app);
  }
}

// Epoch barriers: at a fixed cadence the (optional) test hook runs, then every
// registered invariant is evaluated. Checks are pure observers, so the extra
// events never change the run they are judging.
void schedule_barrier_loop(Env& env, const RecordedScenarioConfig& config) {
  if (config.invariants == nullptr || config.invariant_barrier_every <= 0) return;
  if (env.sim.now() + config.invariant_barrier_every > config.horizon) return;
  env.sim.schedule_in(config.invariant_barrier_every, [&env, &config] {
    if (config.barrier_hook) config.barrier_hook(env.app, env.sim.now());
    (void)config.invariants->check_all(env.sim.now());
    schedule_barrier_loop(env, config);
  });
}

// End-of-run barrier + violation export into the artifacts. Runs after
// make_artifacts so a hook-corrupted final state never shifts the exported
// metrics — only the verdict.
void finish_live_invariants(Platform& p, const RecordedScenarioConfig& config,
                            RunArtifacts& artifacts) {
  if (config.invariants == nullptr) return;
  if (config.barrier_hook) config.barrier_hook(p.env->app, config.horizon);
  (void)config.invariants->check_all(config.horizon);
  artifacts.violations = config.invariants->violations();
  artifacts.invariant_checks = config.invariants->checks_run();
}

void start_traffic(Platform& p, const RecordedScenarioConfig& config,
                   std::unique_ptr<SeatSpinScript>& attacker,
                   journal::RecordingJournal* recording) {
  Env& env = *p.env;
  schedule_expiry_loop(env, config, recording, sim::minutes(1));
  if (config.mitigation_enabled) {
    schedule_mitigation(env, *p.controller, config, recording);
  }
  if (config.legit_enabled) env.legit->start(config.horizon);
  if (config.attacker_enabled) {
    attacker = std::make_unique<SeatSpinScript>(env, config, p.flights);
    attacker->start();
  }
  // Flash-crowd phases: extra legit generators scaled from the baseline
  // demand, each on its own forked stream (forking consumes no parent-stream
  // state, so configs without phases stay byte-identical).
  for (std::size_t i = 0; i < config.traffic_phases.size(); ++i) {
    const auto& phase = config.traffic_phases[i];
    if (phase.from >= config.horizon || phase.to <= phase.from) continue;
    workload::LegitTrafficConfig surge_config = config.legit;
    surge_config.booking_sessions_per_hour *= phase.intensity;
    surge_config.browse_sessions_per_hour *= phase.intensity;
    surge_config.otp_logins_per_hour *= phase.intensity;
    auto surge = std::make_unique<workload::LegitTraffic>(
        env.app, env.geo, env.actors, surge_config,
        env.rng.fork("chaos-crowd-" + std::to_string(i)));
    workload::LegitTraffic* raw = surge.get();
    const sim::SimTime until = phase.to < config.horizon ? phase.to : config.horizon;
    env.sim.schedule_at(phase.from, [raw, until] { raw->start(until); });
    p.surges.push_back(std::move(surge));
  }
  schedule_barrier_loop(env, config);
}

[[nodiscard]] bool denied(app::CallStatus status) {
  return status == app::CallStatus::Blocked || status == app::CallStatus::Challenged ||
         status == app::CallStatus::RateLimited || status == app::CallStatus::Overloaded;
}

// Replays one record against the live platform, verifying the outcome. The
// caller has already advanced sim time to record.time. Shared by replay_run
// and the salvaged-prefix verification pass in recover_run so both modes
// apply exactly the same semantics per record kind.
util::Status replay_record(Platform& p, const journal::Record& record, std::size_t index) {
  Env& env = *p.env;
  util::ByteReader in(record.fields);
  const auto mismatch = [&](const std::string& what) {
    return util::Status::fail(util::ErrorCode::kCheckpointMismatch,
                              "replay diverged at record " + std::to_string(index) + " (" +
                                  journal::to_string(record.kind) + ", t=" +
                                  std::to_string(record.time) + "): " + what);
  };
  switch (record.kind) {
    case journal::RecordKind::ActorRegistered: {
      const auto r = journal::decode_actor(in);
      if (const auto id = env.actors.register_actor(r.kind); id != r.id) {
        return mismatch("actor id " + id.str() + " != recorded " + r.id.str());
      }
      break;
    }
    case journal::RecordKind::Browse: {
      const auto r = journal::decode_browse(in);
      if (env.app.browse(r.ctx, r.endpoint, r.method) != r.result) {
        return mismatch("browse status differs");
      }
      break;
    }
    case journal::RecordKind::Hold: {
      auto r = journal::decode_hold(in);
      const auto result = env.app.hold(r.ctx, r.flight, std::move(r.passengers));
      if (result.status != r.status || result.pnr != r.pnr || result.decoy != r.decoy) {
        return mismatch("hold outcome differs (pnr " + result.pnr + " vs " + r.pnr + ")");
      }
      break;
    }
    case journal::RecordKind::QuoteFare: {
      const auto r = journal::decode_quote_fare(in);
      if (env.app.quote_fare(r.ctx, r.flight) != r.fare) {
        return mismatch("fare quote differs");
      }
      break;
    }
    case journal::RecordKind::Pay: {
      const auto r = journal::decode_pay(in);
      if (env.app.pay(r.ctx, r.pnr) != r.result) return mismatch("pay status differs");
      break;
    }
    case journal::RecordKind::RequestOtp: {
      const auto r = journal::decode_request_otp(in);
      const auto result = env.app.request_otp(r.ctx, r.account, r.number);
      if (result.status != r.status || result.code != r.code) {
        return mismatch("otp request differs");
      }
      break;
    }
    case journal::RecordKind::VerifyOtp: {
      const auto r = journal::decode_verify_otp(in);
      if (env.app.verify_otp(r.ctx, r.account, r.code) != r.result) {
        return mismatch("otp verify differs");
      }
      break;
    }
    case journal::RecordKind::RetrieveBooking: {
      const auto r = journal::decode_retrieve_booking(in);
      const auto view = env.app.retrieve_booking(r.ctx, r.pnr);
      if (view.found != r.result.found || view.held != r.result.held ||
          view.ticketed != r.result.ticketed) {
        return mismatch("booking view differs");
      }
      break;
    }
    case journal::RecordKind::BoardingSms: {
      const auto r = journal::decode_boarding_sms(in);
      const auto result = env.app.request_boarding_sms(r.ctx, r.pnr, r.number);
      if (result.status != r.status || result.detail != r.detail) {
        return mismatch("boarding sms differs");
      }
      break;
    }
    case journal::RecordKind::BoardingEmail: {
      const auto r = journal::decode_boarding_email(in);
      if (env.app.request_boarding_email(r.ctx, r.pnr) != r.result) {
        return mismatch("boarding email differs");
      }
      break;
    }
    case journal::RecordKind::ExpirySweep:
      env.apply_expiry_sweep();
      break;
    case journal::RecordKind::MitigationSweep:
      run_recorded_sweep(env, *p.controller, nullptr);
      break;
    case journal::RecordKind::ControllerFit: {
      const auto r = journal::decode_controller_fit(in);
      p.controller->fit_nip_baseline(r.from, r.to);
      break;
    }
    case journal::RecordKind::MitigationAction:  // informational ledger copy
    case journal::RecordKind::Checkpoint:        // restore point, not an event
    case journal::RecordKind::Header:
      break;
  }
  if (!in.ok()) {
    return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                              "replay: undecodable payload in record " + std::to_string(index));
  }
  return util::Status::ok();
}

}  // namespace

std::uint64_t config_digest(const RecordedScenarioConfig& config) {
  util::ByteWriter w;
  w.u64(config.seed);
  w.i64(config.horizon);
  w.i64(static_cast<std::int64_t>(config.flights));
  w.i64(static_cast<std::int64_t>(config.capacity));
  w.i64(config.departure);
  w.boolean(config.legit_enabled);
  w.f64(config.legit.booking_sessions_per_hour);
  w.f64(config.legit.browse_sessions_per_hour);
  w.f64(config.legit.otp_logins_per_hour);
  w.f64(config.legit.p_convert);
  w.i64(config.legit.mean_pay_delay);
  w.f64(config.legit.p_boarding_sms);
  w.f64(config.legit.p_boarding_email);
  w.f64(config.legit.p_solve_captcha);
  w.f64(config.legit.diurnal_amplitude);
  w.boolean(config.attacker_enabled);
  w.i64(config.attacker_start);
  w.i64(config.attacker_period);
  w.i64(static_cast<std::int64_t>(config.attacker_party));
  w.i64(static_cast<std::int64_t>(config.attacker_holds_per_wave));
  w.boolean(config.mitigation_enabled);
  w.i64(config.controller_fit_at);
  w.i64(config.controller.sweep_interval);
  w.i64(config.controller.analysis_window);
  w.boolean(config.controller.block_flagged_fingerprints);
  w.boolean(config.controller.block_artifact_fingerprints);
  w.u64(config.controller.min_flagged_pnrs);
  w.boolean(config.controller.impose_nip_cap);
  w.i64(static_cast<std::int64_t>(config.controller.nip_cap_value));
  w.boolean(config.controller.disable_sms_on_path_trip);
  w.boolean(config.controller.block_biometric_flagged);
  w.u64(config.controller.min_biometric_hits);
  w.u8(static_cast<std::uint8_t>(config.challenge_mode));
  w.u64(config.rate_limits.size());
  for (const auto& spec : config.rate_limits) {
    w.str(spec.name);
    w.boolean(spec.endpoint.has_value());
    if (spec.endpoint) w.u8(static_cast<std::uint8_t>(*spec.endpoint));
    w.u8(static_cast<std::uint8_t>(spec.key));
    w.u64(spec.limit);
    w.i64(spec.window);
  }
  w.i64(config.checkpoint_every);
  // Overload posture is appended ONLY when enabled: the default-off shape
  // keeps the digest every pre-overload journal was recorded under.
  if (config.overload.enabled) {
    const auto& o = config.overload;
    w.boolean(o.enabled);
    w.i64(static_cast<std::int64_t>(o.servers));
    w.i64(o.cost_browse);
    w.i64(o.cost_transactional);
    w.boolean(o.shedding_enabled);
    w.i64(o.max_wait_priority);
    w.i64(o.max_wait_anonymous);
    w.boolean(o.priority_scheduling);
    w.i64(o.deadline_browse);
    w.i64(o.deadline_transactional);
    w.boolean(o.brownout.enabled);
    w.f64(o.brownout.alpha);
    w.i64(o.brownout.elevated_wait);
    w.i64(o.brownout.brownout_wait);
    w.i64(o.brownout.shed_wait);
    w.i64(o.brownout.elevated_latency);
    w.i64(o.brownout.brownout_latency);
    w.i64(o.brownout.shed_latency);
    w.f64(o.brownout.exit_fraction);
    w.i64(o.brownout.min_dwell);
    for (std::size_t i = 0; i < overload::kBrownoutStates; ++i) {
      w.f64(o.brownout.rate_limit_scale[i]);
      w.i64(static_cast<std::int64_t>(o.brownout.detector_stride[i]));
      w.i64(static_cast<std::int64_t>(o.brownout.nip_cap[i]));
      w.f64(o.brownout.anonymous_watermark_scale[i]);
      w.f64(o.brownout.hold_ttl_scale[i]);
    }
  }
  // Entity-graph posture: same convention as overload — appended only when
  // enabled, so every pre-graph journal keeps its digest.
  if (config.graph.enabled) {
    const auto& g = config.graph;
    w.boolean(g.enabled);
    w.u64(g.graph.max_nodes);
    w.u64(g.graph.max_edges);
    w.u64(g.graph.component_cap);
    w.i64(g.graph.node_ttl);
    w.i64(g.graph.edge_ttl);
    w.i64(g.graph.maintenance_every);
    w.i64(g.graph.signal_half_life);
    w.u64(g.detector.min_sessions);
    w.f64(g.detector.min_sharing);
    w.f64(g.detector.signal_threshold);
    w.f64(g.detector.weight_requests);
    w.f64(g.detector.weight_holds);
    w.f64(g.detector.weight_sms);
    w.f64(g.detector.weight_pays);
  }
  return util::crc32(w.bytes());
}

RunArtifacts baseline_run(const RecordedScenarioConfig& config) {
  Platform p = build_platform(config);
  begin_live_invariants(p, config);
  std::unique_ptr<SeatSpinScript> attacker;
  start_traffic(p, config, attacker, nullptr);
  p.env->run_until(config.horizon);
  RunArtifacts artifacts = make_artifacts(p, config);
  finish_live_invariants(p, config, artifacts);
  return artifacts;
}

util::Result<RunArtifacts> record_run(const RecordedScenarioConfig& config,
                                      const std::string& journal_path) {
  using R = util::Result<RunArtifacts>;
  Platform p = build_platform(config);
  begin_live_invariants(p, config);
  Env& env = *p.env;

  journal::JournalWriter writer;
  if (auto s = writer.open(journal_path, config.seed, config_digest(config)); !s.is_ok()) {
    return R::fail(s.code(), s.error());
  }
  journal::RecordingJournal recording(writer);
  env.app.set_journal(&recording);
  env.actors.set_observer([&env, &recording](web::ActorId id, app::ActorKind kind) {
    recording.actor_registered(env.sim.now(), id, kind);
  });

  std::unique_ptr<SeatSpinScript> attacker;
  start_traffic(p, config, attacker, &recording);
  schedule_checkpoint_loop(p, config, recording);
  env.run_until(config.horizon);

  env.app.set_journal(nullptr);
  env.actors.set_observer(nullptr);
  if (!recording.status().is_ok()) {
    return R::fail(recording.status().code(), recording.status().error());
  }
  if (auto s = writer.close(); !s.is_ok()) return R::fail(s.code(), s.error());
  RunArtifacts artifacts = make_artifacts(p, config);
  finish_live_invariants(p, config, artifacts);
  return R::ok(std::move(artifacts));
}

util::Result<RunArtifacts> record_run_dir(const RecordedScenarioConfig& config,
                                          const std::string& run_dir) {
  using R = util::Result<RunArtifacts>;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(run_dir) / recover::kCheckpointDir, ec);
  if (ec) {
    return R::fail(util::ErrorCode::kIoWriteFailed,
                   "record: cannot create run directory " + run_dir + ": " + ec.message());
  }
  const std::string journal_path = (fs::path(run_dir) / recover::kJournalFilename).string();
  const std::uint64_t digest = config_digest(config);

  try {
    Platform p = build_platform(config);
    begin_live_invariants(p, config);
    Env& env = *p.env;

    journal::JournalWriter writer;
    if (auto s = writer.open(journal_path, config.seed, digest); !s.is_ok()) {
      return R::fail(s.code(), s.error());
    }
    journal::RecordingJournal recording(writer);
    env.app.set_journal(&recording);
    env.actors.set_observer([&env, &recording](web::ActorId id, app::ActorKind kind) {
      recording.actor_registered(env.sim.now(), id, kind);
    });

    // Each journalled checkpoint is duplicated as an atomic sidecar so
    // recovery can anchor on it even when the crash tore the journal frame
    // that embedded the very same blob.
    std::vector<std::pair<std::string, recover::WrittenArtifact>> sidecars;
    util::Status sidecar_status = util::Status::ok();
    const auto write_sidecar = [&run_dir, &config, digest, &sidecars,
                                &sidecar_status](sim::SimTime now, const std::string& blob) {
      recover::SidecarCheckpoint cp;
      cp.seed = config.seed;
      cp.config_digest = digest;
      cp.time = now;
      cp.blob = blob;
      const std::string path = recover::checkpoint_sidecar_path(run_dir, now);
      auto written = recover::write_checkpoint_sidecar(path, cp);
      if (!written) {
        if (sidecar_status.is_ok()) {
          sidecar_status = util::Status::fail(written.code(), written.error());
        }
        return;
      }
      const std::string rel = std::string(recover::kCheckpointDir) + "/" +
                              fs::path(path).filename().string();
      sidecars.emplace_back(rel, written.value());
    };

    std::unique_ptr<SeatSpinScript> attacker;
    start_traffic(p, config, attacker, &recording);
    schedule_checkpoint_loop(p, config, recording, write_sidecar);
    env.run_until(config.horizon);

    env.app.set_journal(nullptr);
    env.actors.set_observer(nullptr);
    if (!recording.status().is_ok()) {
      return R::fail(recording.status().code(), recording.status().error());
    }
    if (auto s = writer.close(); !s.is_ok()) return R::fail(s.code(), s.error());
    if (!sidecar_status.is_ok()) return R::fail(sidecar_status.code(), sidecar_status.error());

    RunArtifacts artifacts = make_artifacts(p, config);
    finish_live_invariants(p, config, artifacts);

    // Manifest entries in layout order: journal, sidecars, then artifacts.
    recover::Manifest manifest;
    manifest.seed = config.seed;
    manifest.config_digest = digest;
    {
      std::ifstream in(journal_path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string journal_bytes = buf.str();
      if (!in.good() && !in.eof()) {
        return R::fail(util::ErrorCode::kIoWriteFailed, "record: cannot re-read the journal");
      }
      manifest.add(recover::kJournalFilename, journal_bytes.size(),
                   util::crc32(journal_bytes));
    }
    for (const auto& [rel, written] : sidecars) manifest.add(written, rel);

    const auto emit = [&](const char* rel, const std::string& content) -> util::Status {
      auto written = recover::AtomicFile::write((fs::path(run_dir) / rel).string(), content,
                                                config.horizon);
      if (!written) return util::Status::fail(written.code(), written.error());
      manifest.add(written.value(), rel);
      return util::Status::ok();
    };
    if (auto s = emit("metrics.csv", artifacts.metrics_csv); !s.is_ok()) {
      return R::fail(s.code(), s.error());
    }
    if (auto s = emit("weblog.csv", artifacts.weblog_csv); !s.is_ok()) {
      return R::fail(s.code(), s.error());
    }
    if (auto s = emit("soc_report.txt", artifacts.soc_report); !s.is_ok()) {
      return R::fail(s.code(), s.error());
    }

    // The commit point: only now does the directory count as a complete run.
    if (auto s = manifest.write(run_dir, config.horizon); !s.is_ok()) {
      return R::fail(s.code(), s.error());
    }
    return R::ok(std::move(artifacts));
  } catch (const fault::SimCrash& crash) {
    // The simulated kill: whatever reached disk stays exactly as a real
    // process death would leave it; the caller recovers via recover_run.
    return R::fail(util::ErrorCode::kCrashInjected, crash.what());
  }
}

util::Result<RecoverOutcome> recover_run(const RecordedScenarioConfig& config,
                                         const std::string& run_dir) {
  using R = util::Result<RecoverOutcome>;
  namespace fs = std::filesystem;

  recover::RecoveryManager manager(run_dir);
  auto repaired = manager.repair();
  if (!repaired) return R::fail(repaired.code(), repaired.error());

  // Snapshot the caller's fault posture. Verification replays below restore
  // the registry from mid-run checkpoint blobs (so the salvaged suffix
  // re-fires its faults exactly), which would otherwise leave the re-record
  // starting from mid-run cursors instead of the posture the original run
  // started under — and the salvaged-prefix comparison would fail for any
  // schedule with error faults.
  util::ByteWriter fault_snapshot_writer;
  fault::FaultRegistry::global().checkpoint(fault_snapshot_writer);
  const std::string fault_snapshot = fault_snapshot_writer.take();
  const auto restore_fault_posture = [&fault_snapshot] {
    util::ByteReader in(fault_snapshot);
    fault::FaultRegistry::global().restore(in);
  };

  RecoverOutcome outcome;
  outcome.report = repaired.value();
  const std::string journal_path = (fs::path(run_dir) / recover::kJournalFilename).string();
  const std::uint64_t digest = config_digest(config);

  if (outcome.report.run_complete) {
    // Nothing to repair — but "complete" is only trusted after the journal
    // replays clean, which also regenerates the in-memory artifacts.
    auto replayed = replay_run(config, journal_path);
    restore_fault_posture();
    if (!replayed) return R::fail(replayed.code(), replayed.error());
    outcome.artifacts = replayed.value();
    outcome.reused_complete_run = true;
    return R::ok(std::move(outcome));
  }

  // Salvage verification: prove the surviving prefix is a faithful record of
  // this scenario before re-recording over it.
  std::string salvaged_bytes;
  if (outcome.report.journal_salvaged && outcome.report.frames_salvaged > 0) {
    std::ifstream in(journal_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    salvaged_bytes = buf.str();

    journal::JournalReader reader;
    if (auto s = reader.open(journal_path); !s.is_ok()) {
      return R::fail(s.code(), "recover: repaired journal failed to open: " + s.error());
    }
    if (reader.seed() != config.seed || reader.config_digest() != digest) {
      return R::fail(util::ErrorCode::kManifestMismatch,
                     "recover: journal belongs to a different scenario config");
    }
    // Checkpoint-anchored verification replay of the salvaged records.
    auto verified = replay_run(config, journal_path, {/*from_last_checkpoint=*/true});
    if (!verified) {
      return R::fail(verified.code(),
                     "recover: salvaged journal failed verification replay: " + verified.error());
    }
    // Cross-check the newest intact sidecar against its embedded twin (when
    // the twin's frame survived): both copies of a checkpoint must agree.
    if (!outcome.report.checkpoint_used.empty()) {
      auto cp = recover::read_checkpoint_sidecar(
          (fs::path(run_dir) / outcome.report.checkpoint_used).string());
      if (cp) {
        if (cp.value().seed != config.seed || cp.value().config_digest != digest) {
          return R::fail(util::ErrorCode::kManifestMismatch,
                         "recover: sidecar checkpoint belongs to a different scenario");
        }
        for (const auto& record : reader.records()) {
          if (record.kind != journal::RecordKind::Checkpoint ||
              record.time != cp.value().time) {
            continue;
          }
          util::ByteReader fields(record.fields);
          if (fields.str() != cp.value().blob) {
            return R::fail(util::ErrorCode::kCheckpointMismatch,
                           "recover: sidecar and embedded checkpoint blobs differ at t=" +
                               std::to_string(record.time));
          }
        }
      }
    }
  }

  // Deterministic re-record: same config + seed + fault posture reproduces
  // the interrupted run byte-for-byte, which the salvaged prefix then proves.
  restore_fault_posture();
  auto rerecorded = record_run_dir(config, run_dir);
  if (!rerecorded) return R::fail(rerecorded.code(), rerecorded.error());
  outcome.artifacts = rerecorded.value();

  if (!salvaged_bytes.empty()) {
    std::ifstream in(journal_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string fresh = buf.str();
    if (fresh.size() < salvaged_bytes.size() ||
        fresh.compare(0, salvaged_bytes.size(), salvaged_bytes) != 0) {
      return R::fail(util::ErrorCode::kCheckpointMismatch,
                     "recover: salvaged journal prefix diverges from the deterministic "
                     "re-record");
    }
    outcome.prefix_verified = true;
  }
  return R::ok(std::move(outcome));
}

util::Result<RunArtifacts> replay_run(const RecordedScenarioConfig& config,
                                      const std::string& journal_path, ReplayOptions options) {
  using R = util::Result<RunArtifacts>;
  journal::JournalReader reader;
  if (auto s = reader.open(journal_path); !s.is_ok()) return R::fail(s.code(), s.error());
  if (reader.seed() != config.seed || reader.config_digest() != config_digest(config)) {
    return R::fail(util::ErrorCode::kCheckpointMismatch,
                   "replay: journal header does not match this scenario config");
  }

  Platform p = build_platform(config);
  Env& env = *p.env;
  const auto& records = reader.records();

  std::size_t start = 0;
  if (options.from_last_checkpoint) {
    for (std::size_t i = records.size(); i-- > 0;) {
      if (records[i].kind != journal::RecordKind::Checkpoint) continue;
      env.sim.run_until(records[i].time);
      util::ByteReader fields(records[i].fields);
      const std::string blob = fields.str();
      util::ByteReader state(blob);
      env.actors.restore(state);
      env.app.restore(state);
      env.engine.restore(state);
      p.controller->restore(state);
      fault::FaultRegistry::global().restore(state);
      if (p.graph != nullptr) p.graph->restore(state);
      if (!state.ok()) {
        return R::fail(util::ErrorCode::kJournalCorrupt, "replay: checkpoint blob truncated");
      }
      start = i + 1;
      break;
    }
  }

  for (std::size_t i = start; i < records.size(); ++i) {
    const auto& record = records[i];
    env.sim.run_until(record.time);
    if (auto s = replay_record(p, record, i); !s.is_ok()) return R::fail(s.code(), s.error());
  }
  env.sim.run_until(config.horizon);
  return R::ok(make_artifacts(p, config));
}

util::Result<RescoreReport> shadow_rescore(const RecordedScenarioConfig& config,
                                           const std::string& journal_path,
                                           const RescoreCandidate& candidate) {
  using R = util::Result<RescoreReport>;
  journal::JournalReader reader;
  if (auto s = reader.open(journal_path); !s.is_ok()) return R::fail(s.code(), s.error());
  if (reader.seed() != config.seed || reader.config_digest() != config_digest(config)) {
    return R::fail(util::ErrorCode::kCheckpointMismatch,
                   "rescore: journal header does not match this scenario config");
  }

  Platform p = build_platform(config, &candidate);
  Env& env = *p.env;
  RescoreReport report;
  std::unordered_map<std::uint64_t, app::ActorKind> kinds;  // journalled ground truth

  const auto score = [&](web::ActorId actor, bool was_denied, bool now_denied) {
    ++report.requests;
    if (was_denied == now_denied) return;
    ++report.verdict_changes;
    const auto it = kinds.find(actor.value());
    const bool abuser =
        app::is_abuser(it != kinds.end() ? it->second : app::ActorKind::Human);
    if (now_denied) {
      abuser ? ++report.newly_caught : ++report.newly_blocked_legit;
    } else {
      abuser ? ++report.newly_missed : ++report.newly_allowed_legit;
    }
  };

  for (const auto& record : reader.records()) {
    env.sim.run_until(record.time);
    util::ByteReader in(record.fields);
    switch (record.kind) {
      case journal::RecordKind::ActorRegistered: {
        const auto r = journal::decode_actor(in);
        kinds[r.id.value()] = r.kind;
        (void)env.actors.register_actor(r.kind);
        break;
      }
      case journal::RecordKind::Browse: {
        const auto r = journal::decode_browse(in);
        score(r.ctx.actor, denied(r.result), denied(env.app.browse(r.ctx, r.endpoint, r.method)));
        break;
      }
      case journal::RecordKind::Hold: {
        auto r = journal::decode_hold(in);
        const auto ctx = r.ctx;
        const auto result = env.app.hold(ctx, r.flight, std::move(r.passengers));
        // A decoyed hold is neutralised even though the caller saw success.
        score(ctx.actor, denied(r.status) || r.decoy, denied(result.status) || result.decoy);
        break;
      }
      case journal::RecordKind::QuoteFare: {
        const auto r = journal::decode_quote_fare(in);
        (void)env.app.quote_fare(r.ctx, r.flight);  // state only; no verdict
        break;
      }
      case journal::RecordKind::Pay: {
        const auto r = journal::decode_pay(in);
        score(r.ctx.actor, denied(r.result), denied(env.app.pay(r.ctx, r.pnr)));
        break;
      }
      case journal::RecordKind::RequestOtp: {
        const auto r = journal::decode_request_otp(in);
        score(r.ctx.actor, denied(r.status),
              denied(env.app.request_otp(r.ctx, r.account, r.number).status));
        break;
      }
      case journal::RecordKind::VerifyOtp: {
        const auto r = journal::decode_verify_otp(in);
        (void)env.app.verify_otp(r.ctx, r.account, r.code);  // state only
        break;
      }
      case journal::RecordKind::RetrieveBooking: {
        const auto r = journal::decode_retrieve_booking(in);
        (void)env.app.retrieve_booking(r.ctx, r.pnr);  // state only
        break;
      }
      case journal::RecordKind::BoardingSms: {
        const auto r = journal::decode_boarding_sms(in);
        score(r.ctx.actor, denied(r.status),
              denied(env.app.request_boarding_sms(r.ctx, r.pnr, r.number).status));
        break;
      }
      case journal::RecordKind::BoardingEmail: {
        const auto r = journal::decode_boarding_email(in);
        score(r.ctx.actor, denied(r.result),
              denied(env.app.request_boarding_email(r.ctx, r.pnr)));
        break;
      }
      case journal::RecordKind::ExpirySweep:
        env.apply_expiry_sweep();
        break;
      case journal::RecordKind::MitigationSweep:
        run_recorded_sweep(env, *p.controller, nullptr);
        break;
      case journal::RecordKind::ControllerFit: {
        const auto r = journal::decode_controller_fit(in);
        p.controller->fit_nip_baseline(r.from, r.to);
        break;
      }
      case journal::RecordKind::MitigationAction:
      case journal::RecordKind::Checkpoint:  // unusable: candidate state diverges
      case journal::RecordKind::Header:
        break;
    }
    if (!in.ok()) {
      return R::fail(util::ErrorCode::kJournalCorrupt, "rescore: undecodable record payload");
    }
  }
  return R::ok(report);
}

std::string render_rescore_report(const std::string& candidate_name,
                                  const RescoreReport& report) {
  std::ostringstream out;
  out << "shadow rescore: " << candidate_name << "\n"
      << "  requests replayed     " << report.requests << "\n"
      << "  verdict changes       " << report.verdict_changes << "\n"
      << "  newly caught (abuse)  " << report.newly_caught << "\n"
      << "  newly missed (abuse)  " << report.newly_missed << "\n"
      << "  blocked legit (new)   " << report.newly_blocked_legit << "\n"
      << "  allowed legit (new)   " << report.newly_allowed_legit << "\n";
  return out.str();
}

}  // namespace fraudsim::scenario
