// The Airline A Seat Spinning case study (§IV-A) as a reusable scenario.
//
// Timeline (three weeks, continuous simulation):
//   week 0  — clean baseline ("average week" of Fig. 1)
//   week 1  — attack at the bot's chosen NiP, no cap ("attack week")
//   week 2  — NiP cap imposed at the week boundary; the attacker adapts and
//             persists ("after limitation")
// The target flight departs at the end of week 2 + margin; the bot stops
// `stop_before_departure` before departure. A mitigation controller blocks
// flagged fingerprints throughout the attack, driving the rotation dynamics
// whose mean reaction time the paper reports as ~5.3 h.
#pragma once

#include "analytics/histogram.hpp"
#include "attack/manual_spinner.hpp"
#include "attack/seat_spin.hpp"
#include "core/mitigate/controller.hpp"
#include "core/mitigate/honeypot.hpp"
#include "core/scenario/env.hpp"

namespace fraudsim::scenario {

struct SeatSpinScenarioConfig {
  std::uint64_t seed = 2022;
  int fleet_flights = 24;       // the rest of Airline A's weekly schedule
  int capacity = 180;
  int attack_nip = 6;           // high but below the max of 9 (§IV-A)
  int cap_value = 4;            // the emergency cap
  bool impose_cap = true;       // at the week-1 -> week-2 boundary
  bool controller_blocking = true;  // fingerprint blocking drives rotation
  mitigate::ChallengeMode challenge = mitigate::ChallengeMode::Off;
  bool honeypot = false;        // decoy blocked identities instead of 403
  attack::IdentityGenConfig bot_identity{attack::IdentityRegime::Gibberish, 6, 0.08, 8};
  bool include_manual_spinner = false;  // §IV-B Airline C style attacker
  workload::LegitTrafficConfig legit;
  fp::RotationConfig rotation;  // bot reaction; default mean 5.3 h
};

struct SeatSpinScenarioResult {
  // Fig. 1 series (fractions over NiP 1..9 of all holds created that week).
  analytics::CategoricalHistogram<int> nip_average_week;
  analytics::CategoricalHistogram<int> nip_attack_week;
  analytics::CategoricalHistogram<int> nip_capped_week;

  attack::SeatSpinStats bot;
  attack::ManualSpinnerStats manual;
  workload::LegitTrafficStats legit;
  app::Application::Stats app_stats;
  mitigate::HoneypotReport honeypot;
  std::vector<mitigate::EnforcementAction> actions;

  double mean_rotation_reaction_hours = 0.0;
  std::vector<double> fp_rule_effectiveness_hours;
  std::size_t rotations = 0;
  sim::SimTime bot_stopped_at = -1;
  sim::SimTime departure = 0;
  sim::SimTime cap_imposed_at = -1;
  // Target-flight pressure: fraction of simulation days in the attack window
  // where the flight ended the day fully held/sold.
  double target_depletion_days = 0.0;
};

[[nodiscard]] SeatSpinScenarioResult run_seat_spin_scenario(const SeatSpinScenarioConfig& config);

}  // namespace fraudsim::scenario
