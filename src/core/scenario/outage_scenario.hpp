// Degraded-mode resilience scenarios: what functional abuse costs when parts
// of the platform or the detection stack are DOWN.
//
// Two reusable runners, both driving the full Env with the deterministic
// fault-injection registry (core/fault):
//
//   * Carrier outage under SMS pumping — the primary SMS carrier rejects
//     submissions for a configurable window while a pumping ring is active.
//     With plain retries every failed submission (mostly attacker-generated)
//     re-queues on the app's dime: the outage *amplifies* attacker-fuelled
//     traffic. An optional circuit breaker fail-fasts during the outage and
//     bounds the amplification. The runner reports both sides plus the harm
//     to legitimate OTP logins.
//
//   * Detector outage under seat spinning — the SOC sweep backend
//     ("detect.sweep.run") is dark for a window of the attack. Enforcement
//     stops, the bot's fingerprints stop being blocked, and its hold yield
//     rises: detector downtime is attacker advantage, quantified.
//
// Every runner resets the global FaultRegistry on entry and disarms it on
// exit, so back-to-back runs (e.g. breaker on/off) stay independent and a
// fixed seed reproduces byte-identical results.
#pragma once

#include "attack/seat_spin.hpp"
#include "attack/sms_pump.hpp"
#include "core/fault/circuit_breaker.hpp"
#include "core/invariant/invariant.hpp"
#include "core/mitigate/controller.hpp"
#include "core/scenario/env.hpp"

namespace fraudsim::scenario {

// ---------------------------------------------------------------------------
// Carrier outage under SMS pumping.
// ---------------------------------------------------------------------------

struct CarrierOutageScenarioConfig {
  std::uint64_t seed = 3001;
  int fleet_flights = 12;
  int capacity = 200;
  sim::SimDuration horizon = sim::days(2);
  // Pump starts after a short clean lead-in.
  sim::SimDuration attack_start = sim::hours(6);
  // Carrier outage window (absolute sim times).
  sim::SimDuration outage_start = sim::hours(18);
  sim::SimDuration outage_end = sim::hours(24);
  bool outage_enabled = true;
  // Resilience posture.
  bool retries_enabled = true;
  fault::RetryPolicy retry;
  bool breaker_enabled = false;
  fault::CircuitBreakerConfig breaker;
  attack::SmsPumpConfig pump;
  workload::LegitTrafficConfig legit;
  // System-wide invariant oracle, evaluated hourly + at end-of-run. Pure
  // observation: disabling it never changes the run, only whether it is
  // judged safe.
  bool invariants_enabled = true;
};

struct CarrierOutageScenarioResult {
  // Gateway-side resilience telemetry.
  std::uint64_t carrier_attempts = 0;
  std::uint64_t carrier_failures = 0;
  std::uint64_t first_attempt_failures = 0;  // direct outage volume
  std::uint64_t retries_enqueued = 0;        // amplification volume
  std::uint64_t retries_delivered = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t breaker_rejected = 0;        // fail-fasted sends
  std::uint64_t breaker_trips = 0;
  std::uint64_t sms_requested = 0;
  std::uint64_t sms_delivered = 0;
  // Harm split: undelivered messages by ground-truth side at horizon end.
  std::uint64_t legit_undelivered = 0;
  std::uint64_t attacker_undelivered = 0;
  // Attacker-fuelled share of the retry load (fraction of enqueued retries
  // whose originating message belongs to an automated actor).
  double attacker_retry_share = 0.0;
  attack::SmsPumpStats pump;
  workload::LegitTrafficStats legit;
  util::Money app_sms_cost;
  // Invariant-oracle verdict (empty unless invariants_enabled).
  std::vector<invariant::Violation> violations;
  std::uint64_t invariant_checks = 0;
};

[[nodiscard]] CarrierOutageScenarioResult run_carrier_outage_scenario(
    const CarrierOutageScenarioConfig& config);

// ---------------------------------------------------------------------------
// Detector outage under seat spinning.
// ---------------------------------------------------------------------------

struct DetectorOutageScenarioConfig {
  std::uint64_t seed = 3002;
  int fleet_flights = 16;
  int capacity = 180;
  sim::SimDuration horizon = sim::days(7);
  // Bot + controller start after a clean day.
  sim::SimDuration attack_start = sim::days(1);
  // SOC sweep outage window (absolute sim times); disabled = baseline run.
  sim::SimDuration outage_start = sim::days(3);
  sim::SimDuration outage_end = sim::days(4);
  bool outage_enabled = true;
  attack::SeatSpinConfig bot;  // target filled in by the runner
  workload::LegitTrafficConfig legit;
  // System-wide invariant oracle, evaluated hourly + at end-of-run.
  bool invariants_enabled = true;
};

struct DetectorOutageScenarioResult {
  std::uint64_t skipped_sweeps = 0;
  std::size_t fingerprints_blocked = 0;
  attack::SeatSpinStats bot;
  workload::LegitTrafficStats legit;
  std::vector<mitigate::EnforcementAction> actions;
  // Attacker yield: holds the bot landed over the whole run and inside the
  // outage window specifically (the advantage the downtime buys).
  std::uint64_t bot_holds_total = 0;
  std::uint64_t bot_holds_in_window = 0;
  // Invariant-oracle verdict (empty unless invariants_enabled).
  std::vector<invariant::Violation> violations;
  std::uint64_t invariant_checks = 0;
};

[[nodiscard]] DetectorOutageScenarioResult run_detector_outage_scenario(
    const DetectorOutageScenarioConfig& config);

}  // namespace fraudsim::scenario
