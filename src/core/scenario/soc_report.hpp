// SOC-style operations report.
//
// Renders the week a fraud-prevention team actually looks at: traffic and
// business volumes, policy outcomes per rule, detector alert counts with
// ground-truth scoring, SMS cost attribution, and the enforcement timeline.
#pragma once

#include <string>
#include <vector>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "core/detect/graph/graph_detector.hpp"
#include "core/detect/pipeline.hpp"
#include "core/mitigate/controller.hpp"

namespace fraudsim::scenario {

struct SocReportInputs {
  const app::Application& application;
  const app::ActorRegistry& actors;
  const detect::PipelineResult& detection;
  sim::SimTime from = 0;
  sim::SimTime to = 0;
  // Optional enforcement history (empty = no controller ran).
  std::vector<mitigate::EnforcementAction> actions;
  // Optional entity-graph view: when set, the report grows a "Top suspicious
  // components" section. nullptr (the graph detector disabled) keeps the
  // report byte-identical to a build without the subsystem.
  const detect::graph::GraphDetector* graph = nullptr;
};

[[nodiscard]] std::string render_soc_report(const SocReportInputs& inputs);

}  // namespace fraudsim::scenario
