#include "core/scenario/fleet.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "core/bench/options.hpp"
#include "core/fault/fault.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fraudsim::scenario {

namespace {

// Fixed-precision rendering so tables and CSVs are byte-stable: %g would
// flip representation across magnitudes, and locale-dependent formatting is
// out of the question for diffable artifacts.
std::string fmt(double v) { return util::format_fixed(v, 4); }

}  // namespace

void FleetRunResult::checkpoint(util::ByteWriter& out) const {
  out.u64(observations.size());
  for (const auto& [name, value] : observations) {
    out.str(name);
    out.f64(value);
  }
  out.u64(series.size());
  for (const auto& [name, stats] : series) {
    out.str(name);
    stats.checkpoint(out);
  }
  confusion.checkpoint(out);
  metrics.checkpoint(out);
}

void FleetRunResult::restore(util::ByteReader& in) {
  observations.clear();
  series.clear();
  const std::uint64_t n_obs = in.u64();
  for (std::uint64_t i = 0; i < n_obs && in.ok(); ++i) {
    std::string name = in.str();
    observations[name] = in.f64();
  }
  const std::uint64_t n_series = in.u64();
  for (std::uint64_t i = 0; i < n_series && in.ok(); ++i) {
    std::string name = in.str();
    series[name].restore(in);
  }
  confusion.restore(in);
  metrics.restore(in);
}

double FleetVariantAggregate::Observation::p50() const { return util::percentile(samples, 0.5); }
double FleetVariantAggregate::Observation::p95() const { return util::percentile(samples, 0.95); }

const FleetVariantAggregate* FleetReport::find(std::string_view variant) const {
  for (const auto& v : variants) {
    if (v.variant == variant) return &v;
  }
  return nullptr;
}

std::string FleetReport::render_table(const std::string& title) const {
  std::string out = "=== " + title + " (" + std::to_string(jobs) + " runs";
  out += ", " + std::to_string(threads) + (threads == 1 ? " thread" : " threads");
  out += ") ===\n";
  util::AsciiTable table({"variant", "metric", "runs", "mean", "stddev", "p50", "p95"});
  for (const auto& v : variants) {
    for (const auto& [name, obs] : v.observations) {
      table.add_row({v.variant, name, std::to_string(obs.stats.count()), fmt(obs.stats.mean()),
                     fmt(obs.stats.stddev()), fmt(obs.p50()), fmt(obs.p95())});
    }
    for (const auto& [name, stats] : v.series) {
      // Merged within-run distributions have no retained samples; min/max
      // stand in for the percentile columns.
      table.add_row({v.variant, name + " (series)", std::to_string(stats.count()),
                     fmt(stats.mean()), fmt(stats.stddev()), fmt(stats.min()), fmt(stats.max())});
    }
  }
  out += table.render();

  bool any_confusion = false;
  for (const auto& v : variants) any_confusion = any_confusion || v.confusion.total() > 0;
  if (any_confusion) {
    util::AsciiTable scored({"variant", "tp", "fp", "tn", "fn", "precision", "recall", "f1"});
    for (const auto& v : variants) {
      if (v.confusion.total() == 0) continue;
      scored.add_row({v.variant, std::to_string(v.confusion.tp), std::to_string(v.confusion.fp),
                      std::to_string(v.confusion.tn), std::to_string(v.confusion.fn),
                      fmt(v.confusion.precision()), fmt(v.confusion.recall()),
                      fmt(v.confusion.f1())});
    }
    out += "\n--- classification vs ground truth ---\n" + scored.render();
  }
  return out;
}

void FleetReport::write_csv(std::ostream& out) const {
  out << "variant,metric,runs,mean,stddev,p50,p95,min,max\n";
  const auto row = [&out](const std::string& variant, const std::string& metric, std::size_t runs,
                          double mean, double stddev, double p50, double p95, double mn,
                          double mx) {
    out << variant << ',' << metric << ',' << runs << ',' << fmt(mean) << ',' << fmt(stddev)
        << ',' << fmt(p50) << ',' << fmt(p95) << ',' << fmt(mn) << ',' << fmt(mx) << '\n';
  };
  for (const auto& v : variants) {
    for (const auto& [name, obs] : v.observations) {
      row(v.variant, name, obs.stats.count(), obs.stats.mean(), obs.stats.stddev(), obs.p50(),
          obs.p95(), obs.stats.min(), obs.stats.max());
    }
    for (const auto& [name, stats] : v.series) {
      row(v.variant, name + ".series", stats.count(), stats.mean(), stats.stddev(), stats.min(),
          stats.max(), stats.min(), stats.max());
    }
    if (v.confusion.total() > 0) {
      const auto derived = [&](const char* name, double score) {
        row(v.variant, name, v.runs(), score, 0.0, score, score, score, score);
      };
      derived("confusion.precision", v.confusion.precision());
      derived("confusion.recall", v.confusion.recall());
      derived("confusion.f1", v.confusion.f1());
    }
  }
}

unsigned resolve_fleet_threads(unsigned requested) {
  if (requested > 0) return requested;
  const auto env = static_cast<unsigned>(bench::Options::env_u64("FRAUDSIM_FLEET_THREADS", 0));
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

FleetReport run_fleet(const std::vector<FleetJob>& jobs, const FleetRunFn& run,
                      FleetOptions options) {
  FleetReport report;
  report.jobs = jobs.size();
  if (jobs.empty()) {
    report.threads = 0;
    return report;
  }

  unsigned threads = resolve_fleet_threads(options.threads);
  if (static_cast<std::size_t>(threads) > jobs.size()) {
    threads = static_cast<unsigned>(jobs.size());
  }
  report.threads = threads;

  // Result slots are indexed by job position; workers race only on `next`.
  std::vector<FleetRunResult> results(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> resumed{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      FleetJob job = jobs[i];
      job.index = i;
      // Clean-slate per-thread fault registry: which jobs share a worker
      // depends on scheduling, so leftover armed scenarios or counters from a
      // previous job must never leak into the next one. The scoped guard
      // asserts (debug builds) that the previous job on this worker actually
      // cleaned up, then resets on both entry and exit.
      fault::ScopedFaultReset fault_guard;
      try {
        if (options.resume) {
          if (auto cached = options.resume(job)) {
            results[i] = std::move(*cached);
            resumed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        }
        results[i] = run(job);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  // Jobs always run on spawned workers — including the 1-thread "serial"
  // case — so every execution sees a fresh worker thread's thread_local
  // state, exactly like the parallel path.
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  report.resumed = resumed.load(std::memory_order_relaxed);

  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Deterministic reduction: fold results in job order, regardless of the
  // order workers finished in. Metrics shards fold through a per-variant
  // registry so bucket layouts and absent series follow merge()'s contract.
  std::map<std::string, obs::MetricsRegistry> metric_folds;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const FleetJob& job = jobs[i];
    FleetVariantAggregate* agg = nullptr;
    for (auto& v : report.variants) {
      if (v.variant == job.variant) {
        agg = &v;
        break;
      }
    }
    if (agg == nullptr) {
      report.variants.push_back(FleetVariantAggregate{});
      agg = &report.variants.back();
      agg->variant = job.variant;
    }
    agg->seeds.push_back(job.seed);
    FleetRunResult& r = results[i];
    for (const auto& [name, value] : r.observations) {
      auto& obs = agg->observations[name];
      obs.stats.add(value);
      obs.samples.push_back(value);
    }
    for (const auto& [name, stats] : r.series) agg->series[name].merge(stats);
    agg->confusion.merge(r.confusion);
    metric_folds[job.variant].merge(r.metrics);
  }
  for (auto& v : report.variants) v.metrics = metric_folds[v.variant].snapshot();
  return report;
}

std::vector<FleetJob> cross_jobs(const std::vector<std::string>& variants,
                                 const std::vector<std::uint64_t>& seeds) {
  std::vector<FleetJob> jobs;
  jobs.reserve(variants.size() * seeds.size());
  for (const auto& variant : variants) {
    for (const std::uint64_t seed : seeds) jobs.push_back(FleetJob{variant, seed, 0});
  }
  return jobs;
}

}  // namespace fraudsim::scenario
