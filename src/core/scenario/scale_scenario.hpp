// Mega-scale seat-inventory scenario over the sharded engine.
//
// The paper's evidence lives at industrial volume: functional abuse is only
// visible — and mitigations only provably cheap — against millions of users
// and hundreds of millions of reservation events. This scenario is the
// repo's population-scale workload: a seat-hold/pay/expiry economy over a
// flight inventory, runnable two ways off the SAME workload logic:
//
//   * run_scale_serial  — today's single `sim::Simulation` event loop, the
//     reference the sharded engine is judged against;
//   * run_scale_sharded — K shards over `sim::ShardedSimulation`: users
//     partitioned by stable hash, flights by ownership hash; a session
//     holding a seat on another shard's flight goes through typed messages
//     (hold-request → granted/denied → pay-request) exchanged at epoch
//     barriers.
//
// Determinism contract (CI-enforced):
//   * K=1 artifacts are byte-identical to the serial runner's;
//   * fixed-K artifacts are byte-identical across 1/2/N worker threads;
//   * a run resumed from per-shard checkpoints is byte-identical to an
//     uninterrupted one.
//
// Per-user randomness is stateless — every behavioural decision is a
// splitmix64 hash of (user seed, draw counter) — so a user acts identically
// no matter which shard or thread hosts it. The per-shard forked Rng streams
// are spent only at init (fare assignment in global flight order).
//
// Each shard keeps a private entity graph fed by its own (sampled) hold/pay
// stream; graphs are merged at epoch barriers via the canonical partition
// (EntityGraph::merge_from) and the merged graph is scored for organized
// rings at the end of the run. Per-shard journal checkpoints (atomic files +
// per-shard CRC'd manifests) make recovery shard-local: resume restarts from
// the newest epoch EVERY shard can prove intact.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace fraudsim::scenario {

struct ScaleConfig {
  std::uint64_t seed = 1;
  std::uint64_t users = 10'000;
  std::uint64_t flights = 256;
  std::uint32_t seats_per_flight = 64;
  sim::SimTime horizon = sim::days(2);
  sim::SimDuration epoch = sim::hours(1);

  // Behaviour (consumed via stateless per-user draws).
  sim::SimDuration think_min = sim::minutes(2);
  sim::SimDuration think_spread = sim::minutes(20);
  sim::SimDuration hold_ttl = sim::minutes(30);
  sim::SimDuration pay_delay = sim::minutes(10);
  std::uint32_t pay_percent = 60;   // chance a granted hold intends to pay
  std::uint64_t graph_sample = 16;  // 1-in-N users feed the entity graph

  // Sharded-engine knobs (run_scale_serial ignores them).
  std::uint32_t shards = 1;
  unsigned threads = 1;

  // Per-shard checkpointing: every N barriers (0 = off). Requires out_dir.
  std::uint32_t checkpoint_every = 0;
  std::string out_dir;

  // Stable digest over every behaviour-relevant field (manifest binding).
  [[nodiscard]] std::uint64_t digest() const;
};

// End-of-run results. Every field is a pure function of (config minus
// threads) — the string artifacts are what the determinism CI diffs.
struct ScaleArtifacts {
  std::string report;      // byte-stable summary table
  std::string shards_csv;  // one row per shard (serial: one "shard 0" row)
  std::string graph_csv;   // merged-graph component verdicts

  // FNV digest over end-state in global id order (users, flights, counters).
  std::uint64_t state_digest = 0;

  std::uint64_t events_fired = 0;
  std::uint64_t activities = 0;
  std::uint64_t holds = 0;
  std::uint64_t denials = 0;
  std::uint64_t pays = 0;
  std::uint64_t pay_late = 0;
  std::uint64_t expiries = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t exchange_retries = 0;
  std::uint64_t barriers = 0;
  std::uint64_t graph_events = 0;
  std::uint64_t invariant_violations = 0;
  std::string invariant_report;
};

// Reference runner: one serial event loop, barrier hooks at the same epoch
// instants the sharded engine would use.
[[nodiscard]] ScaleArtifacts run_scale_serial(const ScaleConfig& cfg);

// Sharded runner. With cfg.checkpoint_every > 0 and a non-empty out_dir,
// writes per-shard checkpoints under <out_dir>/shards/shard-NNN/ (atomic
// files listed in a per-shard MANIFEST.fsm).
[[nodiscard]] ScaleArtifacts run_scale_sharded(const ScaleConfig& cfg);

// Resumes from the newest epoch whose checkpoint every shard can prove
// intact (per-shard manifest audit), then runs to the horizon. Artifacts are
// byte-identical to an uninterrupted run_scale_sharded with the same config.
// Falls back to a fresh run when no common intact epoch exists.
[[nodiscard]] ScaleArtifacts resume_scale_sharded(const ScaleConfig& cfg);

}  // namespace fraudsim::scenario
