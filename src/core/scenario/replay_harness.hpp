// Record/replay harness: checkpointed deterministic replay + shadow re-scoring.
//
// One scenario definition (seed, fleet, legitimate demand, a scripted
// seat-spin attacker, the mitigation loop) drives three modes:
//
//   * record_run    — run live with a RecordingJournal attached: every facade
//                     call, actor registration, housekeeping sweep and
//                     periodic state checkpoint lands in the journal file.
//   * replay_run    — rebuild the platform from (seed, config) and walk the
//                     journal: requests are re-executed against the real
//                     platform code and every outcome is verified against the
//                     recorded one. Replaying from t=0 or from the last
//                     embedded checkpoint reproduces the metrics snapshot,
//                     weblog CSV and SOC report byte-for-byte.
//   * shadow_rescore — feed the recorded traffic through an ALTERNATIVE rule
//                     configuration (the shadow SOC): no attacker or traffic
//                     model is re-simulated, and the verdict diff against the
//                     live run is scored with the journalled ground truth.
//
// The platform schedules no internal events of its own (expiry and
// mitigation sweeps are harness-driven and journalled as records), so a
// journal walk IS the complete event history: replay needs no event queue
// reconstruction, only `run_until(record.time)` between records.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/detect/graph/entity_graph.hpp"
#include "core/detect/graph/graph_detector.hpp"
#include "core/invariant/invariant.hpp"
#include "core/journal/journal.hpp"
#include "core/mitigate/controller.hpp"
#include "core/obs/metrics.hpp"
#include "core/recover/recovery.hpp"
#include "core/scenario/env.hpp"

namespace fraudsim::scenario {

struct RecordedScenarioConfig {
  std::uint64_t seed = 2024;
  sim::SimTime horizon = sim::days(2);
  int flights = 12;
  int capacity = 180;
  sim::SimTime departure = sim::days(10);

  // Legitimate background demand.
  bool legit_enabled = true;
  workload::LegitTrafficConfig legit;

  // Scripted seat-spin attacker: waves of bulk holds it never pays for,
  // rotating fingerprint + exit IP + session whenever a wave gets blocked.
  bool attacker_enabled = true;
  sim::SimTime attacker_start = sim::hours(6);
  sim::SimDuration attacker_period = sim::minutes(10);
  int attacker_party = 8;
  int attacker_holds_per_wave = 3;

  // Mitigation loop (harness-driven so sweeps land in the journal).
  bool mitigation_enabled = true;
  sim::SimTime controller_fit_at = sim::hours(6);
  mitigate::ControllerConfig controller;
  std::vector<mitigate::RateLimitSpec> rate_limits;
  mitigate::ChallengeMode challenge_mode = mitigate::ChallengeMode::Off;

  // Cadence of embedded state checkpoints (restore points).
  sim::SimDuration checkpoint_every = sim::hours(6);

  // Overload-control posture of the platform (off by default, the historical
  // shape). Digested only when enabled, so every pre-overload journal keeps
  // its digest.
  overload::OverloadConfig overload;

  // Incremental entity graph (off by default, the historical shape). When
  // enabled, every mode — record, replay, rescore, baseline — attaches a
  // GraphIngest tap to the application facade, so the graph is grown from the
  // identical event stream live and during replay; its state rides in every
  // checkpoint blob and the GraphDetector joins the detection pipeline.
  // Digested only when enabled, like the overload posture above.
  struct GraphSettings {
    bool enabled = false;
    detect::graph::GraphConfig graph;
    detect::graph::GraphDetectorConfig detector;
  };
  GraphSettings graph;

  // Extra flash-crowd phases of legitimate demand layered over the baseline
  // generator (chaos schedules use these to push the platform into brownout
  // mid-campaign). Live modes only: the surges' requests are journalled like
  // any other traffic, so replay reproduces them from the journal and the
  // phases stay out of the digest.
  struct TrafficPhase {
    sim::SimTime from = 0;
    sim::SimTime to = 0;
    double intensity = 4.0;  // multiplier on the baseline arrival rates
  };
  std::vector<TrafficPhase> traffic_phases;

  // Invariant oracle: when non-null, each live run resets the registry,
  // binds the standard platform invariants to its own application instance
  // (invariant::register_platform_invariants) and evaluates them at every
  // `invariant_barrier_every` epoch barrier plus once at end-of-run. Checks
  // are pure observers (no mutation, no randomness), so attaching the oracle
  // never changes what the run does — violations land in
  // RunArtifacts::violations. Replay modes ignore it; replay consistency is
  // the chaos runner's own oracle.
  invariant::InvariantRegistry* invariants = nullptr;
  sim::SimDuration invariant_barrier_every = sim::hours(1);
  // TESTING ONLY: runs at every barrier before the checks, live modes only.
  // Chaos planted-bug campaigns use it to corrupt state on purpose and prove
  // the oracle catches it; it is deliberately outside the journal, so a run
  // whose hook mutates state will NOT replay cleanly.
  std::function<void(app::Application&, sim::SimTime)> barrier_hook;
};

// Digest of everything that shapes the run (journal header field): a replay
// against a differently-shaped scenario is refused up front.
[[nodiscard]] std::uint64_t config_digest(const RecordedScenarioConfig& config);

// The run's exported artifacts, kept in memory so byte-identity is a string
// comparison. Record and replay build these through identical code paths.
struct RunArtifacts {
  std::string metrics_csv;  // obs::MetricsRegistry snapshot
  std::string weblog_csv;   // app::export_weblog_csv
  std::string soc_report;   // scenario::render_soc_report
  // The snapshot the CSV was rendered from, carried as a structured shard so
  // a fleet reduction can fold it via obs::MetricsRegistry::merge.
  obs::MetricsSnapshot metrics;
  // Invariant-oracle results (empty unless the config attached a registry).
  std::vector<invariant::Violation> violations;
  std::uint64_t invariant_checks = 0;
};

// Live run WITHOUT any journaling attached: the control for "recording off
// is byte-identical to recording on".
[[nodiscard]] RunArtifacts baseline_run(const RecordedScenarioConfig& config);

// Live run with recording; the journal lands at `journal_path`.
[[nodiscard]] util::Result<RunArtifacts> record_run(const RecordedScenarioConfig& config,
                                                    const std::string& journal_path);

struct ReplayOptions {
  // Restore the last embedded checkpoint and replay only the suffix instead
  // of walking the journal from t=0.
  bool from_last_checkpoint = false;
};

// Deterministic replay with outcome verification. Fails with
// kCheckpointMismatch on the first record whose replayed outcome differs
// from the recorded one, and with kJournalCorrupt on undecodable payloads.
[[nodiscard]] util::Result<RunArtifacts> replay_run(const RecordedScenarioConfig& config,
                                                    const std::string& journal_path,
                                                    ReplayOptions options = {});

// --- Crash-consistent run directories --------------------------------------
//
// record_run_dir is record_run with the full crash-consistency discipline:
// the journal lands at `<run_dir>/run.journal`, every embedded checkpoint is
// duplicated as an atomic sidecar under checkpoints/, the CSV/SOC artifacts
// are written through recover::AtomicFile, and a CRC'd MANIFEST.fsm is
// written LAST as the commit point. When an armed crash point fires the
// partial state stays on disk exactly as a kill would leave it and the call
// fails with kCrashInjected.
[[nodiscard]] util::Result<RunArtifacts> record_run_dir(const RecordedScenarioConfig& config,
                                                        const std::string& run_dir);

struct RecoverOutcome {
  RunArtifacts artifacts;
  recover::RecoveryReport report;
  bool reused_complete_run = false;  // manifest intact: verified by replay only
  bool prefix_verified = false;      // salvaged journal byte-matched the re-record
};

// Startup recovery to a state byte-identical to an uninterrupted run:
// repair the directory (RecoveryManager), verify the salvaged journal prefix
// by checkpoint-anchored replay and cross-check the newest sidecar against
// its embedded twin, then deterministically re-record and prove the salvaged
// bytes are a prefix of the fresh journal. A directory whose manifest
// validates is not re-recorded — its journal is replay-verified instead.
[[nodiscard]] util::Result<RecoverOutcome> recover_run(const RecordedScenarioConfig& config,
                                                       const std::string& run_dir);

// A candidate configuration for offline evaluation.
struct RescoreCandidate {
  std::string name;
  // Applied to the freshly wired rule engine (add/replace rate limits, set
  // challenge mode, ...). Null = identical to the recorded configuration.
  std::function<void(mitigate::RuleEngine&)> configure_engine;
  // Optional controller replacement (detector thresholds, sweep cadence...).
  std::optional<mitigate::ControllerConfig> controller;
};

// Verdict diff of a shadow re-score against the recorded live decisions.
// "Denied" = Blocked/Challenged/RateLimited/Overloaded, or a hold absorbed
// by the honeypot decoy; everything that reached business logic is "served".
struct RescoreReport {
  std::uint64_t requests = 0;         // verdict-bearing records replayed
  std::uint64_t verdict_changes = 0;  // served/denied flips vs the live run
  std::uint64_t newly_caught = 0;         // abuser traffic the candidate denies
  std::uint64_t newly_missed = 0;         // abuser traffic the candidate now serves
  std::uint64_t newly_blocked_legit = 0;  // collateral: legit traffic now denied
  std::uint64_t newly_allowed_legit = 0;  // legit traffic the live run denied
};

// Feeds the recorded traffic through `candidate` without re-simulating any
// traffic source. Replays from t=0 (candidate state necessarily diverges, so
// checkpoints are unusable) and never fails on verdict differences — they
// are the product.
[[nodiscard]] util::Result<RescoreReport> shadow_rescore(const RecordedScenarioConfig& config,
                                                         const std::string& journal_path,
                                                         const RescoreCandidate& candidate);

// Renders a RescoreReport as a small fixed-order text block (CLI + bench).
[[nodiscard]] std::string render_rescore_report(const std::string& candidate_name,
                                                const RescoreReport& report);

}  // namespace fraudsim::scenario
