#include "core/scenario/sms_pump_scenario.hpp"

#include <algorithm>
#include <set>

namespace fraudsim::scenario {

SmsPumpScenarioResult run_sms_pump_scenario(const SmsPumpScenarioConfig& config) {
  EnvConfig env_config;
  env_config.seed = config.seed;
  env_config.legit = config.legit;
  env_config.carrier_policy = config.carrier_policy;
  env_config.application.boarding.sms_per_booking_cap = config.per_booking_sms_cap;
  Env env(env_config);

  const sim::SimTime attack_start = sim::days(config.baseline_days);
  const sim::SimTime end = attack_start + sim::days(config.attack_days);

  const int fleet = std::max(
      config.fleet_flights,
      Env::fleet_size_for(config.legit.booking_sessions_per_hour, end, config.capacity));
  env.add_flights("D", fleet, config.capacity, end + sim::days(14));

  env.engine.set_challenge_mode(config.challenge);
  if (config.loyalty_gate_sms) {
    env.engine.gate_to_loyalty(web::Endpoint::BoardingPassSms);
  }

  mitigate::ControllerConfig controller_config;
  controller_config.block_flagged_fingerprints = false;  // no DoI detectors here
  controller_config.block_artifact_fingerprints = true;
  controller_config.disable_sms_on_path_trip = config.disable_sms_on_path_trip;
  controller_config.sms.path_daily_limit = config.path_daily_limit;
  mitigate::MitigationController controller(env.app, env.engine, controller_config);

  attack::SmsPumpConfig pump_config = config.pump;
  pump_config.stop_at = end;
  attack::SmsPumpBot pump(env.app, env.actors, env.residential, env.population, env.tariffs,
                          pump_config, env.rng.fork("sms-pump"));

  env.start_background(end);
  env.sim.schedule_at(attack_start, [&] {
    controller.start(end);
    pump.start();
  });

  env.run_until(end);

  SmsPumpScenarioResult result;
  result.attack_start = attack_start;
  result.pump = pump.stats();
  result.legit = env.legit->stats();

  detect::SmsAnomalyConfig anomaly_config;
  anomaly_config.path_daily_limit = config.path_daily_limit;
  anomaly_config.per_booking_limit = 10;
  const detect::SmsAnomalyDetector detector(anomaly_config);
  result.surges = detector.country_surges(env.app.sms_gateway(), 0, attack_start, attack_start,
                                          end, sms::SmsType::BoardingPass);
  result.path_trip_time = detector.path_limit_trip_time(env.app.sms_gateway());
  result.per_booking_trip_time = detector.per_booking_trip_time(env.app.sms_gateway());
  result.sms_disabled_at = controller.sms_disable_time();

  // Global boarding-pass surge, per-day normalised.
  const auto before =
      env.app.sms_gateway().volume_by_country(0, attack_start, sms::SmsType::BoardingPass);
  const auto during =
      env.app.sms_gateway().volume_by_country(attack_start, end, sms::SmsType::BoardingPass);
  result.boarding_sms_before = before.total();
  result.boarding_sms_during = during.total();
  const double before_rate = static_cast<double>(before.total()) /
                             std::max(1.0, sim::to_days(attack_start));
  const double during_rate =
      static_cast<double>(during.total()) / std::max(1.0, sim::to_days(end - attack_start));
  result.global_surge_fraction = analytics::surge_fraction(before_rate, during_rate);

  // Distinct countries the ring actually reached.
  std::set<net::CountryCode> attacker_countries;
  for (const auto& r : env.app.sms_gateway().log()) {
    if (!r.delivered || r.actor != pump.actor()) continue;
    attacker_countries.insert(r.destination.country);
  }
  result.attacker_countries = attacker_countries.size();

  result.attacker_pnl = econ::sms_attacker_pnl(env.app.sms_gateway(), pump.actor(),
                                               pump.stats().counters,
                                               pump.stats().tickets_bought);
  result.defender_pnl = econ::defender_pnl(env.app, env.actors, env.legit->stats());
  return result;
}

}  // namespace fraudsim::scenario
