// Fleet runner: N independent (config-variant × seed) simulations on a
// worker pool, reduced into per-variant cross-seed aggregates.
//
// Determinism contract (see DESIGN.md §2.5):
//   * Every job runs on its own worker thread against its own Env/Rng — the
//     simulations share no mutable state, and the per-thread fault registry
//     (`fault::FaultRegistry::global()`) is reset to a clean slate before
//     each job, so a job observes the same world no matter which worker picks
//     it up.
//   * Workers pull jobs from a shared cursor (completion order is
//     scheduling-dependent), but results land in slots indexed by job
//     position and the reduction folds them in JOB ORDER after all workers
//     join. The report — and any artifact a job writes — is therefore
//     byte-identical for 1, 4, or 64 threads.
//   * The runner itself never reads the wall clock and never consumes
//     randomness; all it adds over a serial loop is the thread pool.
//
// Reduction semantics: per-run scalar observations become one sample each in
// the variant's cross-seed distribution (mean ± stddev, p50/p95); within-run
// RunningStats shards merge via `RunningStats::merge`; confusion tallies sum
// cell-wise; metrics snapshots fold through `obs::MetricsRegistry::merge`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/obs/metrics.hpp"
#include "util/stats.hpp"

namespace fraudsim::scenario {

// One unit of fleet work: a named configuration variant at one seed. `index`
// is filled by the runner with the job's position in the submitted list, so
// a run function can derive per-job artifact paths without global state.
struct FleetJob {
  std::string variant;
  std::uint64_t seed = 0;
  std::size_t index = 0;
};

// What one run reports back to the reduction. Everything is optional: a
// bench that only cares about scalar outcomes leaves the rest empty.
struct FleetRunResult {
  // Scalar per-run outcomes ("bot_holds", "legit_blocked", ...): each becomes
  // one sample in the variant's cross-seed distribution.
  std::map<std::string, double> observations;
  // Within-run distributions (e.g. per-request latency stats): merged across
  // the variant's runs with RunningStats::merge.
  std::map<std::string, util::RunningStats> series;
  // Classification tallies vs ground truth; merged cell-wise.
  util::ConfusionCounts confusion;
  // Telemetry shard (a registry snapshot); merged via MetricsRegistry::merge.
  obs::MetricsSnapshot metrics;

  // Lossless byte round-trip so a completed job's result can be persisted
  // (fleet crash recovery: resume re-runs only jobs without a valid shard).
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);
};

using FleetRunFn = std::function<FleetRunResult(const FleetJob&)>;

// Cross-seed aggregate for one variant, in job order.
struct FleetVariantAggregate {
  std::string variant;
  std::vector<std::uint64_t> seeds;  // in job order

  struct Observation {
    util::RunningStats stats;
    std::vector<double> samples;  // in job order, for exact percentiles
    [[nodiscard]] double p50() const;
    [[nodiscard]] double p95() const;
  };
  std::map<std::string, Observation> observations;
  std::map<std::string, util::RunningStats> series;
  util::ConfusionCounts confusion;
  obs::MetricsSnapshot metrics;  // all shards merged

  [[nodiscard]] std::size_t runs() const { return seeds.size(); }
};

struct FleetReport {
  unsigned threads = 1;   // workers actually used
  std::size_t jobs = 0;
  std::size_t resumed = 0;  // jobs satisfied from the resume hook, not re-run
  std::vector<FleetVariantAggregate> variants;  // first-appearance order

  [[nodiscard]] const FleetVariantAggregate* find(std::string_view variant) const;

  // ASCII table: variant | metric | runs | mean | stddev | p50 | p95, then a
  // classification table for variants with confusion tallies. Byte-stable.
  [[nodiscard]] std::string render_table(const std::string& title = "Fleet sweep") const;
  // CSV: variant,metric,runs,mean,stddev,p50,p95,min,max. Derived
  // classification scores appear as confusion.* rows (degenerate
  // distributions: every stat column carries the score).
  void write_csv(std::ostream& out) const;
};

struct FleetOptions {
  // 0 = resolve via resolve_fleet_threads() (FRAUDSIM_FLEET_THREADS, else
  // hardware concurrency). The count is clamped to the number of jobs.
  unsigned threads = 0;
  // Crash-recovery hook, consulted per job before running it: return the
  // persisted result of an earlier completed execution (job skipped, counted
  // in report.resumed) or nullopt to run the job normally. Runs on the worker
  // thread after the fault-registry reset; the reduction folds resumed and
  // fresh results identically, so a resumed fleet reduces byte-identically
  // to an uninterrupted one.
  std::function<std::optional<FleetRunResult>(const FleetJob&)> resume;
};

// Thread-count resolution: explicit request > FRAUDSIM_FLEET_THREADS env var
// > hardware concurrency (1 when unknown).
[[nodiscard]] unsigned resolve_fleet_threads(unsigned requested = 0);

// Runs every job and reduces. Jobs always execute on spawned worker threads
// (even with 1 thread), so thread_local state is pristine per worker and the
// serial path exercises the exact code the parallel path does. If a run
// function throws, the runner finishes outstanding jobs, then rethrows the
// job-order-first exception.
[[nodiscard]] FleetReport run_fleet(const std::vector<FleetJob>& jobs, const FleetRunFn& run,
                                    FleetOptions options = {});

// Convenience: the same variant list crossed with a seed list, variants
// grouped together in variant-major order.
[[nodiscard]] std::vector<FleetJob> cross_jobs(const std::vector<std::string>& variants,
                                               const std::vector<std::uint64_t>& seeds);

}  // namespace fraudsim::scenario
