#include "core/scenario/env.hpp"

#include <algorithm>
#include <cmath>

namespace fraudsim::scenario {

int Env::fleet_size_for(double booking_sessions_per_hour, sim::SimDuration horizon,
                        int capacity) {
  // Mean party ~1.9 seats, ~72% of holds convert to permanent sales; 2.2
  // seats per booking session leaves ~60% headroom.
  const double sessions = booking_sessions_per_hour * sim::to_days(horizon) * 24.0;
  const double seats = sessions * 2.2;
  return std::max(1, static_cast<int>(std::ceil(seats / std::max(capacity, 1))));
}

Env::Env(EnvConfig config)
    : tariffs(sms::TariffTable::standard()),
      carriers(tariffs, config.carrier_policy),
      rng(config.seed),
      app(sim, carriers, config.application, rng.fork("app")),
      engine(sim),
      residential(geo, util::Money::from_double(0.0008)),
      datacenter(geo, net::CountryCode{'U', 'S'}, 8, util::Money::from_double(0.00005)),
      config_(std::move(config)) {
  app.set_policy(&engine);
  // Couple the rule engine to the platform's brownout controller so rate
  // limits tighten while the admission queue is hot (no-op with overload
  // control disabled).
  engine.observe_overload(&app.overload().brownout());
  // Rule-engine rate limiters publish their denial tallies into the
  // platform registry ("mitigate.rate.<name>.denials").
  engine.bind_metrics(&app.metrics());
  legit = std::make_unique<workload::LegitTraffic>(app, geo, actors, config_.legit,
                                                   rng.fork("legit"));
}

std::vector<airline::FlightId> Env::add_flights(const std::string& airline, int count,
                                                int capacity, sim::SimTime departure) {
  std::vector<airline::FlightId> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(app.add_flight(airline, 100 + i, capacity, departure));
  }
  return ids;
}

void Env::start_background(sim::SimTime until) {
  legit->start(until);
  schedule_expiry_sweep(until);
}

void Env::apply_expiry_sweep() {
  app.inventory().expire_due(sim.now());
  if (app.honeypot_enabled()) app.decoy_inventory().expire_due(sim.now());
  // Drain due SMS retries (no-op unless carrier faults queued any).
  app.sms_gateway().process_retries(sim.now());
}

void Env::schedule_expiry_sweep(sim::SimTime until) {
  if (sim.now() + config_.expiry_sweep > until) return;
  sim.schedule_in(config_.expiry_sweep, [this, until] {
    apply_expiry_sweep();
    schedule_expiry_sweep(until);
  });
}

}  // namespace fraudsim::scenario
