#include "core/scenario/seat_spin_scenario.hpp"

#include <memory>

#include "core/detect/nip_anomaly.hpp"

namespace fraudsim::scenario {

SeatSpinScenarioResult run_seat_spin_scenario(const SeatSpinScenarioConfig& config) {
  EnvConfig env_config;
  env_config.seed = config.seed;
  env_config.legit = config.legit;
  env_config.application.honeypot_enabled = config.honeypot;
  // Airline A holds seats for hours before payment (§IV-A: "30 minutes to
  // several hours depending on the domain"); the long window is what makes
  // the attack cheap for the attacker.
  env_config.application.inventory.hold_duration = sim::hours(4);
  Env env(env_config);

  constexpr sim::SimTime kWeek = sim::kWeek;
  const sim::SimTime end = 3 * kWeek;
  const sim::SimTime departure = end + sim::days(1);  // target departs d22

  // Schedule: the fleet departs well after the horizon so it stays bookable;
  // the target flight is the one the bot besieges. The fleet is sized to the
  // configured demand so legitimate traffic never sells the schedule out.
  const int fleet = std::max(
      config.fleet_flights,
      Env::fleet_size_for(config.legit.booking_sessions_per_hour, end, config.capacity));
  env.add_flights("A", fleet, config.capacity, end + sim::days(14));
  const auto target = env.app.add_flight("A", 777, config.capacity, departure);

  // Mitigation posture.
  env.engine.set_challenge_mode(config.challenge);
  if (config.honeypot) env.engine.set_blocklist_action(app::PolicyAction::Honeypot);

  mitigate::ControllerConfig controller_config;
  controller_config.block_flagged_fingerprints = config.controller_blocking;
  controller_config.block_artifact_fingerprints = config.controller_blocking;
  controller_config.impose_nip_cap = false;  // the cap is imposed on the Fig.1 timeline below
  mitigate::MitigationController controller(env.app, env.engine, controller_config);

  // Attacker.
  attack::SeatSpinConfig bot_config;
  bot_config.target = target;
  bot_config.initial_nip = config.attack_nip;
  bot_config.identity = config.bot_identity;
  bot_config.rotation = config.rotation;
  attack::SeatSpinBot bot(env.app, env.actors, env.residential, env.population, bot_config,
                          env.rng.fork("seat-spin-bot"));

  attack::ManualSpinnerConfig manual_config;
  manual_config.target = target;
  std::unique_ptr<attack::ManualSpinner> manual;
  if (config.include_manual_spinner) {
    manual = std::make_unique<attack::ManualSpinner>(env.app, env.actors, env.residential,
                                                     env.population, manual_config,
                                                     env.rng.fork("manual-spinner"));
  }

  // Timeline.
  env.start_background(end);
  // Week 0 is clean. At its end: fit the controller's NiP baseline and arm it.
  env.sim.schedule_at(kWeek, [&] {
    controller.fit_nip_baseline(0, kWeek);
    controller.start(end);
    bot.start();
    if (manual) manual->start();
  });
  // Cap at the week-1 -> week-2 boundary.
  SeatSpinScenarioResult result;
  result.cap_imposed_at = -1;
  if (config.impose_cap) {
    env.sim.schedule_at(2 * kWeek, [&env, &result, &config] {
      env.app.inventory().set_max_nip(config.cap_value);
      result.cap_imposed_at = env.sim.now();
    });
  }

  // Depletion sampling over the attack window (weeks 1-2), every two hours.
  int depleted_samples = 0;
  int samples = 0;
  for (sim::SimTime t = kWeek + sim::hours(2); t <= end; t += sim::hours(2)) {
    env.sim.schedule_at(t, [&env, &depleted_samples, &samples, target] {
      env.app.inventory().expire_due(env.sim.now());
      ++samples;
      if (env.app.inventory().available_seats(target) == 0) ++depleted_samples;
    });
  }

  env.run_until(end);

  // Collect Fig. 1 histograms (holds created per week, all Airline A flights,
  // including never-finalised ones — exactly what the paper counts).
  const auto& reservations = env.app.inventory().reservations();
  result.nip_average_week = detect::NipAnomalyDetector::window_histogram(reservations, 0, kWeek);
  result.nip_attack_week =
      detect::NipAnomalyDetector::window_histogram(reservations, kWeek, 2 * kWeek);
  result.nip_capped_week =
      detect::NipAnomalyDetector::window_histogram(reservations, 2 * kWeek, end);

  result.bot = bot.stats();
  if (manual) result.manual = manual->stats();
  result.legit = env.legit->stats();
  result.app_stats = env.app.stats();
  result.honeypot = mitigate::honeypot_report(env.app, env.actors);
  result.actions = controller.actions();
  result.mean_rotation_reaction_hours = bot.evasion().identity().mean_reaction_hours();
  result.rotations = bot.evasion().identity().history().size();
  result.fp_rule_effectiveness_hours = env.engine.blocklist().effectiveness_windows_hours();
  result.bot_stopped_at = bot.stats().stopped_at;
  result.departure = departure;
  result.target_depletion_days =
      samples == 0 ? 0.0 : static_cast<double>(depleted_samples) / samples;
  return result;
}

}  // namespace fraudsim::scenario
