#include "core/scenario/outage_scenario.hpp"

#include <algorithm>

#include "core/fault/fault.hpp"

namespace fraudsim::scenario {

namespace {

// Hourly epoch barriers for the invariant oracle. Checks are pure observers,
// so arming them never changes what the scenario does.
void schedule_invariant_barriers(Env& env, invariant::InvariantRegistry& invariants,
                                 sim::SimTime horizon) {
  for (sim::SimTime t = sim::hours(1); t < horizon; t += sim::hours(1)) {
    env.sim.schedule_at(t, [&invariants, &env] { (void)invariants.check_all(env.sim.now()); });
  }
}

}  // namespace

CarrierOutageScenarioResult run_carrier_outage_scenario(
    const CarrierOutageScenarioConfig& config) {
  auto& faults = fault::FaultRegistry::global();
  faults.reset();

  EnvConfig env_config;
  env_config.seed = config.seed;
  env_config.legit = config.legit;
  env_config.application.gateway.retry_enabled = config.retries_enabled;
  env_config.application.gateway.retry = config.retry;
  env_config.application.gateway.breaker_enabled = config.breaker_enabled;
  env_config.application.gateway.breaker = config.breaker;
  Env env(env_config);

  const sim::SimTime end = config.horizon;
  const int fleet = std::max(
      config.fleet_flights,
      Env::fleet_size_for(config.legit.booking_sessions_per_hour, end, config.capacity));
  env.add_flights("D", fleet, config.capacity, end + sim::days(14));

  if (config.outage_enabled) {
    faults.arm("sms.carrier.send",
               fault::FaultScenario::window(config.outage_start, config.outage_end));
  }

  attack::SmsPumpConfig pump_config = config.pump;
  pump_config.stop_at = end;
  attack::SmsPumpBot pump(env.app, env.actors, env.residential, env.population, env.tariffs,
                          pump_config, env.rng.fork("sms-pump"));

  invariant::InvariantRegistry invariants;
  if (config.invariants_enabled) {
    invariant::register_platform_invariants(invariants, env.app, &env.engine);
    schedule_invariant_barriers(env, invariants, end);
  }

  env.start_background(end);
  env.sim.schedule_at(config.attack_start, [&] { pump.start(); });
  env.run_until(end);
  // Drain anything still due exactly at the horizon.
  env.app.sms_gateway().process_retries(end);
  if (config.invariants_enabled) (void)invariants.check_all(end);

  const auto& gateway = env.app.sms_gateway();
  CarrierOutageScenarioResult result;
  result.carrier_attempts = gateway.carrier_attempts();
  result.carrier_failures = gateway.carrier_failures();
  result.first_attempt_failures = gateway.first_attempt_failures();
  result.retries_enqueued = gateway.retries_enqueued();
  result.retries_delivered = gateway.retries_delivered();
  result.retries_exhausted = gateway.retries_exhausted();
  result.breaker_rejected = gateway.breaker().rejected();
  result.breaker_trips = gateway.breaker().trips();
  result.sms_requested = gateway.sent_count();
  result.sms_delivered = gateway.delivered_count();
  result.app_sms_cost = gateway.total_app_cost();

  std::uint64_t attacker_retry_failures = 0;
  std::uint64_t retry_failures = 0;
  for (const auto& r : gateway.log()) {
    const bool automated = env.actors.automated(r.actor);
    if (!r.delivered) {
      if (automated) {
        ++result.attacker_undelivered;
      } else {
        ++result.legit_undelivered;
      }
    }
    // Every submission beyond the first was a queued retry of this record.
    if (r.attempts > 1) {
      retry_failures += static_cast<std::uint64_t>(r.attempts - 1);
      if (automated) attacker_retry_failures += static_cast<std::uint64_t>(r.attempts - 1);
    }
  }
  result.attacker_retry_share =
      retry_failures == 0
          ? 0.0
          : static_cast<double>(attacker_retry_failures) / static_cast<double>(retry_failures);

  result.pump = pump.stats();
  result.legit = env.legit->stats();
  result.violations = invariants.violations();
  result.invariant_checks = invariants.checks_run();
  faults.disarm_all();
  return result;
}

DetectorOutageScenarioResult run_detector_outage_scenario(
    const DetectorOutageScenarioConfig& config) {
  auto& faults = fault::FaultRegistry::global();
  faults.reset();

  EnvConfig env_config;
  env_config.seed = config.seed;
  env_config.legit = config.legit;
  env_config.application.inventory.hold_duration = sim::hours(1);
  Env env(env_config);

  const sim::SimTime end = config.horizon;
  const int fleet = std::max(
      config.fleet_flights,
      Env::fleet_size_for(config.legit.booking_sessions_per_hour, end, config.capacity));
  env.add_flights("A", fleet, config.capacity, end + sim::days(14));
  const auto target = env.app.add_flight("A", 777, config.capacity, end + sim::days(2));

  if (config.outage_enabled) {
    faults.arm("detect.sweep.run",
               fault::FaultScenario::window(config.outage_start, config.outage_end));
  }

  mitigate::ControllerConfig controller_config;
  controller_config.block_flagged_fingerprints = true;
  controller_config.block_artifact_fingerprints = true;
  mitigate::MitigationController controller(env.app, env.engine, controller_config);

  attack::SeatSpinConfig bot_config = config.bot;
  bot_config.target = target;
  attack::SeatSpinBot bot(env.app, env.actors, env.residential, env.population, bot_config,
                          env.rng.fork("seat-spin-bot"));

  invariant::InvariantRegistry invariants;
  if (config.invariants_enabled) {
    invariant::register_platform_invariants(invariants, env.app, &env.engine);
    schedule_invariant_barriers(env, invariants, end);
  }

  env.start_background(end);
  env.sim.schedule_at(config.attack_start, [&] {
    controller.start(end);
    bot.start();
  });
  env.run_until(end);
  if (config.invariants_enabled) (void)invariants.check_all(end);

  DetectorOutageScenarioResult result;
  result.skipped_sweeps = controller.skipped_sweeps();
  result.fingerprints_blocked = controller.fingerprints_blocked();
  result.bot = bot.stats();
  result.legit = env.legit->stats();
  result.actions = controller.actions();
  for (const auto& r : env.app.inventory().reservations()) {
    if (r.actor != bot.actor()) continue;
    ++result.bot_holds_total;
    if (r.created >= config.outage_start && r.created < config.outage_end) {
      ++result.bot_holds_in_window;
    }
  }
  result.violations = invariants.violations();
  result.invariant_checks = invariants.checks_run();
  faults.disarm_all();
  return result;
}

}  // namespace fraudsim::scenario
