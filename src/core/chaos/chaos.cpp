#include "core/chaos/chaos.hpp"

#include <fstream>
#include <sstream>

#include "core/fault/crash.hpp"
#include "core/recover/atomic_file.hpp"
#include "sim/rng.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"

namespace fraudsim::chaos {

namespace {

constexpr char kReproMagic[4] = {'F', 'S', 'C', '1'};

std::string fmt_intensity(double v) { return util::format_fixed(v, 2); }

}  // namespace

std::string ChaosEntry::describe() const {
  if (kind == Kind::FlashCrowd) {
    return "flash-crowd x" + fmt_intensity(intensity) + " in [" + sim::format_time(from) + ", " +
           sim::format_time(to) + ")";
  }
  return point + ": " + scenario.describe();
}

void ChaosEntry::checkpoint(util::ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(kind));
  out.str(point);
  scenario.checkpoint(out);
  out.i64(from);
  out.i64(to);
  out.f64(intensity);
}

void ChaosEntry::restore(util::ByteReader& in) {
  kind = static_cast<Kind>(in.u8());
  point = in.str();
  scenario.restore(in);
  from = in.i64();
  to = in.i64();
  intensity = in.f64();
}

bool ChaosSchedule::arms(const std::string& target, fault::FaultKind kind) const {
  for (const auto& e : entries) {
    if (e.kind == ChaosEntry::Kind::ArmFault && e.point == target && e.scenario.fault == kind) {
      return true;
    }
  }
  return false;
}

std::string ChaosSchedule::describe() const {
  std::ostringstream out;
  out << "chaos schedule (seed " << seed << ", " << entries.size() << " entries)\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "  [" << i << "] " << entries[i].describe() << "\n";
  }
  return out.str();
}

void ChaosSchedule::checkpoint(util::ByteWriter& out) const {
  out.u64(seed);
  out.u64(entries.size());
  for (const auto& e : entries) e.checkpoint(out);
}

void ChaosSchedule::restore(util::ByteReader& in) {
  seed = in.u64();
  const std::uint64_t n = in.u64();
  entries.clear();
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    ChaosEntry e;
    e.restore(in);
    entries.push_back(std::move(e));
  }
}

void arm_schedule(const ChaosSchedule& schedule, bool include_crash) {
  auto& registry = fault::FaultRegistry::global();
  for (const auto& e : schedule.entries) {
    if (e.kind != ChaosEntry::Kind::ArmFault) continue;
    if (!include_crash && e.scenario.fault == fault::FaultKind::kCrash) continue;
    registry.arm(e.point, e.scenario);
  }
}

ChaosGeneratorConfig default_generator_config(sim::SimTime horizon) {
  ChaosGeneratorConfig config;
  config.horizon = horizon;
  // Every error-guarded dependency the platform registers today.
  // "detect.batch.run" demotes detection runs to the scalar adapter path —
  // an execution-mode fault with byte-identical verdicts by contract.
  // "graph.ingest" drops events at the entity graph's admit-path tap — the
  // graph invariants must hold (and replay stay clean) through the outage.
  // "shard.exchange" injects transient barrier-exchange failures into the
  // sharded engine — charged as retries, never losses, so shard-conservation
  // must hold through it.
  config.error_points = {"sms.carrier.send",  "detect.sweep.run",  "otp.deliver",
                         "fp.store.record",   "app.policy.evaluate", "detect.batch.run",
                         "graph.ingest",      "shard.exchange"};
  // Latency-capable sites: the request path charges it into the admission
  // model; the gateway charges it against the caller's deadline budget.
  config.latency_points = {"app.request.latency", "sms.carrier.send"};
  config.crash_points = {fault::kCrashJournalFrame, fault::kCrashJournalCheckpoint,
                         fault::kCrashArtifactBody, fault::kCrashArtifactRename,
                         fault::kCrashManifestWrite};
  return config;
}

namespace {

fault::FaultScenario draw_pattern(sim::Rng& rng, const ChaosGeneratorConfig& config) {
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // dependency outage window
      const sim::SimTime from = rng.uniform_int(0, config.horizon * 3 / 4);
      const sim::SimDuration len =
          rng.uniform_int(config.horizon / 16 + 1, config.horizon / 4 + 1);
      return fault::FaultScenario::window(from, from + len);
    }
    case 1:  // every-Nth flakiness
      return fault::FaultScenario::every_nth(static_cast<std::uint64_t>(rng.uniform_int(2, 12)));
    case 2:  // seeded coin flips
      return fault::FaultScenario::probabilistic(
          rng.uniform(0.05, 0.5), static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30)));
    default: {  // repeating burst outages
      const sim::SimTime from = rng.uniform_int(0, config.horizon / 2);
      const sim::SimDuration period = rng.uniform_int(config.horizon / 12 + 1,
                                                      config.horizon / 6 + 1);
      return fault::FaultScenario::burst(from, period, period / 3 + 1);
    }
  }
}

}  // namespace

ChaosSchedule generate_schedule(std::uint64_t seed, const ChaosGeneratorConfig& config) {
  ChaosSchedule schedule;
  schedule.seed = seed;
  sim::Rng rng(seed);

  enum Option : int { kError, kLatency, kCrash, kFlashCrowd };
  std::vector<Option> options;
  if (config.allow_error && !config.error_points.empty()) {
    // Weighted towards dependency errors: they exercise the widest surface.
    options.insert(options.end(), 4, kError);
  }
  if (config.allow_latency && !config.latency_points.empty()) {
    options.insert(options.end(), 2, kLatency);
  }
  if (config.allow_crash && !config.crash_points.empty()) options.push_back(kCrash);
  if (config.allow_flash_crowd) options.insert(options.end(), 2, kFlashCrowd);
  if (options.empty()) return schedule;

  const int count = static_cast<int>(
      rng.uniform_int(config.min_entries, std::max(config.min_entries, config.max_entries)));
  bool crash_drawn = false;
  for (int i = 0; i < count; ++i) {
    Option option = options[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
    if (option == kCrash && crash_drawn) option = kError;  // one killer per run
    ChaosEntry entry;
    switch (option) {
      case kError: {
        entry.point = config.error_points[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.error_points.size()) - 1))];
        entry.scenario = draw_pattern(rng, config);
        break;
      }
      case kLatency: {
        entry.point = config.latency_points[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.latency_points.size()) - 1))];
        const sim::SimDuration delay = rng.uniform_int(sim::seconds(1), config.max_latency);
        entry.scenario = draw_pattern(rng, config).with_latency(delay);
        break;
      }
      case kCrash: {
        crash_drawn = true;
        entry.point = config.crash_points[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.crash_points.size()) - 1))];
        entry.scenario =
            fault::FaultScenario::crash_at_hit(static_cast<std::uint64_t>(rng.uniform_int(1, 40)));
        break;
      }
      case kFlashCrowd: {
        entry.kind = ChaosEntry::Kind::FlashCrowd;
        entry.from = rng.uniform_int(0, config.horizon / 2);
        entry.to = entry.from + rng.uniform_int(config.horizon / 8 + 1, config.horizon / 4 + 1);
        if (entry.to > config.horizon) entry.to = config.horizon;
        entry.intensity = rng.uniform(2.0, config.max_crowd_intensity);
        break;
      }
    }
    schedule.entries.push_back(std::move(entry));
  }
  return schedule;
}

util::Status write_chaos_repro(const std::string& path, const ChaosRepro& repro) {
  util::ByteWriter payload;
  payload.raw(std::string_view(kReproMagic, sizeof(kReproMagic)));
  payload.u64(repro.scenario_seed);
  repro.schedule.checkpoint(payload);
  util::ByteWriter framed;
  framed.raw(payload.bytes());
  framed.u32(util::crc32(payload.bytes()));
  auto written = recover::AtomicFile::write(path, framed.bytes(), /*now=*/0);
  if (!written) return util::Status::fail(written.code(), written.error());
  return util::Status::ok();
}

util::Result<ChaosRepro> read_chaos_repro(const std::string& path) {
  using R = util::Result<ChaosRepro>;
  std::ifstream in(path, std::ios::binary);
  if (!in) return R::fail(util::ErrorCode::kNotFound, "repro: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (bytes.size() < sizeof(kReproMagic) + sizeof(std::uint32_t)) {
    return R::fail(util::ErrorCode::kJournalCorrupt, "repro: file truncated");
  }
  const std::string payload = bytes.substr(0, bytes.size() - sizeof(std::uint32_t));
  util::ByteReader crc_reader(
      std::string_view(bytes).substr(bytes.size() - sizeof(std::uint32_t)));
  if (crc_reader.u32() != util::crc32(payload)) {
    return R::fail(util::ErrorCode::kJournalCorrupt, "repro: CRC mismatch");
  }
  if (payload.compare(0, sizeof(kReproMagic), kReproMagic, sizeof(kReproMagic)) != 0) {
    return R::fail(util::ErrorCode::kJournalCorrupt, "repro: bad magic");
  }
  util::ByteReader reader(std::string_view(payload).substr(sizeof(kReproMagic)));
  ChaosRepro repro;
  repro.scenario_seed = reader.u64();
  repro.schedule.restore(reader);
  if (!reader.ok() || !reader.exhausted()) {
    return R::fail(util::ErrorCode::kJournalCorrupt, "repro: undecodable payload");
  }
  return R::ok(std::move(repro));
}

}  // namespace fraudsim::chaos
