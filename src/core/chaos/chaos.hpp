// Deterministic chaos schedules.
//
// A ChaosSchedule is a reproducible fault plan for one simulated run: a list
// of entries that either arm a FaultScenario on a named FaultPoint (error
// bursts, every-Nth failures, latency spikes, one-shot crash kills) or inject
// a flash-crowd phase of legitimate demand. From a single generator seed,
// generate_schedule() draws a randomized-but-reproducible plan over the whole
// registered fault surface, so a chaos campaign is just a seed sweep — and a
// failing (seed, schedule) pair is replayable forever.
//
// Schedules serialise byte-stably (ByteWriter order), which is what makes
// automatic shrinking and on-disk minimized reproducers possible: the
// chaos_repro artifact written for a failing job is the schedule itself plus
// the scenario seed, CRC-framed, loadable by the chaos_soak CLI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault/fault.hpp"
#include "sim/time.hpp"
#include "util/result.hpp"

namespace fraudsim::chaos {

// One step of a chaos plan.
struct ChaosEntry {
  enum class Kind : std::uint8_t { ArmFault = 0, FlashCrowd = 1 };
  Kind kind = Kind::ArmFault;

  // ArmFault: arm `scenario` on the point named `point` (entries later in the
  // schedule win when two target the same point — exactly like sequential
  // arm() calls).
  std::string point;
  fault::FaultScenario scenario;

  // FlashCrowd: a surge of legitimate demand in [from, to) at `intensity`
  // times the baseline arrival rates.
  sim::SimTime from = 0;
  sim::SimTime to = 0;
  double intensity = 4.0;

  [[nodiscard]] std::string describe() const;
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);
};

struct ChaosSchedule {
  std::uint64_t seed = 0;  // generator seed (provenance; not re-drawn from)
  std::vector<ChaosEntry> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }
  // True when an ArmFault entry of the given kind targets `point`.
  [[nodiscard]] bool arms(const std::string& point, fault::FaultKind kind) const;

  [[nodiscard]] std::string describe() const;
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);
};

// Arms every ArmFault entry on the thread-local FaultRegistry, in schedule
// order. FlashCrowd entries are platform configuration, not registry state —
// apply them via scenario config (see runner). `include_crash` = false skips
// kCrash entries: the simulated-restart posture, where dependency faults (the
// environment) persist but the external process killer does not.
void arm_schedule(const ChaosSchedule& schedule, bool include_crash = true);

// What generate_schedule may draw from. The default catalogues cover every
// FaultPoint the platform registers today.
struct ChaosGeneratorConfig {
  // Horizon the drawn windows/bursts/crowds must fit inside.
  sim::SimTime horizon = sim::hours(12);
  int min_entries = 1;
  int max_entries = 6;

  bool allow_error = true;
  bool allow_latency = true;
  bool allow_crash = true;
  bool allow_flash_crowd = true;

  std::vector<std::string> error_points;
  std::vector<std::string> latency_points;
  std::vector<std::string> crash_points;

  sim::SimDuration max_latency = sim::seconds(20);
  double max_crowd_intensity = 8.0;
};

// Catalogue defaults for the current platform fault surface.
[[nodiscard]] ChaosGeneratorConfig default_generator_config(sim::SimTime horizon);

// Draws a schedule from `seed`. Deterministic: the same (seed, config) always
// produces the same schedule, entry for entry. At most one crash entry is
// drawn per schedule (a second killer could never fire).
[[nodiscard]] ChaosSchedule generate_schedule(std::uint64_t seed,
                                              const ChaosGeneratorConfig& config);

// --- Minimized-reproducer artifacts ----------------------------------------

// A replayable reproducer: the scenario seed plus the (usually minimized)
// schedule that re-triggers the failure. CRC-framed "FSC1" file.
struct ChaosRepro {
  std::uint64_t scenario_seed = 0;
  ChaosSchedule schedule;
};

[[nodiscard]] util::Status write_chaos_repro(const std::string& path, const ChaosRepro& repro);
[[nodiscard]] util::Result<ChaosRepro> read_chaos_repro(const std::string& path);

}  // namespace fraudsim::chaos
