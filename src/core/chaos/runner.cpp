#include "core/chaos/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "airline/inventory.hpp"
#include "app/application.hpp"
#include "core/fault/fault.hpp"
#include "core/scenario/fleet.hpp"

namespace fraudsim::chaos {

namespace {

namespace fs = std::filesystem;

// The planted oversell: a one-shot barrier hook that force-holds a ghost
// party one seat larger than the whole aircraft, guaranteeing held > capacity
// on that flight no matter what legitimate traffic already holds.
scenario::RecordedScenarioConfig::TrafficPhase to_phase(const ChaosEntry& e) {
  scenario::RecordedScenarioConfig::TrafficPhase phase;
  phase.from = e.from;
  phase.to = e.to;
  phase.intensity = e.intensity;
  return phase;
}

std::function<void(app::Application&, sim::SimTime)> make_oversell_hook() {
  auto fired = std::make_shared<bool>(false);
  return [fired](app::Application& app, sim::SimTime now) {
    if (*fired) return;
    *fired = true;
    const auto flights = app.inventory().flights();
    if (flights.empty()) return;
    const auto* flight = app.inventory().flight(flights.front());
    const int party = flight->capacity + 1;
    std::vector<airline::Passenger> ghosts;
    ghosts.reserve(static_cast<std::size_t>(party));
    for (int i = 0; i < party; ++i) {
      airline::Passenger p;
      p.first_name = "Ghost";
      p.surname = "Oversell" + std::to_string(i);
      p.birthdate = airline::Date{1990, 1, 1};
      p.email = "ghost@chaos.invalid";
      ghosts.push_back(std::move(p));
    }
    (void)app.inventory().debug_force_hold(now, flights.front(), std::move(ghosts),
                                           web::ActorId{0xC0FFEE});
  };
}

bool plants_bug(const ChaosJobConfig& config) {
  return config.plant_oversell_bug &&
         config.schedule.arms("sms.carrier.send", fault::FaultKind::kError) &&
         config.schedule.arms("detect.sweep.run", fault::FaultKind::kError);
}

}  // namespace

ChaosJobResult run_chaos_job(const ChaosJobConfig& config) {
  ChaosJobResult result;
  // Owns the thread-local registry: asserts the previous job cleaned up,
  // starts clean, and guarantees the next job inherits nothing. Nesting
  // inside the fleet worker's own guard is safe (both reset on the edges).
  fault::ScopedFaultReset fault_guard;

  invariant::InvariantRegistry invariants;
  scenario::RecordedScenarioConfig cfg = config.scenario;
  cfg.invariants = &invariants;
  for (const auto& e : config.schedule.entries) {
    if (e.kind == ChaosEntry::Kind::FlashCrowd) cfg.traffic_phases.push_back(to_phase(e));
  }
  const bool planted = plants_bug(config);
  if (planted) cfg.barrier_hook = make_oversell_hook();

  auto& registry = fault::FaultRegistry::global();
  arm_schedule(config.schedule, /*include_crash=*/true);
  auto recorded = scenario::record_run_dir(cfg, config.run_dir);

  scenario::RunArtifacts live;
  if (!recorded && recorded.code() == util::ErrorCode::kCrashInjected) {
    result.crashed = true;
    result.faults_injected += registry.total_injected();
    // Simulated restart: dependency faults persist across the death, the
    // external process killer does not.
    registry.reset();
    arm_schedule(config.schedule, /*include_crash=*/false);
    auto outcome = scenario::recover_run(cfg, config.run_dir);
    if (!outcome) {
      result.error = "recovery failed: " + outcome.error();
      return result;
    }
    if (!outcome.value().reused_complete_run && !outcome.value().prefix_verified) {
      result.error = "recovery completed without prefix verification";
      return result;
    }
    result.recovered = true;
    live = std::move(outcome.value().artifacts);
  } else if (!recorded) {
    result.error = "record failed: " + recorded.error();
    return result;
  } else {
    live = std::move(recorded.value());
  }
  result.invariant_checks = live.invariant_checks;
  result.violations = live.violations;
  result.faults_injected += registry.total_injected();

  // Replay oracle: the journal on disk (fresh or recovered — recovery leaves
  // a complete verified journal) must replay byte-identically under a fresh
  // arm of the same non-crash schedule. Planted-bug runs mutate state outside
  // the journal, so their divergence is expected — skip, the invariant oracle
  // is their judge.
  if (planted || !result.violations.empty()) {
    result.replay_skipped = true;
    return result;
  }
  registry.reset();
  arm_schedule(config.schedule, /*include_crash=*/false);
  auto replayed = scenario::replay_run(cfg, config.run_dir + "/run.journal");
  if (!replayed) {
    result.error = "replay oracle: " + replayed.error();
    return result;
  }
  result.replay_verified = replayed.value().metrics_csv == live.metrics_csv &&
                           replayed.value().weblog_csv == live.weblog_csv &&
                           replayed.value().soc_report == live.soc_report;
  if (!result.replay_verified) result.error = "replay diverged from the live artifacts";
  return result;
}

ChaosSchedule shrink_schedule(const ChaosSchedule& failing,
                              const std::function<bool(const ChaosSchedule&)>& still_fails) {
  const auto make = [&failing](std::vector<ChaosEntry> entries) {
    ChaosSchedule s;
    s.seed = failing.seed;
    s.entries = std::move(entries);
    return s;
  };
  // A failure that reproduces with no chaos at all is not schedule-induced.
  if (still_fails(make({}))) return make({});

  std::vector<ChaosEntry> current = failing.entries;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk = (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      std::vector<ChaosEntry> complement;
      complement.reserve(current.size());
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(current[i]);
      }
      if (complement.size() == current.size()) continue;
      if (still_fails(make(complement))) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (granularity >= current.size()) break;  // single-entry removals exhausted
    granularity = std::min(granularity * 2, current.size());
  }
  return make(std::move(current));
}

std::string ChaosCampaignReport::render() const {
  std::ostringstream out;
  out << "Chaos campaign: " << jobs << " jobs, " << passed << " passed, " << failures.size()
      << " failed\n";
  out << "  crashes injected/recovered: " << crashed << "/" << recovered << "\n";
  out << "  replay-verified runs:       " << replay_verified << "\n";
  out << "  faults injected:            " << faults_injected << "\n";
  out << "  invariant checks run:       " << invariant_checks << "\n";
  for (const auto& f : failures) {
    out << "FAIL schedule=" << f.schedule_seed << " seed=" << f.scenario_seed << " ("
        << f.schedule.entries.size() << " entries -> " << f.minimized.entries.size()
        << " minimized)\n";
    for (const auto& v : f.violations) out << "  " << v.render() << "\n";
    if (!f.detail.empty()) out << "  " << f.detail << "\n";
    for (const auto& e : f.minimized.entries) out << "  keep: " << e.describe() << "\n";
    if (!f.repro_path.empty()) out << "  repro: " << f.repro_path << "\n";
  }
  return out.str();
}

ChaosCampaignReport run_chaos_campaign(const ChaosCampaignConfig& config) {
  ChaosCampaignReport report;

  struct JobSpec {
    std::uint64_t schedule_seed = 0;
    std::uint64_t scenario_seed = 0;
    ChaosSchedule schedule;
    std::string run_dir;
  };
  std::vector<JobSpec> specs;
  specs.reserve(config.schedule_seeds.size() * config.scenario_seeds.size());
  std::vector<scenario::FleetJob> jobs;
  for (const std::uint64_t schedule_seed : config.schedule_seeds) {
    const ChaosSchedule schedule = generate_schedule(schedule_seed, config.generator);
    for (const std::uint64_t scenario_seed : config.scenario_seeds) {
      JobSpec spec;
      spec.schedule_seed = schedule_seed;
      spec.scenario_seed = scenario_seed;
      spec.schedule = schedule;
      spec.run_dir = config.work_dir + "/job_" + std::to_string(schedule_seed) + "_" +
                     std::to_string(scenario_seed);
      scenario::FleetJob job;
      job.variant = "chaos-" + std::to_string(schedule_seed);
      job.seed = scenario_seed;
      job.index = specs.size();
      specs.push_back(std::move(spec));
      jobs.push_back(std::move(job));
    }
  }
  fs::create_directories(config.work_dir);

  // Workers write disjoint slots; the reduction below runs after the join.
  std::vector<ChaosJobResult> results(specs.size());
  scenario::FleetOptions options;
  options.threads = config.threads;
  const auto run_one = [&](const scenario::FleetJob& job) {
    const JobSpec& spec = specs[job.index];
    ChaosJobConfig jc;
    jc.scenario = config.base;
    jc.scenario.seed = spec.scenario_seed;
    jc.schedule = spec.schedule;
    jc.run_dir = spec.run_dir;
    jc.plant_oversell_bug = config.plant_oversell_bug;
    fs::remove_all(spec.run_dir);
    ChaosJobResult r = run_chaos_job(jc);
    if (r.passed() && !config.keep_run_dirs) fs::remove_all(spec.run_dir);
    scenario::FleetRunResult out;
    out.observations["chaos.passed"] = r.passed() ? 1.0 : 0.0;
    out.observations["chaos.crashed"] = r.crashed ? 1.0 : 0.0;
    out.observations["chaos.faults_injected"] = static_cast<double>(r.faults_injected);
    out.observations["chaos.violations"] = static_cast<double>(r.violations.size());
    results[job.index] = std::move(r);
    return out;
  };
  (void)scenario::run_fleet(jobs, run_one, options);

  report.jobs = specs.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ChaosJobResult& r = results[i];
    if (r.passed()) ++report.passed;
    if (r.crashed) ++report.crashed;
    if (r.recovered) ++report.recovered;
    if (r.replay_verified) ++report.replay_verified;
    report.faults_injected += r.faults_injected;
    report.invariant_checks += r.invariant_checks;
  }

  // Failures shrink serially: ddmin re-runs jobs, and a deterministic
  // reproducer matters more than shrink latency.
  const std::string shrink_dir = config.work_dir + "/shrink";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ChaosJobResult& r = results[i];
    if (r.passed()) continue;
    const JobSpec& spec = specs[i];
    ChaosCampaignReport::Failure failure;
    failure.schedule_seed = spec.schedule_seed;
    failure.scenario_seed = spec.scenario_seed;
    failure.schedule = spec.schedule;
    failure.minimized = spec.schedule;
    failure.violations = r.violations;
    failure.detail = r.error;
    if (config.shrink_failures) {
      const auto still_fails = [&](const ChaosSchedule& candidate) {
        ChaosJobConfig jc;
        jc.scenario = config.base;
        jc.scenario.seed = spec.scenario_seed;
        jc.schedule = candidate;
        jc.run_dir = shrink_dir;
        jc.plant_oversell_bug = config.plant_oversell_bug;
        fs::remove_all(shrink_dir);
        return !run_chaos_job(jc).passed();
      };
      failure.minimized = shrink_schedule(spec.schedule, still_fails);
      fs::remove_all(shrink_dir);
    }
    const std::string repro_path = config.work_dir + "/chaos_repro_" +
                                   std::to_string(spec.schedule_seed) + "_" +
                                   std::to_string(spec.scenario_seed) + ".fsc";
    ChaosRepro repro;
    repro.scenario_seed = spec.scenario_seed;
    repro.schedule = failure.minimized;
    if (write_chaos_repro(repro_path, repro)) failure.repro_path = repro_path;
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace fraudsim::chaos
