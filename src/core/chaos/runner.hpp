// Chaos campaign runner: schedule × seed jobs against the full oracle stack.
//
// One chaos job = one recorded scenario run with a ChaosSchedule armed on top:
// dependency errors, latency spikes, flash crowds and at most one injected
// process crash. The job is judged by three oracles at once:
//
//   * the InvariantRegistry — every platform safety condition at every epoch
//     barrier plus end-of-run (faulted runs may diverge in OUTCOMES from a
//     clean run, but must never violate an invariant);
//   * crash recovery — when the schedule's crash fires, the torn run
//     directory must recover to a verified state (recover_run);
//   * replay consistency — the surviving journal must replay byte-identically
//     under the same re-armed fault posture (the differential twin: same
//     seed, same schedule, second execution).
//
// A failing (schedule, seed) pair is automatically shrunk with ddmin to a
// minimal entry subset that still fails, and persisted as a replayable
// chaos_repro artifact (see chaos.hpp) for offline debugging.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/chaos/chaos.hpp"
#include "core/invariant/invariant.hpp"
#include "core/scenario/replay_harness.hpp"

namespace fraudsim::chaos {

struct ChaosJobConfig {
  // The base scenario; the runner layers the schedule on top (invariants,
  // traffic phases and the planted-bug hook are overwritten).
  scenario::RecordedScenarioConfig scenario;
  ChaosSchedule schedule;
  // Crash-consistent run directory (journal, checkpoints, artifacts).
  std::string run_dir;
  // Deliberate invariant bug for oracle-sensitivity campaigns: when the
  // schedule arms BOTH trigger points (error scenarios on sms.carrier.send
  // and detect.sweep.run), a barrier hook force-holds an oversized ghost
  // party once, breaking seat conservation. Shrinking such a failure must
  // land on (a superset of) the two trigger entries.
  bool plant_oversell_bug = false;
};

struct ChaosJobResult {
  bool crashed = false;          // the schedule's crash entry fired
  bool recovered = false;        // recover_run restored a verified state
  bool replay_verified = false;  // journal replayed byte-identically
  bool replay_skipped = false;   // planted-bug runs mutate outside the journal
  std::uint64_t faults_injected = 0;
  std::uint64_t invariant_checks = 0;
  std::vector<invariant::Violation> violations;
  std::string error;  // empty unless the run or an oracle step failed hard

  // The pass criterion of a chaos campaign: no hard failure, no invariant
  // violation, and the replay oracle either verified or was knowingly
  // skipped.
  [[nodiscard]] bool passed() const {
    return error.empty() && violations.empty() && (replay_verified || replay_skipped);
  }
};

// Runs one schedule × scenario job under the full oracle stack. Owns the
// thread-local fault registry for its duration (ScopedFaultReset), so it can
// run on fleet workers or serially.
[[nodiscard]] ChaosJobResult run_chaos_job(const ChaosJobConfig& config);

// ddmin over schedule entries: returns a minimal (not necessarily minimum)
// sub-schedule for which `still_fails` holds. Deterministic: candidate order
// depends only on the input schedule. `still_fails` must hold for `failing`
// itself; it is re-invoked O(n^2) times worst case.
[[nodiscard]] ChaosSchedule shrink_schedule(
    const ChaosSchedule& failing, const std::function<bool(const ChaosSchedule&)>& still_fails);

// --- Campaigns --------------------------------------------------------------

struct ChaosCampaignConfig {
  scenario::RecordedScenarioConfig base;
  ChaosGeneratorConfig generator;
  // The campaign grid: every schedule seed crossed with every scenario seed.
  std::vector<std::uint64_t> schedule_seeds;
  std::vector<std::uint64_t> scenario_seeds;
  // Run directories and repro artifacts land under here.
  std::string work_dir;
  unsigned threads = 0;  // 0 = resolve_fleet_threads()
  bool plant_oversell_bug = false;
  // Passed jobs' run directories are deleted unless set (failures and their
  // shrink scratch always persist for post-mortem).
  bool keep_run_dirs = false;
  // ddmin failing schedules and write chaos_repro artifacts.
  bool shrink_failures = true;
};

struct ChaosCampaignReport {
  std::size_t jobs = 0;
  std::size_t passed = 0;
  std::size_t crashed = 0;
  std::size_t recovered = 0;
  std::size_t replay_verified = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t invariant_checks = 0;

  struct Failure {
    std::uint64_t schedule_seed = 0;
    std::uint64_t scenario_seed = 0;
    ChaosSchedule schedule;   // as drawn
    ChaosSchedule minimized;  // after ddmin (== schedule when shrinking off)
    std::vector<invariant::Violation> violations;
    std::string detail;
    std::string repro_path;  // written chaos_repro artifact ("" on write error)
  };
  std::vector<Failure> failures;  // job order

  [[nodiscard]] bool all_passed() const { return failures.empty(); }
  // Byte-stable ASCII summary for CLIs and bench gates.
  [[nodiscard]] std::string render() const;
};

// Runs the full grid on the fleet runner (deterministic reduction, per-worker
// fault registries), then serially shrinks each failure and writes its
// minimized reproducer to `<work_dir>/chaos_repro_<schedule>_<seed>.fsc`.
[[nodiscard]] ChaosCampaignReport run_chaos_campaign(const ChaosCampaignConfig& config);

}  // namespace fraudsim::chaos
