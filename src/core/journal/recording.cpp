#include "core/journal/recording.hpp"

namespace fraudsim::journal {

namespace {

void encode_phone(util::ByteWriter& out, const sms::PhoneNumber& number) {
  out.u16(number.country.packed());
  out.str(number.subscriber);
}

sms::PhoneNumber decode_phone(util::ByteReader& in) {
  const std::uint16_t packed = in.u16();
  sms::PhoneNumber number{net::CountryCode(static_cast<char>(packed >> 8),
                                           static_cast<char>(packed & 0xFF)),
                          in.str()};
  return number;
}

}  // namespace

void encode_context(util::ByteWriter& out, const app::ClientContext& ctx) {
  out.u32(ctx.ip.value());
  out.u64(ctx.session.value());
  fp::save_fingerprint(out, ctx.fingerprint);
  out.u64(ctx.actor.value());
  out.boolean(ctx.captcha_solved);
  out.boolean(ctx.loyalty_member);
  out.boolean(ctx.pointer_biometrics.has_value());
  if (ctx.pointer_biometrics) {
    const auto& f = *ctx.pointer_biometrics;
    out.f64(f.path_efficiency);
    out.f64(f.mean_speed);
    out.f64(f.speed_cv);
    out.f64(f.mean_curvature);
    out.f64(f.pause_fraction);
    out.f64(f.point_count);
    out.f64(f.duration_ms);
    out.u64(f.digest);
  }
  out.str(ctx.payment_token);
}

app::ClientContext decode_context(util::ByteReader& in) {
  app::ClientContext ctx;
  ctx.ip = net::IpV4{in.u32()};
  ctx.session = web::SessionId{in.u64()};
  ctx.fingerprint = fp::load_fingerprint(in);
  ctx.actor = web::ActorId{in.u64()};
  ctx.captcha_solved = in.boolean();
  ctx.loyalty_member = in.boolean();
  if (in.boolean()) {
    biometrics::TrajectoryFeatures f;
    f.path_efficiency = in.f64();
    f.mean_speed = in.f64();
    f.speed_cv = in.f64();
    f.mean_curvature = in.f64();
    f.pause_fraction = in.f64();
    f.point_count = in.f64();
    f.duration_ms = in.f64();
    f.digest = in.u64();
    ctx.pointer_biometrics = f;
  }
  ctx.payment_token = in.str();
  return ctx;
}

BrowseRecord decode_browse(util::ByteReader& in) {
  BrowseRecord r;
  r.ctx = decode_context(in);
  r.endpoint = static_cast<web::Endpoint>(in.u8());
  r.method = static_cast<web::HttpMethod>(in.u8());
  r.result = static_cast<app::CallStatus>(in.u8());
  return r;
}

HoldRecord decode_hold(util::ByteReader& in) {
  HoldRecord r;
  r.ctx = decode_context(in);
  r.flight = airline::FlightId{in.u64()};
  const auto count = in.u64();
  for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
    r.passengers.push_back(airline::load_passenger(in));
  }
  r.status = static_cast<app::CallStatus>(in.u8());
  r.pnr = in.str();
  r.decoy = in.boolean();
  return r;
}

QuoteFareRecord decode_quote_fare(util::ByteReader& in) {
  QuoteFareRecord r;
  r.ctx = decode_context(in);
  r.flight = airline::FlightId{in.u64()};
  r.fare = util::Money::from_micros(in.i64());
  return r;
}

PayRecord decode_pay(util::ByteReader& in) {
  PayRecord r;
  r.ctx = decode_context(in);
  r.pnr = in.str();
  r.result = static_cast<app::CallStatus>(in.u8());
  return r;
}

RequestOtpRecord decode_request_otp(util::ByteReader& in) {
  RequestOtpRecord r;
  r.ctx = decode_context(in);
  r.account = in.str();
  r.number = decode_phone(in);
  r.status = static_cast<app::CallStatus>(in.u8());
  r.code = in.str();
  return r;
}

VerifyOtpRecord decode_verify_otp(util::ByteReader& in) {
  VerifyOtpRecord r;
  r.ctx = decode_context(in);
  r.account = in.str();
  r.code = in.str();
  r.result = in.boolean();
  return r;
}

RetrieveBookingRecord decode_retrieve_booking(util::ByteReader& in) {
  RetrieveBookingRecord r;
  r.ctx = decode_context(in);
  r.pnr = in.str();
  r.result.found = in.boolean();
  r.result.held = in.boolean();
  r.result.ticketed = in.boolean();
  return r;
}

BoardingSmsRecord decode_boarding_sms(util::ByteReader& in) {
  BoardingSmsRecord r;
  r.ctx = decode_context(in);
  r.pnr = in.str();
  r.number = decode_phone(in);
  r.status = static_cast<app::CallStatus>(in.u8());
  r.detail = static_cast<airline::BoardingPassService::SmsResult>(in.u8());
  return r;
}

BoardingEmailRecord decode_boarding_email(util::ByteReader& in) {
  BoardingEmailRecord r;
  r.ctx = decode_context(in);
  r.pnr = in.str();
  r.result = static_cast<app::CallStatus>(in.u8());
  return r;
}

ActorRecord decode_actor(util::ByteReader& in) {
  ActorRecord r;
  r.id = web::ActorId{in.u64()};
  r.kind = static_cast<app::ActorKind>(in.u8());
  return r;
}

ControllerFitRecord decode_controller_fit(util::ByteReader& in) {
  ControllerFitRecord r;
  r.from = in.i64();
  r.to = in.i64();
  return r;
}

void RecordingJournal::append(RecordKind kind, sim::SimTime time,
                              const util::ByteWriter& fields) {
  if (!status_.is_ok()) return;  // latched: stop at the first torn frame
  if (auto s = writer_.append(kind, time, fields); !s.is_ok()) status_ = std::move(s);
}

void RecordingJournal::on_browse(sim::SimTime time, const app::ClientContext& ctx,
                                 web::Endpoint endpoint, web::HttpMethod method,
                                 app::CallStatus result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.u8(static_cast<std::uint8_t>(endpoint));
  w.u8(static_cast<std::uint8_t>(method));
  w.u8(static_cast<std::uint8_t>(result));
  append(RecordKind::Browse, time, w);
}

void RecordingJournal::on_hold(sim::SimTime time, const app::ClientContext& ctx,
                               airline::FlightId flight,
                               const std::vector<airline::Passenger>& passengers,
                               const app::HoldResult& result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.u64(flight.value());
  w.u64(passengers.size());
  for (const auto& p : passengers) airline::save_passenger(w, p);
  w.u8(static_cast<std::uint8_t>(result.status));
  w.str(result.pnr);
  w.boolean(result.decoy);
  append(RecordKind::Hold, time, w);
}

void RecordingJournal::on_quote_fare(sim::SimTime time, const app::ClientContext& ctx,
                                     airline::FlightId flight, util::Money result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.u64(flight.value());
  w.i64(result.micros());
  append(RecordKind::QuoteFare, time, w);
}

void RecordingJournal::on_pay(sim::SimTime time, const app::ClientContext& ctx,
                              const std::string& pnr, app::CallStatus result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.str(pnr);
  w.u8(static_cast<std::uint8_t>(result));
  append(RecordKind::Pay, time, w);
}

void RecordingJournal::on_request_otp(sim::SimTime time, const app::ClientContext& ctx,
                                      const std::string& account, const sms::PhoneNumber& number,
                                      const app::OtpResult& result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.str(account);
  encode_phone(w, number);
  w.u8(static_cast<std::uint8_t>(result.status));
  w.str(result.code);
  append(RecordKind::RequestOtp, time, w);
}

void RecordingJournal::on_verify_otp(sim::SimTime time, const app::ClientContext& ctx,
                                     const std::string& account, const std::string& code,
                                     bool result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.str(account);
  w.str(code);
  w.boolean(result);
  append(RecordKind::VerifyOtp, time, w);
}

void RecordingJournal::on_retrieve_booking(sim::SimTime time, const app::ClientContext& ctx,
                                           const std::string& pnr,
                                           const app::Application::BookingView& result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.str(pnr);
  w.boolean(result.found);
  w.boolean(result.held);
  w.boolean(result.ticketed);
  append(RecordKind::RetrieveBooking, time, w);
}

void RecordingJournal::on_boarding_sms(sim::SimTime time, const app::ClientContext& ctx,
                                       const std::string& pnr, const sms::PhoneNumber& number,
                                       const app::BoardingSmsResult& result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.str(pnr);
  encode_phone(w, number);
  w.u8(static_cast<std::uint8_t>(result.status));
  w.u8(static_cast<std::uint8_t>(result.detail));
  append(RecordKind::BoardingSms, time, w);
}

void RecordingJournal::on_boarding_email(sim::SimTime time, const app::ClientContext& ctx,
                                         const std::string& pnr, app::CallStatus result) {
  util::ByteWriter w;
  encode_context(w, ctx);
  w.str(pnr);
  w.u8(static_cast<std::uint8_t>(result));
  append(RecordKind::BoardingEmail, time, w);
}

void RecordingJournal::actor_registered(sim::SimTime time, web::ActorId id,
                                        app::ActorKind kind) {
  util::ByteWriter w;
  w.u64(id.value());
  w.u8(static_cast<std::uint8_t>(kind));
  append(RecordKind::ActorRegistered, time, w);
}

void RecordingJournal::expiry_sweep(sim::SimTime time) {
  append(RecordKind::ExpirySweep, time, util::ByteWriter{});
}

void RecordingJournal::mitigation_sweep(sim::SimTime time) {
  append(RecordKind::MitigationSweep, time, util::ByteWriter{});
}

void RecordingJournal::controller_fit(sim::SimTime time, sim::SimTime from, sim::SimTime to) {
  util::ByteWriter w;
  w.i64(from);
  w.i64(to);
  append(RecordKind::ControllerFit, time, w);
}

void RecordingJournal::mitigation_action(sim::SimTime time, const std::string& kind,
                                         const std::string& detail) {
  util::ByteWriter w;
  w.str(kind);
  w.str(detail);
  append(RecordKind::MitigationAction, time, w);
}

void RecordingJournal::checkpoint_blob(sim::SimTime time, const std::string& blob) {
  util::ByteWriter w;
  w.str(blob);
  append(RecordKind::Checkpoint, time, w);
}

}  // namespace fraudsim::journal
