// Append-only traffic journal: the record side of deterministic replay.
//
// A journal is a flat file of length-prefixed, CRC32-framed records:
//
//   file      := magic("FSJ1") frame*
//   frame     := u32 payload_len | u32 crc32(payload) | payload
//   payload   := u8 kind | i64 sim_time_ms | fields...
//
// All integers are little-endian (util::ByteWriter). The first frame is
// always a Header record carrying the format version, the scenario seed and
// a digest of the scenario configuration, so a reader can refuse to replay a
// journal against the wrong platform build-out.
//
// Durability model: a crashed recorder leaves at most one torn frame at the
// tail (the file is append-only and frames are written atomically from
// memory). On open the reader drops a final frame that is truncated or fails
// its CRC and reports `recovered_torn_tail()`; a bad CRC anywhere *before*
// the tail is real corruption and fails the open with kJournalCorrupt.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/archive.hpp"
#include "util/result.hpp"

namespace fraudsim::journal {

inline constexpr char kMagic[4] = {'F', 'S', 'J', '1'};
// v2: ClientContext frames carry the payment token (entity-graph linking).
inline constexpr std::uint32_t kFormatVersion = 2;

enum class RecordKind : std::uint8_t {
  Header = 1,
  ActorRegistered,   // ground-truth registry growth (id + kind)
  Browse,            // facade calls: arguments + observed outcome
  Hold,
  QuoteFare,
  Pay,
  RequestOtp,
  VerifyOtp,
  RetrieveBooking,
  BoardingSms,
  BoardingEmail,
  ExpirySweep,       // platform housekeeping the harness drives
  MitigationSweep,
  ControllerFit,     // NiP-baseline fit window
  MitigationAction,  // informational enforcement ledger entry (not replayed)
  Checkpoint,        // full platform state blob (restore point)
};

[[nodiscard]] const char* to_string(RecordKind k);

// One decoded record: `fields` is the payload after the kind/time prefix,
// ready to wrap in a util::ByteReader.
struct Record {
  RecordKind kind = RecordKind::Header;
  sim::SimTime time = 0;
  std::string fields;
};

// Appends frames to a journal file. Every path returns a typed Status; once
// a write fails the writer latches the error and refuses further appends
// (a half-written journal must not keep growing past the torn frame).
//
// Crash injection: append() consults crash.journal.frame (and
// crash.journal.checkpoint for Checkpoint records). When the armed point
// fires, a torn prefix of the frame is flushed to disk and a fault::SimCrash
// unwinds — the on-disk state is exactly a kill mid-append.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter() { out_.close(); }

  // Creates/truncates `path`, writes the magic and the Header frame.
  util::Status open(const std::string& path, std::uint64_t seed, std::uint64_t config_digest);

  // Frames and appends one record. `fields` is the record body after the
  // kind/time prefix (pass an empty writer for field-less records).
  util::Status append(RecordKind kind, sim::SimTime time, const util::ByteWriter& fields);

  // Flushes and closes; reports deferred write errors.
  util::Status close();

  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }

 private:
  std::ofstream out_;
  std::uint64_t frames_ = 0;
  bool failed_ = false;
};

// Frame-level scan without decoding record bodies: how much of the file is a
// valid, checksummed prefix, and what kind of damage (if any) follows it.
struct JournalScan {
  std::uint64_t total_bytes = 0;   // file size
  std::uint64_t intact_bytes = 0;  // magic + intact frames; == total_bytes when clean
  std::uint64_t frames = 0;        // intact frames, including the Header
  bool has_header = false;         // first frame parsed as a Header record
  bool torn_tail = false;          // crash residue after the intact prefix at EOF
  bool corrupt_mid_file = false;   // CRC-bad frame *before* EOF: unrecoverable damage
  [[nodiscard]] std::uint64_t tail_bytes() const { return total_bytes - intact_bytes; }
};

// Scans `path`. Fails only when the file cannot be opened or is not a
// journal at all (bad magic); damage beyond that is reported in the scan.
[[nodiscard]] util::Result<JournalScan> scan_journal(const std::string& path);

// Truncates a torn journal to its last good frame, appending the dropped
// tail bytes to `quarantine_path` for forensics first. No-op on a clean
// journal; fails with kJournalCorrupt on mid-file corruption (frame-level
// salvage is impossible — the caller should quarantine the whole file).
// Returns the pre-repair scan: torn_tail=true means a tail WAS truncated and
// tail_bytes() is the quarantined byte count.
[[nodiscard]] util::Result<JournalScan> truncate_torn_tail(const std::string& path,
                                                           const std::string& quarantine_path);

// Reads and validates a whole journal on open.
class JournalReader {
 public:
  // Loads `path`, verifies the magic, every frame's CRC and the Header
  // record. A torn tail (truncated or CRC-bad *final* frame) is dropped and
  // flagged; corruption anywhere else fails with kJournalCorrupt.
  util::Status open(const std::string& path);

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t config_digest() const { return config_digest_; }
  // True when a torn final frame was dropped during open().
  [[nodiscard]] bool recovered_torn_tail() const { return recovered_; }

  // All records after the Header, in file order.
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

 private:
  std::uint32_t version_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t config_digest_ = 0;
  bool recovered_ = false;
  std::vector<Record> records_;
};

}  // namespace fraudsim::journal
