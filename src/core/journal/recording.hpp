// Record payload codecs + the recording CallJournal.
//
// Every facade call is journalled as (client context, arguments, observed
// outcome). Encode and decode live side by side here so the wire layout has
// exactly one definition; the replay engine decodes with the same functions
// the recorder encoded with.
//
// The client context is recorded in full — including the complete
// fingerprint, not just its hash — because replay must re-present the same
// identity to the ingress policy and the fingerprint store.
#pragma once

#include <string>
#include <vector>

#include "app/actors.hpp"
#include "app/journal.hpp"
#include "core/journal/journal.hpp"

namespace fraudsim::journal {

// --- ClientContext ---------------------------------------------------------
void encode_context(util::ByteWriter& out, const app::ClientContext& ctx);
[[nodiscard]] app::ClientContext decode_context(util::ByteReader& in);

// --- Decoded record bodies -------------------------------------------------
struct BrowseRecord {
  app::ClientContext ctx;
  web::Endpoint endpoint = web::Endpoint::Home;
  web::HttpMethod method = web::HttpMethod::Get;
  app::CallStatus result = app::CallStatus::Ok;
};
[[nodiscard]] BrowseRecord decode_browse(util::ByteReader& in);

struct HoldRecord {
  app::ClientContext ctx;
  airline::FlightId flight;
  std::vector<airline::Passenger> passengers;
  // Outcome (rejection detail is derivable on replay and not verified).
  app::CallStatus status = app::CallStatus::Ok;
  std::string pnr;
  bool decoy = false;
};
[[nodiscard]] HoldRecord decode_hold(util::ByteReader& in);

struct QuoteFareRecord {
  app::ClientContext ctx;
  airline::FlightId flight;
  util::Money fare;
};
[[nodiscard]] QuoteFareRecord decode_quote_fare(util::ByteReader& in);

struct PayRecord {
  app::ClientContext ctx;
  std::string pnr;
  app::CallStatus result = app::CallStatus::Ok;
};
[[nodiscard]] PayRecord decode_pay(util::ByteReader& in);

struct RequestOtpRecord {
  app::ClientContext ctx;
  std::string account;
  sms::PhoneNumber number;
  app::CallStatus status = app::CallStatus::Ok;
  std::string code;
};
[[nodiscard]] RequestOtpRecord decode_request_otp(util::ByteReader& in);

struct VerifyOtpRecord {
  app::ClientContext ctx;
  std::string account;
  std::string code;
  bool result = false;
};
[[nodiscard]] VerifyOtpRecord decode_verify_otp(util::ByteReader& in);

struct RetrieveBookingRecord {
  app::ClientContext ctx;
  std::string pnr;
  app::Application::BookingView result;
};
[[nodiscard]] RetrieveBookingRecord decode_retrieve_booking(util::ByteReader& in);

struct BoardingSmsRecord {
  app::ClientContext ctx;
  std::string pnr;
  sms::PhoneNumber number;
  app::CallStatus status = app::CallStatus::Ok;
  airline::BoardingPassService::SmsResult detail =
      airline::BoardingPassService::SmsResult::Sent;
};
[[nodiscard]] BoardingSmsRecord decode_boarding_sms(util::ByteReader& in);

struct BoardingEmailRecord {
  app::ClientContext ctx;
  std::string pnr;
  app::CallStatus result = app::CallStatus::Ok;
};
[[nodiscard]] BoardingEmailRecord decode_boarding_email(util::ByteReader& in);

struct ActorRecord {
  web::ActorId id;
  app::ActorKind kind = app::ActorKind::Human;
};
[[nodiscard]] ActorRecord decode_actor(util::ByteReader& in);

struct ControllerFitRecord {
  sim::SimTime from = 0;
  sim::SimTime to = 0;
};
[[nodiscard]] ControllerFitRecord decode_controller_fit(util::ByteReader& in);

// --- Recording journal -----------------------------------------------------
// app::CallJournal implementation that frames every hook into the writer.
// Write failures latch into status(): the run keeps going (recording must
// never perturb the platform), the harness surfaces the error afterwards.
class RecordingJournal final : public app::CallJournal {
 public:
  explicit RecordingJournal(JournalWriter& writer) : writer_(writer) {}

  [[nodiscard]] const util::Status& status() const { return status_; }

  // Facade-call hooks (app::CallJournal).
  void on_browse(sim::SimTime time, const app::ClientContext& ctx, web::Endpoint endpoint,
                 web::HttpMethod method, app::CallStatus result) override;
  void on_hold(sim::SimTime time, const app::ClientContext& ctx, airline::FlightId flight,
               const std::vector<airline::Passenger>& passengers,
               const app::HoldResult& result) override;
  void on_quote_fare(sim::SimTime time, const app::ClientContext& ctx, airline::FlightId flight,
                     util::Money result) override;
  void on_pay(sim::SimTime time, const app::ClientContext& ctx, const std::string& pnr,
              app::CallStatus result) override;
  void on_request_otp(sim::SimTime time, const app::ClientContext& ctx,
                      const std::string& account, const sms::PhoneNumber& number,
                      const app::OtpResult& result) override;
  void on_verify_otp(sim::SimTime time, const app::ClientContext& ctx,
                     const std::string& account, const std::string& code, bool result) override;
  void on_retrieve_booking(sim::SimTime time, const app::ClientContext& ctx,
                           const std::string& pnr,
                           const app::Application::BookingView& result) override;
  void on_boarding_sms(sim::SimTime time, const app::ClientContext& ctx, const std::string& pnr,
                       const sms::PhoneNumber& number,
                       const app::BoardingSmsResult& result) override;
  void on_boarding_email(sim::SimTime time, const app::ClientContext& ctx,
                         const std::string& pnr, app::CallStatus result) override;

  // Harness-driven records.
  void actor_registered(sim::SimTime time, web::ActorId id, app::ActorKind kind);
  void expiry_sweep(sim::SimTime time);
  void mitigation_sweep(sim::SimTime time);
  void controller_fit(sim::SimTime time, sim::SimTime from, sim::SimTime to);
  void mitigation_action(sim::SimTime time, const std::string& kind, const std::string& detail);
  void checkpoint_blob(sim::SimTime time, const std::string& blob);

 private:
  void append(RecordKind kind, sim::SimTime time, const util::ByteWriter& fields);

  JournalWriter& writer_;
  util::Status status_ = util::Status::ok();
};

}  // namespace fraudsim::journal
