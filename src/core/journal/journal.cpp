#include "core/journal/journal.hpp"

#include <filesystem>
#include <sstream>

#include "core/fault/crash.hpp"
#include "util/hash.hpp"

namespace fraudsim::journal {

const char* to_string(RecordKind k) {
  switch (k) {
    case RecordKind::Header:
      return "header";
    case RecordKind::ActorRegistered:
      return "actor-registered";
    case RecordKind::Browse:
      return "browse";
    case RecordKind::Hold:
      return "hold";
    case RecordKind::QuoteFare:
      return "quote-fare";
    case RecordKind::Pay:
      return "pay";
    case RecordKind::RequestOtp:
      return "request-otp";
    case RecordKind::VerifyOtp:
      return "verify-otp";
    case RecordKind::RetrieveBooking:
      return "retrieve-booking";
    case RecordKind::BoardingSms:
      return "boarding-sms";
    case RecordKind::BoardingEmail:
      return "boarding-email";
    case RecordKind::ExpirySweep:
      return "expiry-sweep";
    case RecordKind::MitigationSweep:
      return "mitigation-sweep";
    case RecordKind::ControllerFit:
      return "controller-fit";
    case RecordKind::MitigationAction:
      return "mitigation-action";
    case RecordKind::Checkpoint:
      return "checkpoint";
  }
  return "?";
}

util::Status JournalWriter::open(const std::string& path, std::uint64_t seed,
                                 std::uint64_t config_digest) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    failed_ = true;
    return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                              "journal: cannot open " + path + " for writing");
  }
  failed_ = false;
  frames_ = 0;
  out_.write(kMagic, sizeof(kMagic));
  util::ByteWriter header;
  header.u32(kFormatVersion);
  header.u64(seed);
  header.u64(config_digest);
  return append(RecordKind::Header, 0, header);
}

util::Status JournalWriter::append(RecordKind kind, sim::SimTime time,
                                   const util::ByteWriter& fields) {
  if (failed_) {
    return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                              "journal: writer failed earlier; append refused");
  }
  if (!out_.is_open()) {
    return util::Status::fail(util::ErrorCode::kIoWriteFailed, "journal: writer not open");
  }
  util::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(kind));
  payload.i64(time);
  payload.raw(fields.bytes());

  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(util::crc32(payload.bytes()));
  frame.raw(payload.bytes());

  const char* crash_point = kind == RecordKind::Checkpoint ? fault::kCrashJournalCheckpoint
                                                           : fault::kCrashJournalFrame;
  if (fault::crash_due(crash_point, time)) {
    // Simulated kill mid-append: a torn prefix of the frame reaches disk and
    // the writer latches failed so a catch-and-continue cannot keep going.
    const auto& point = fault::FaultRegistry::global().point(crash_point);
    const std::size_t cut = fault::torn_prefix(frame.size(), point.hits());
    out_.write(frame.bytes().data(), static_cast<std::streamsize>(cut));
    out_.flush();
    failed_ = true;
    throw fault::SimCrash(crash_point, time);
  }

  out_.write(frame.bytes().data(), static_cast<std::streamsize>(frame.size()));
  if (out_.fail()) {
    failed_ = true;
    return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                              std::string("journal: write failed on frame ") +
                                  std::to_string(frames_) + " (" + to_string(kind) + ")");
  }
  ++frames_;
  // Surface deferred stream errors (disk full past the stdio buffer) while
  // the run can still react, not only at close: flush every checkpoint
  // boundary and every 64th frame.
  if (kind == RecordKind::Checkpoint || frames_ % 64 == 0) {
    out_.flush();
    if (out_.fail()) {
      failed_ = true;
      return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                                std::string("journal: flush failed after frame ") +
                                    std::to_string(frames_ - 1) + " (" + to_string(kind) + ")");
    }
  }
  return util::Status::ok();
}

util::Status JournalWriter::close() {
  if (!out_.is_open()) return util::Status::ok();
  out_.flush();
  const bool flush_failed = out_.fail();
  out_.close();
  if (failed_ || flush_failed) {
    return util::Status::fail(util::ErrorCode::kIoWriteFailed, "journal: close/flush failed");
  }
  return util::Status::ok();
}

util::Status JournalReader::open(const std::string& path) {
  recovered_ = false;
  records_.clear();

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return util::Status::fail(util::ErrorCode::kNotFound, "journal: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  if (bytes.size() < sizeof(kMagic) ||
      std::string_view(bytes.data(), sizeof(kMagic)) != std::string_view(kMagic, sizeof(kMagic))) {
    return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                              "journal: bad magic in " + path);
  }

  constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
  std::size_t pos = sizeof(kMagic);
  bool saw_header = false;
  while (pos < bytes.size()) {
    // Torn-tail rule: anything that cannot be a complete, checksummed frame
    // at end-of-file is the crash residue of the last append — drop it. The
    // same defect anywhere earlier means the middle of the file was damaged.
    if (bytes.size() - pos < kFrameHeader) {
      recovered_ = true;
      break;
    }
    util::ByteReader prefix(std::string_view(bytes).substr(pos, kFrameHeader));
    const std::uint32_t len = prefix.u32();
    const std::uint32_t crc = prefix.u32();
    if (bytes.size() - pos - kFrameHeader < len) {
      recovered_ = true;
      break;
    }
    const std::string_view payload = std::string_view(bytes).substr(pos + kFrameHeader, len);
    if (util::crc32(payload) != crc) {
      if (pos + kFrameHeader + len == bytes.size()) {
        recovered_ = true;
        break;
      }
      return util::Status::fail(
          util::ErrorCode::kJournalCorrupt,
          "journal: CRC mismatch mid-file at offset " + std::to_string(pos));
    }
    util::ByteReader body(payload);
    Record record;
    record.kind = static_cast<RecordKind>(body.u8());
    record.time = body.i64();
    record.fields = std::string(payload.substr(payload.size() - body.remaining()));
    if (!body.ok()) {
      return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                                "journal: short payload at offset " + std::to_string(pos));
    }
    if (!saw_header) {
      if (record.kind != RecordKind::Header) {
        return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                                  "journal: first frame is not a header");
      }
      util::ByteReader header(record.fields);
      version_ = header.u32();
      seed_ = header.u64();
      config_digest_ = header.u64();
      if (!header.ok() || version_ != kFormatVersion) {
        return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                                  "journal: unsupported header (version " +
                                      std::to_string(version_) + ")");
      }
      saw_header = true;
    } else {
      records_.push_back(std::move(record));
    }
    pos += kFrameHeader + len;
  }
  if (!saw_header) {
    return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                              "journal: no intact header frame in " + path);
  }
  return util::Status::ok();
}

util::Result<JournalScan> scan_journal(const std::string& path) {
  using R = util::Result<JournalScan>;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return R::fail(util::ErrorCode::kNotFound, "journal: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  if (bytes.size() < sizeof(kMagic) ||
      std::string_view(bytes.data(), sizeof(kMagic)) != std::string_view(kMagic, sizeof(kMagic))) {
    return R::fail(util::ErrorCode::kJournalCorrupt, "journal: bad magic in " + path);
  }

  JournalScan scan;
  scan.total_bytes = bytes.size();
  constexpr std::size_t kFrameHeader = 8;
  std::size_t pos = sizeof(kMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeader) break;
    util::ByteReader prefix(std::string_view(bytes).substr(pos, kFrameHeader));
    const std::uint32_t len = prefix.u32();
    const std::uint32_t crc = prefix.u32();
    if (bytes.size() - pos - kFrameHeader < len) break;
    const std::string_view payload = std::string_view(bytes).substr(pos + kFrameHeader, len);
    if (util::crc32(payload) != crc) {
      // CRC-bad frame that is not the file tail = damage inside the file.
      scan.corrupt_mid_file = pos + kFrameHeader + len != bytes.size();
      break;
    }
    if (scan.frames == 0 && !payload.empty() &&
        static_cast<RecordKind>(static_cast<std::uint8_t>(payload[0])) == RecordKind::Header) {
      scan.has_header = true;
    }
    ++scan.frames;
    pos += kFrameHeader + len;
  }
  scan.intact_bytes = pos;
  scan.torn_tail = !scan.corrupt_mid_file && scan.intact_bytes < scan.total_bytes;
  return R::ok(scan);
}

util::Result<JournalScan> truncate_torn_tail(const std::string& path,
                                             const std::string& quarantine_path) {
  using R = util::Result<JournalScan>;
  auto scanned = scan_journal(path);
  if (!scanned) return scanned;
  JournalScan scan = scanned.value();
  if (scan.corrupt_mid_file) {
    return R::fail(util::ErrorCode::kJournalCorrupt,
                   "journal: mid-file corruption in " + path + " — tail truncation cannot help");
  }
  if (!scan.torn_tail) return R::ok(scan);

  {
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(scan.intact_bytes));
    std::string tail(static_cast<std::size_t>(scan.tail_bytes()), '\0');
    in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
    std::ofstream out(quarantine_path, std::ios::binary | std::ios::app);
    if (!in.good() || !out.is_open()) {
      return R::fail(util::ErrorCode::kIoWriteFailed,
                     "journal: cannot quarantine tail to " + quarantine_path);
    }
    out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
    out.flush();
    if (out.fail()) {
      return R::fail(util::ErrorCode::kIoWriteFailed,
                     "journal: quarantine write failed for " + quarantine_path);
    }
  }
  std::error_code ec;
  std::filesystem::resize_file(path, scan.intact_bytes, ec);
  if (ec) {
    return R::fail(util::ErrorCode::kIoWriteFailed,
                   "journal: truncate failed for " + path + ": " + ec.message());
  }
  return R::ok(scan);
}

}  // namespace fraudsim::journal
