#include "core/journal/journal.hpp"

#include <sstream>

#include "util/hash.hpp"

namespace fraudsim::journal {

const char* to_string(RecordKind k) {
  switch (k) {
    case RecordKind::Header:
      return "header";
    case RecordKind::ActorRegistered:
      return "actor-registered";
    case RecordKind::Browse:
      return "browse";
    case RecordKind::Hold:
      return "hold";
    case RecordKind::QuoteFare:
      return "quote-fare";
    case RecordKind::Pay:
      return "pay";
    case RecordKind::RequestOtp:
      return "request-otp";
    case RecordKind::VerifyOtp:
      return "verify-otp";
    case RecordKind::RetrieveBooking:
      return "retrieve-booking";
    case RecordKind::BoardingSms:
      return "boarding-sms";
    case RecordKind::BoardingEmail:
      return "boarding-email";
    case RecordKind::ExpirySweep:
      return "expiry-sweep";
    case RecordKind::MitigationSweep:
      return "mitigation-sweep";
    case RecordKind::ControllerFit:
      return "controller-fit";
    case RecordKind::MitigationAction:
      return "mitigation-action";
    case RecordKind::Checkpoint:
      return "checkpoint";
  }
  return "?";
}

util::Status JournalWriter::open(const std::string& path, std::uint64_t seed,
                                 std::uint64_t config_digest) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    failed_ = true;
    return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                              "journal: cannot open " + path + " for writing");
  }
  failed_ = false;
  frames_ = 0;
  out_.write(kMagic, sizeof(kMagic));
  util::ByteWriter header;
  header.u32(kFormatVersion);
  header.u64(seed);
  header.u64(config_digest);
  return append(RecordKind::Header, 0, header);
}

util::Status JournalWriter::append(RecordKind kind, sim::SimTime time,
                                   const util::ByteWriter& fields) {
  if (failed_) {
    return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                              "journal: writer failed earlier; append refused");
  }
  if (!out_.is_open()) {
    return util::Status::fail(util::ErrorCode::kIoWriteFailed, "journal: writer not open");
  }
  util::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(kind));
  payload.i64(time);
  payload.raw(fields.bytes());

  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(util::crc32(payload.bytes()));
  frame.raw(payload.bytes());
  out_.write(frame.bytes().data(), static_cast<std::streamsize>(frame.size()));
  if (out_.fail()) {
    failed_ = true;
    return util::Status::fail(util::ErrorCode::kIoWriteFailed,
                              std::string("journal: write failed on frame ") +
                                  std::to_string(frames_) + " (" + to_string(kind) + ")");
  }
  ++frames_;
  return util::Status::ok();
}

util::Status JournalWriter::close() {
  if (!out_.is_open()) return util::Status::ok();
  out_.flush();
  const bool flush_failed = out_.fail();
  out_.close();
  if (failed_ || flush_failed) {
    return util::Status::fail(util::ErrorCode::kIoWriteFailed, "journal: close/flush failed");
  }
  return util::Status::ok();
}

util::Status JournalReader::open(const std::string& path) {
  recovered_ = false;
  records_.clear();

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return util::Status::fail(util::ErrorCode::kNotFound, "journal: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  if (bytes.size() < sizeof(kMagic) ||
      std::string_view(bytes.data(), sizeof(kMagic)) != std::string_view(kMagic, sizeof(kMagic))) {
    return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                              "journal: bad magic in " + path);
  }

  constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
  std::size_t pos = sizeof(kMagic);
  bool saw_header = false;
  while (pos < bytes.size()) {
    // Torn-tail rule: anything that cannot be a complete, checksummed frame
    // at end-of-file is the crash residue of the last append — drop it. The
    // same defect anywhere earlier means the middle of the file was damaged.
    if (bytes.size() - pos < kFrameHeader) {
      recovered_ = true;
      break;
    }
    util::ByteReader prefix(std::string_view(bytes).substr(pos, kFrameHeader));
    const std::uint32_t len = prefix.u32();
    const std::uint32_t crc = prefix.u32();
    if (bytes.size() - pos - kFrameHeader < len) {
      recovered_ = true;
      break;
    }
    const std::string_view payload = std::string_view(bytes).substr(pos + kFrameHeader, len);
    if (util::crc32(payload) != crc) {
      if (pos + kFrameHeader + len == bytes.size()) {
        recovered_ = true;
        break;
      }
      return util::Status::fail(
          util::ErrorCode::kJournalCorrupt,
          "journal: CRC mismatch mid-file at offset " + std::to_string(pos));
    }
    util::ByteReader body(payload);
    Record record;
    record.kind = static_cast<RecordKind>(body.u8());
    record.time = body.i64();
    record.fields = std::string(payload.substr(payload.size() - body.remaining()));
    if (!body.ok()) {
      return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                                "journal: short payload at offset " + std::to_string(pos));
    }
    if (!saw_header) {
      if (record.kind != RecordKind::Header) {
        return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                                  "journal: first frame is not a header");
      }
      util::ByteReader header(record.fields);
      version_ = header.u32();
      seed_ = header.u64();
      config_digest_ = header.u64();
      if (!header.ok() || version_ != kFormatVersion) {
        return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                                  "journal: unsupported header (version " +
                                      std::to_string(version_) + ")");
      }
      saw_header = true;
    } else {
      records_.push_back(std::move(record));
    }
    pos += kFrameHeader + len;
  }
  if (!saw_header) {
    return util::Status::fail(util::ErrorCode::kJournalCorrupt,
                              "journal: no intact header frame in " + path);
  }
  return util::Status::ok();
}

}  // namespace fraudsim::journal
