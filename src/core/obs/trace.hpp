// Per-request trace spans.
//
// Every request entering the Application facade starts a root span; the
// layers it traverses (policy, inventory, SMS, OTP, detection, mitigation)
// open child spans, annotate them with key:value evidence (rule fired,
// brownout state, fault injections, detector verdicts), set an outcome, and
// finish them with sim-time stamps. Completed spans land in a bounded ring
// buffer so full-week scenarios retain the most recent window at O(capacity)
// memory.
//
// Determinism contract: the recorder consumes no randomness and never reads
// the wall clock. Trace ids are sequential; the sampling knob keeps every
// Nth trace (trace 1 always sampled), so two identical runs record
// byte-identical span streams. An unsampled TraceContext is a null handle —
// every operation on it is a no-op, which is what makes default-on tracing
// affordable.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/archive.hpp"

namespace fraudsim::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

struct SpanAnnotation {
  std::string key;
  std::string value;
};

struct SpanRecord {
  TraceId trace = 0;
  SpanId span = 0;
  SpanId parent = 0;  // 0 = root span of its trace
  std::string name;
  sim::SimTime start = 0;
  sim::SimTime end = -1;  // -1 while open
  std::string outcome;    // "ok", "blocked", "shed", "business-reject", ...
  std::vector<SpanAnnotation> annotations;
};

struct TraceConfig {
  // Completed spans retained (ring buffer; oldest overwritten first).
  std::size_t ring_capacity = 4096;
  // Record every Nth trace (1 = full fidelity, 0 = tracing off). Sampling is
  // deterministic on the trace counter, not random.
  std::uint64_t sample_every = 16;
};

class TraceRecorder;

// Lightweight, copyable handle to one open span. A default-constructed (or
// unsampled) context is inert: child()/annotate()/finish() all no-op.
class TraceContext {
 public:
  TraceContext() = default;

  [[nodiscard]] bool sampled() const { return recorder_ != nullptr; }
  [[nodiscard]] TraceId trace_id() const { return trace_; }
  [[nodiscard]] SpanId span_id() const { return span_; }

  // Opens a child span under this one.
  [[nodiscard]] TraceContext child(std::string_view name, sim::SimTime now) const;
  void annotate(std::string_view key, std::string_view value) const;
  void set_outcome(std::string_view outcome) const;
  // Closes the span and moves it to the ring buffer. Safe to call on an
  // inert context; calling twice is a no-op.
  void finish(sim::SimTime now) const;

 private:
  friend class TraceRecorder;
  TraceContext(TraceRecorder* recorder, TraceId trace, SpanId span)
      : recorder_(recorder), trace_(trace), span_(span) {}
  TraceRecorder* recorder_ = nullptr;
  TraceId trace_ = 0;
  SpanId span_ = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Starts a new trace with a root span. Every call advances the trace
  // counter (so ids are stable whether or not a given trace is sampled); the
  // returned context is inert for unsampled traces.
  TraceContext start_trace(std::string_view name, sim::SimTime now);

  [[nodiscard]] const TraceConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t traces_started() const { return trace_counter_; }
  [[nodiscard]] std::uint64_t traces_sampled() const { return traces_sampled_; }
  [[nodiscard]] std::uint64_t spans_recorded() const { return spans_recorded_; }
  [[nodiscard]] std::size_t open_spans() const { return open_.size(); }

  // Completed spans, oldest first (at most ring_capacity of them).
  [[nodiscard]] std::vector<SpanRecord> completed() const;

  // JSON lines export, one completed span per line, oldest first.
  void write_jsonl(std::ostream& out) const;

  void clear();

  // Checkpoint support. Taken between requests, so open_ is expected to be
  // empty; counters and the completed-span ring restore exactly.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  friend class TraceContext;
  SpanId open_span(TraceId trace, SpanId parent, std::string_view name, sim::SimTime now);
  void annotate(SpanId span, std::string_view key, std::string_view value);
  void set_outcome(SpanId span, std::string_view outcome);
  void finish(SpanId span, sim::SimTime now);

  TraceConfig config_;
  std::uint64_t trace_counter_ = 0;
  std::uint64_t traces_sampled_ = 0;
  std::uint64_t spans_recorded_ = 0;
  SpanId next_span_ = 1;
  std::unordered_map<SpanId, SpanRecord> open_;
  std::vector<SpanRecord> ring_;
  std::size_t ring_head_ = 0;  // next write position once the ring is full
};

}  // namespace fraudsim::obs
