// Wall-clock profiling hooks.
//
// Unlike metrics and traces (which are sim-time and default-on), the profiler
// measures REAL elapsed time and is therefore excluded from the simulation's
// determinism contract: it is disabled unless the process runs with
// FRAUDSIM_PROFILE=1 (or a test calls set_enabled). When disabled, a
// ScopedTimer is two branches and no clock reads, so hooks can stay compiled
// into hot paths.
//
// Phases are pre-registered (phase() -> PhaseId) exactly like metric handles;
// record() is an array index plus two adds. The profiler is a process-wide
// singleton because wall-clock phase totals are inherently per-process, not
// per-simulation-instance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fraudsim::obs {

using PhaseId = std::size_t;

class Profiler {
 public:
  static Profiler& instance();

  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  // Test/bench override; FRAUDSIM_PROFILE=1 is read once at first access.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Register-or-lookup a phase; the same name always maps to the same id.
  PhaseId phase(std::string_view name);

  // The singleton is shared by every thread (wall-clock totals are inherently
  // per-process), so the phase table is mutex-protected. Contention is nil in
  // the default disabled state — ScopedTimer never reaches record() — and
  // acceptable when profiling, where the lock cost drowns in the measured
  // phases themselves.
  void record(PhaseId id, std::uint64_t ns) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (id < phases_.size()) {
      ++phases_[id].calls;
      phases_[id].total_ns += ns;
    }
  }

  struct PhaseTotals {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  // All phases with at least one recording, sorted by descending total time.
  [[nodiscard]] std::vector<PhaseTotals> totals() const;

  // ASCII table: phase | calls | total ms | mean us | share %.
  [[nodiscard]] std::string report() const;

  // Zeroes call/time tallies (phase registrations survive).
  void reset();

 private:
  Profiler();
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<PhaseTotals> phases_;
};

// RAII wall-clock timer for one profiler phase. Reads the steady clock only
// when the profiler is enabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseId id)
      : id_(id), armed_(Profiler::instance().enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      Profiler::instance().record(id_, static_cast<std::uint64_t>(ns));
    }
  }

 private:
  PhaseId id_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace fraudsim::obs
