// Metrics registry: the platform's single source of truth for counters,
// gauges, and fixed-bucket histograms.
//
// Design contract (see DESIGN.md §"Observability"):
//   * Registration happens once, at subsystem construction, and returns a
//     pre-resolved handle (a raw pointer to the metric's cell). Hot-path
//     updates through a handle are a single memory write — no string lookup,
//     no hashing, no allocation.
//   * The registry is deterministic: snapshots iterate metrics in name order,
//     exports (ASCII table / CSV / JSON lines) are byte-stable across
//     identical runs, and nothing in the subsystem reads the wall clock or
//     consumes randomness — recording telemetry must never perturb the
//     simulation it observes.
//   * Registering an existing name returns the SAME handle (handle reuse), so
//     independent subsystems can share a series by agreeing on its name.
//
// Ownership: one `MetricsRegistry` per platform instance (the Application
// owns the platform registry); standalone components own a private registry
// when none is injected, so unit tests see isolated counts.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/archive.hpp"

namespace fraudsim::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] const char* to_string(MetricKind k);

namespace detail {

struct HistogramCell {
  std::vector<double> bounds;          // ascending upper bucket bounds
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct MetricCell {
  MetricKind kind = MetricKind::Counter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  HistogramCell hist;
};

}  // namespace detail

// Pre-resolved counter handle. Copyable, trivially cheap; a default
// constructed handle is unbound and every operation on it is a no-op.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const {
    if (cell_ != nullptr) cell_->counter += n;
  }
  [[nodiscard]] std::uint64_t value() const { return cell_ != nullptr ? cell_->counter : 0; }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::MetricCell* cell) : cell_(cell) {}
  detail::MetricCell* cell_ = nullptr;
};

// Pre-resolved gauge handle (last-write-wins double).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const {
    if (cell_ != nullptr) cell_->gauge = v;
  }
  void add(double d) const {
    if (cell_ != nullptr) cell_->gauge += d;
  }
  [[nodiscard]] double value() const { return cell_ != nullptr ? cell_->gauge : 0.0; }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::MetricCell* cell) : cell_(cell) {}
  detail::MetricCell* cell_ = nullptr;
};

// Pre-resolved fixed-bucket histogram handle. observe() is O(log buckets)
// (branchless lower-bound over a small fixed array) with no allocation.
class Histogram {
 public:
  Histogram() = default;

  void observe(double v) const;

  [[nodiscard]] std::uint64_t count() const { return cell_ != nullptr ? cell_->hist.count : 0; }
  [[nodiscard]] double sum() const { return cell_ != nullptr ? cell_->hist.sum : 0.0; }
  [[nodiscard]] double min() const { return cell_ != nullptr ? cell_->hist.min : 0.0; }
  [[nodiscard]] double max() const { return cell_ != nullptr ? cell_->hist.max : 0.0; }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

  // Percentile estimate (p in [0,1]) by linear interpolation inside the
  // target bucket, clamped to the observed [min, max]. Deterministic; 0 when
  // empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::MetricCell* cell) : cell_(cell) {}
  detail::MetricCell* cell_ = nullptr;
};

// Percentile estimate over a raw histogram cell (shared by Histogram and
// snapshot rows).
[[nodiscard]] double histogram_percentile(const detail::HistogramCell& hist, double p);

// Default latency bucket bounds (milliseconds): fine-grained around typical
// modeled service costs, exponential above.
[[nodiscard]] std::vector<double> default_latency_bounds_ms();

// Flat, copyable view of a registry at one instant. Rows are sorted by name;
// all renderings are byte-stable for identical registry contents.
struct MetricsSnapshot {
  struct Row {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t count = 0;  // counter value / histogram sample count
    double value = 0.0;       // gauge value / histogram sum
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    // Observed extrema (histograms only); carried so a snapshot is a lossless
    // shard for MetricsRegistry::merge.
    double min = 0.0;
    double max = 0.0;
    // (upper bound, count) pairs; histograms only. The final pair's bound is
    // +inf, rendered as "inf".
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  std::vector<Row> rows;

  [[nodiscard]] const Row* find(std::string_view name) const;
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  // Lossless byte round-trip so a snapshot can travel as a persisted fleet
  // result shard: restore(checkpoint(s)) merges exactly like s itself.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

  // ASCII table (one row per metric).
  [[nodiscard]] std::string render_table(const std::string& title = "Metrics") const;
  // CSV: name,kind,count,value,p50,p90,p99
  void write_csv(std::ostream& out) const;
  // JSON lines, one metric per line (histograms include bucket arrays).
  void write_jsonl(std::ostream& out) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Register-or-lookup. Re-registering an existing name returns a handle to
  // the same cell; the kind must match the original registration.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  // Read a counter by name without creating it (0 when absent).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  // All counters whose name starts with `prefix`, in name order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters_with_prefix(
      std::string_view prefix) const;

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] bool empty() const { return cells_.empty(); }

  // Deterministic snapshot: rows in name order, percentiles precomputed.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Shard merge (the fleet runner's reduction): fold another registry's
  // series into this one. Counters and histograms add (bucket-wise; bucket
  // bounds must match the local registration), gauges SUM — last-write-wins
  // has no meaning across independent shards, and a sum keeps merge
  // associative and commutative. Absent series are created, so merging into
  // an empty registry clones the shard. Deterministic: result depends only on
  // the multiset of shards merged, not the merge order.
  void merge(const MetricsSnapshot& shard);
  void merge(const MetricsRegistry& other);

  // Checkpoint support. Restore writes values INTO existing cells (creating
  // any the restoring process has not registered yet), so pre-resolved
  // handles held by subsystems stay valid across a restore.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  detail::MetricCell& cell(std::string_view name, MetricKind kind);
  // std::map keeps name order for deterministic iteration; unique_ptr keeps
  // cell addresses stable so handles survive later registrations.
  std::map<std::string, std::unique_ptr<detail::MetricCell>, std::less<>> cells_;
};

}  // namespace fraudsim::obs
