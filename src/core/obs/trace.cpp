#include "core/obs/trace.hpp"

#include <algorithm>
#include <utility>

namespace fraudsim::obs {

// --- TraceContext -----------------------------------------------------------

TraceContext TraceContext::child(std::string_view name, sim::SimTime now) const {
  if (recorder_ == nullptr) return {};
  const SpanId id = recorder_->open_span(trace_, span_, name, now);
  return TraceContext(recorder_, trace_, id);
}

void TraceContext::annotate(std::string_view key, std::string_view value) const {
  if (recorder_ != nullptr) recorder_->annotate(span_, key, value);
}

void TraceContext::set_outcome(std::string_view outcome) const {
  if (recorder_ != nullptr) recorder_->set_outcome(span_, outcome);
}

void TraceContext::finish(sim::SimTime now) const {
  if (recorder_ != nullptr) recorder_->finish(span_, now);
}

// --- TraceRecorder ----------------------------------------------------------

TraceRecorder::TraceRecorder(TraceConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.reserve(std::min<std::size_t>(config_.ring_capacity, 1024));
}

TraceContext TraceRecorder::start_trace(std::string_view name, sim::SimTime now) {
  const std::uint64_t seq = trace_counter_++;
  if (config_.sample_every == 0 || seq % config_.sample_every != 0) return {};
  ++traces_sampled_;
  const TraceId trace = seq + 1;  // ids are 1-based so 0 can mean "no trace"
  const SpanId root = open_span(trace, 0, name, now);
  return TraceContext(this, trace, root);
}

SpanId TraceRecorder::open_span(TraceId trace, SpanId parent, std::string_view name,
                                sim::SimTime now) {
  const SpanId id = next_span_++;
  SpanRecord rec;
  rec.trace = trace;
  rec.span = id;
  rec.parent = parent;
  rec.name = std::string(name);
  rec.start = now;
  open_.emplace(id, std::move(rec));
  return id;
}

void TraceRecorder::annotate(SpanId span, std::string_view key, std::string_view value) {
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  it->second.annotations.push_back({std::string(key), std::string(value)});
}

void TraceRecorder::set_outcome(SpanId span, std::string_view outcome) {
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  it->second.outcome = std::string(outcome);
}

void TraceRecorder::finish(SpanId span, sim::SimTime now) {
  const auto it = open_.find(span);
  if (it == open_.end()) return;  // double-finish is a no-op
  SpanRecord rec = std::move(it->second);
  open_.erase(it);
  rec.end = now;
  ++spans_recorded_;
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[ring_head_] = std::move(rec);
    ring_head_ = (ring_head_ + 1) % config_.ring_capacity;
  }
}

std::vector<SpanRecord> TraceRecorder::completed() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Once the ring wraps, ring_head_ points at the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void TraceRecorder::write_jsonl(std::ostream& out) const {
  for (const SpanRecord& rec : completed()) {
    out << "{\"trace\":" << rec.trace << ",\"span\":" << rec.span << ",\"parent\":" << rec.parent
        << ",\"name\":\"" << json_escape(rec.name) << "\",\"start_ms\":" << rec.start
        << ",\"end_ms\":" << rec.end << ",\"outcome\":\"" << json_escape(rec.outcome) << '"';
    if (!rec.annotations.empty()) {
      out << ",\"annotations\":{";
      for (std::size_t i = 0; i < rec.annotations.size(); ++i) {
        if (i != 0) out << ',';
        out << '"' << json_escape(rec.annotations[i].key) << "\":\""
            << json_escape(rec.annotations[i].value) << '"';
      }
      out << '}';
    }
    out << "}\n";
  }
}

void TraceRecorder::clear() {
  open_.clear();
  ring_.clear();
  ring_head_ = 0;
}

namespace {

void save_span(util::ByteWriter& out, const SpanRecord& s) {
  out.u64(s.trace);
  out.u64(s.span);
  out.u64(s.parent);
  out.str(s.name);
  out.i64(s.start);
  out.i64(s.end);
  out.str(s.outcome);
  out.u64(s.annotations.size());
  for (const auto& a : s.annotations) {
    out.str(a.key);
    out.str(a.value);
  }
}

SpanRecord load_span(util::ByteReader& in) {
  SpanRecord s;
  s.trace = in.u64();
  s.span = in.u64();
  s.parent = in.u64();
  s.name = in.str();
  s.start = in.i64();
  s.end = in.i64();
  s.outcome = in.str();
  const auto n = in.u64();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    SpanAnnotation a;
    a.key = in.str();
    a.value = in.str();
    s.annotations.push_back(std::move(a));
  }
  return s;
}

}  // namespace

void TraceRecorder::checkpoint(util::ByteWriter& out) const {
  out.u64(trace_counter_);
  out.u64(traces_sampled_);
  out.u64(spans_recorded_);
  out.u64(next_span_);
  out.u64(ring_head_);
  out.u64(ring_.size());
  for (const auto& s : ring_) save_span(out, s);
}

void TraceRecorder::restore(util::ByteReader& in) {
  trace_counter_ = in.u64();
  traces_sampled_ = in.u64();
  spans_recorded_ = in.u64();
  next_span_ = in.u64();
  ring_head_ = in.u64();
  const auto n = in.u64();
  ring_.clear();
  ring_.reserve(n);
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) ring_.push_back(load_span(in));
  open_.clear();
}

}  // namespace fraudsim::obs
