#include "core/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/format.hpp"
#include "util/table.hpp"

namespace fraudsim::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter:
      return "counter";
    case MetricKind::Gauge:
      return "gauge";
    case MetricKind::Histogram:
      return "histogram";
  }
  return "?";
}

// --- Histogram --------------------------------------------------------------

void Histogram::observe(double v) const {
  if (cell_ == nullptr) return;
  detail::HistogramCell& h = cell_->hist;
  if (h.count == 0) {
    h.min = v;
    h.max = v;
  } else {
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
  }
  ++h.count;
  h.sum += v;
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), v);
  ++h.buckets[static_cast<std::size_t>(it - h.bounds.begin())];
}

double histogram_percentile(const detail::HistogramCell& hist, double p) {
  if (hist.count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(hist.count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    const double c = static_cast<double>(hist.buckets[b]);
    if (c <= 0.0) continue;
    if (cumulative + c >= target) {
      const double lower = b == 0 ? hist.min : hist.bounds[b - 1];
      const double upper = b < hist.bounds.size() ? hist.bounds[b] : hist.max;
      if (c == 1.0) {
        // One sample in the bucket: every percentile that lands here is that
        // sample, so there is nothing to interpolate. Its exact value is
        // known when the bucket holds the distribution's min (first
        // non-empty) or max (last non-empty); otherwise the bucket midpoint
        // is the stable representative. Interpolating by p here used to
        // report different p50/p90/p99 out of a single observation.
        if (cumulative == 0.0) return hist.min;
        if (cumulative + c >= static_cast<double>(hist.count)) return hist.max;
        return std::clamp(lower + 0.5 * (upper - lower), hist.min, hist.max);
      }
      const double frac = std::clamp((target - cumulative) / c, 0.0, 1.0);
      const double v = lower + frac * (upper - lower);
      return std::clamp(v, hist.min, hist.max);
    }
    cumulative += c;
  }
  return hist.max;
}

double Histogram::percentile(double p) const {
  return cell_ != nullptr ? histogram_percentile(cell_->hist, p) : 0.0;
}

std::vector<double> default_latency_bounds_ms() {
  return {1,    2,    5,    10,   20,   50,    100,   200,   300,   400,    500,    700,
          1000, 1500, 2000, 3000, 5000, 8000,  12000, 20000, 30000, 60000,  120000, 300000};
}

// --- MetricsRegistry --------------------------------------------------------

detail::MetricCell& MetricsRegistry::cell(std::string_view name, MetricKind kind) {
  const auto it = cells_.find(name);
  if (it != cells_.end()) {
    // Handle reuse: same name -> same cell. Kind mismatches are programming
    // errors caught in debug builds.
    assert(it->second->kind == kind);
    (void)kind;
    return *it->second;
  }
  auto cell = std::make_unique<detail::MetricCell>();
  cell->kind = kind;
  detail::MetricCell& ref = *cell;
  cells_.emplace(std::string(name), std::move(cell));
  return ref;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(&cell(name, MetricKind::Counter));
}

Gauge MetricsRegistry::gauge(std::string_view name) { return Gauge(&cell(name, MetricKind::Gauge)); }

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  detail::MetricCell& c = cell(name, MetricKind::Histogram);
  if (c.hist.buckets.empty()) {
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    c.hist.bounds = std::move(bounds);
    c.hist.buckets.assign(c.hist.bounds.size() + 1, 0);
  }
  return Histogram(&c);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = cells_.find(name);
  if (it == cells_.end() || it->second->kind != MetricKind::Counter) return 0;
  return it->second->counter;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters_with_prefix(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (auto it = cells_.lower_bound(prefix); it != cells_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second->kind != MetricKind::Counter) continue;
    out.emplace_back(it->first, it->second->counter);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.rows.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {
    MetricsSnapshot::Row row;
    row.name = name;
    row.kind = cell->kind;
    switch (cell->kind) {
      case MetricKind::Counter:
        row.count = cell->counter;
        break;
      case MetricKind::Gauge:
        row.value = cell->gauge;
        break;
      case MetricKind::Histogram: {
        const auto& h = cell->hist;
        row.count = h.count;
        row.value = h.sum;
        row.p50 = histogram_percentile(h, 0.50);
        row.p90 = histogram_percentile(h, 0.90);
        row.p99 = histogram_percentile(h, 0.99);
        row.min = h.min;
        row.max = h.max;
        row.buckets.reserve(h.buckets.size());
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          const double bound =
              b < h.bounds.size() ? h.bounds[b] : std::numeric_limits<double>::infinity();
          row.buckets.emplace_back(bound, h.buckets[b]);
        }
        break;
      }
    }
    snap.rows.push_back(std::move(row));
  }
  return snap;
}

// --- MetricsSnapshot --------------------------------------------------------

namespace {

// Fixed-format double rendering so exports are byte-stable: integers print
// without a fractional part, everything else with 6 significant digits.
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return util::format_general(v, 6);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const MetricsSnapshot::Row* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const Row* r = find(name);
  return r != nullptr && r->kind == MetricKind::Counter ? r->count : 0;
}

void MetricsSnapshot::checkpoint(util::ByteWriter& out) const {
  out.u64(rows.size());
  for (const Row& row : rows) {
    out.str(row.name);
    out.u8(static_cast<std::uint8_t>(row.kind));
    out.u64(row.count);
    out.f64(row.value);
    out.f64(row.p50);
    out.f64(row.p90);
    out.f64(row.p99);
    out.f64(row.min);
    out.f64(row.max);
    out.u64(row.buckets.size());
    for (const auto& [bound, count] : row.buckets) {
      out.f64(bound);
      out.u64(count);
    }
  }
}

void MetricsSnapshot::restore(util::ByteReader& in) {
  rows.clear();
  const std::uint64_t n = in.u64();
  // Counts come from CRC-checked shards, but cap the pre-reserve anyway so a
  // corrupt length degrades into reader !ok(), not a bad_alloc.
  rows.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 1 << 16)));
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    Row row;
    row.name = in.str();
    row.kind = static_cast<MetricKind>(in.u8());
    row.count = in.u64();
    row.value = in.f64();
    row.p50 = in.f64();
    row.p90 = in.f64();
    row.p99 = in.f64();
    row.min = in.f64();
    row.max = in.f64();
    const std::uint64_t buckets = in.u64();
    row.buckets.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(buckets, 1 << 12)));
    for (std::uint64_t b = 0; b < buckets && in.ok(); ++b) {
      const double bound = in.f64();
      const std::uint64_t count = in.u64();
      row.buckets.emplace_back(bound, count);
    }
    rows.push_back(std::move(row));
  }
}

std::string MetricsSnapshot::render_table(const std::string& title) const {
  util::AsciiTable table({title, "kind", "count", "value", "p50", "p99"});
  for (const auto& r : rows) {
    switch (r.kind) {
      case MetricKind::Counter:
        table.add_row({r.name, "counter", std::to_string(r.count), "", "", ""});
        break;
      case MetricKind::Gauge:
        table.add_row({r.name, "gauge", "", format_double(r.value), "", ""});
        break;
      case MetricKind::Histogram:
        table.add_row({r.name, "histogram", std::to_string(r.count), format_double(r.value),
                       format_double(r.p50), format_double(r.p99)});
        break;
    }
  }
  return table.render();
}

void MetricsSnapshot::write_csv(std::ostream& out) const {
  out << "name,kind,count,value,p50,p90,p99\n";
  for (const auto& r : rows) {
    // std::to_string for the count: streaming the raw integer would pick up
    // thousands separators from a grouping-imbued stream.
    out << r.name << ',' << to_string(r.kind) << ',' << std::to_string(r.count) << ','
        << format_double(r.value) << ',' << format_double(r.p50) << ','
        << format_double(r.p90) << ',' << format_double(r.p99) << '\n';
  }
}

void MetricsSnapshot::write_jsonl(std::ostream& out) const {
  for (const auto& r : rows) {
    out << "{\"name\":\"" << json_escape(r.name) << "\",\"kind\":\"" << to_string(r.kind) << '"';
    switch (r.kind) {
      case MetricKind::Counter:
        out << ",\"value\":" << r.count;
        break;
      case MetricKind::Gauge:
        out << ",\"value\":" << format_double(r.value);
        break;
      case MetricKind::Histogram: {
        out << ",\"count\":" << r.count << ",\"sum\":" << format_double(r.value)
            << ",\"p50\":" << format_double(r.p50) << ",\"p90\":" << format_double(r.p90)
            << ",\"p99\":" << format_double(r.p99) << ",\"buckets\":[";
        for (std::size_t b = 0; b < r.buckets.size(); ++b) {
          if (b != 0) out << ',';
          out << "[\"" << format_double(r.buckets[b].first) << "\"," << r.buckets[b].second << ']';
        }
        out << ']';
        break;
      }
    }
    out << "}\n";
  }
}

void MetricsRegistry::merge(const MetricsSnapshot& shard) {
  for (const MetricsSnapshot::Row& row : shard.rows) {
    detail::MetricCell& c = cell(row.name, row.kind);
    assert(c.kind == row.kind);
    switch (row.kind) {
      case MetricKind::Counter:
        c.counter += row.count;
        break;
      case MetricKind::Gauge:
        c.gauge += row.value;
        break;
      case MetricKind::Histogram: {
        if (row.count == 0) break;
        detail::HistogramCell& h = c.hist;
        if (h.buckets.empty()) {
          // First shard defines the bucket layout.
          h.bounds.reserve(row.buckets.empty() ? 0 : row.buckets.size() - 1);
          for (std::size_t b = 0; b + 1 < row.buckets.size(); ++b) {
            h.bounds.push_back(row.buckets[b].first);
          }
          h.buckets.assign(h.bounds.size() + 1, 0);
        }
        // Shards of one series must share the bucket layout; a mismatch is a
        // programming error (different registrations under the same name).
        assert(h.buckets.size() == row.buckets.size());
        if (h.buckets.size() != row.buckets.size()) break;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) h.buckets[b] += row.buckets[b].second;
        if (h.count == 0) {
          h.min = row.min;
          h.max = row.max;
        } else {
          h.min = std::min(h.min, row.min);
          h.max = std::max(h.max, row.max);
        }
        h.count += row.count;
        h.sum += row.value;
        break;
      }
    }
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) { merge(other.snapshot()); }

void MetricsRegistry::checkpoint(util::ByteWriter& out) const {
  out.u64(cells_.size());
  for (const auto& [name, cell] : cells_) {
    out.str(name);
    out.u8(static_cast<std::uint8_t>(cell->kind));
    out.u64(cell->counter);
    out.f64(cell->gauge);
    out.u64(cell->hist.bounds.size());
    for (double b : cell->hist.bounds) out.f64(b);
    out.u64(cell->hist.buckets.size());
    for (std::uint64_t b : cell->hist.buckets) out.u64(b);
    out.u64(cell->hist.count);
    out.f64(cell->hist.sum);
    out.f64(cell->hist.min);
    out.f64(cell->hist.max);
  }
}

void MetricsRegistry::restore(util::ByteReader& in) {
  const auto n = in.u64();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    const std::string name = in.str();
    const auto kind = static_cast<MetricKind>(in.u8());
    detail::MetricCell& c = cell(name, kind);
    c.counter = in.u64();
    c.gauge = in.f64();
    const auto bounds = in.u64();
    c.hist.bounds.assign(bounds, 0.0);
    for (std::uint64_t b = 0; b < bounds && in.ok(); ++b) c.hist.bounds[b] = in.f64();
    const auto buckets = in.u64();
    c.hist.buckets.assign(buckets, 0);
    for (std::uint64_t b = 0; b < buckets && in.ok(); ++b) c.hist.buckets[b] = in.u64();
    c.hist.count = in.u64();
    c.hist.sum = in.f64();
    c.hist.min = in.f64();
    c.hist.max = in.f64();
  }
}

}  // namespace fraudsim::obs
