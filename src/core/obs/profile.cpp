#include "core/obs/profile.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/format.hpp"
#include "util/table.hpp"

namespace fraudsim::obs {

Profiler::Profiler() {
  const char* env = std::getenv("FRAUDSIM_PROFILE");
  enabled_ = env != nullptr && std::strcmp(env, "1") == 0;
}

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

PhaseId Profiler::phase(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (PhaseId i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return i;
  }
  phases_.push_back({std::string(name), 0, 0});
  return phases_.size() - 1;
}

std::vector<Profiler::PhaseTotals> Profiler::totals() const {
  std::vector<PhaseTotals> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const PhaseTotals& p : phases_) {
      if (p.calls > 0) out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(), [](const PhaseTotals& a, const PhaseTotals& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

std::string Profiler::report() const {
  const std::vector<PhaseTotals> rows = totals();
  std::uint64_t grand_total = 0;
  for (const PhaseTotals& p : rows) grand_total += p.total_ns;

  util::AsciiTable table({"phase", "calls", "total ms", "mean us", "share %"});
  for (const PhaseTotals& p : rows) {
    std::vector<std::string> row;
    row.push_back(p.name);
    row.push_back(std::to_string(p.calls));
    row.push_back(util::format_fixed(static_cast<double>(p.total_ns) / 1e6, 3));
    row.push_back(util::format_fixed(
        static_cast<double>(p.total_ns) / 1e3 / static_cast<double>(p.calls), 2));
    row.push_back(util::format_fixed(
        grand_total > 0
            ? 100.0 * static_cast<double>(p.total_ns) / static_cast<double>(grand_total)
            : 0.0,
        1));
    table.add_row(row);
  }
  return table.render();
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (PhaseTotals& p : phases_) {
    p.calls = 0;
    p.total_ns = 0;
  }
}

}  // namespace fraudsim::obs
