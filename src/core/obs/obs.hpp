// Aggregate observability context: one metrics registry plus one trace
// recorder, owned together by the platform instance (Application). Components
// that can also run standalone take an `Observability*` (or a
// `MetricsRegistry*`) and fall back to a private instance when null, so unit
// tests keep isolated counts.
#pragma once

#include "core/obs/metrics.hpp"
#include "core/obs/profile.hpp"
#include "core/obs/trace.hpp"

namespace fraudsim::obs {

struct Observability {
  Observability() = default;
  explicit Observability(TraceConfig trace_config) : traces(trace_config) {}
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry metrics;
  TraceRecorder traces;
};

}  // namespace fraudsim::obs
