#include "core/overload/overload.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace fraudsim::overload {

const char* to_string(RequestClass c) {
  switch (c) {
    case RequestClass::Priority:
      return "priority";
    case RequestClass::Anonymous:
      return "anonymous";
  }
  return "?";
}

const char* to_string(AdmitResult r) {
  switch (r) {
    case AdmitResult::Admitted:
      return "admitted";
    case AdmitResult::ShedQueueFull:
      return "shed-queue-full";
    case AdmitResult::ShedFailFast:
      return "shed-fail-fast";
    case AdmitResult::ShedDeadline:
      return "shed-deadline";
  }
  return "?";
}

// --- AdmissionQueue ---------------------------------------------------------

AdmissionQueue::AdmissionQueue(int servers, bool priority_scheduling)
    : servers_(std::max(1, servers)), priority_scheduling_(priority_scheduling) {}

void AdmissionQueue::drain(sim::SimTime now) {
  if (now <= last_drain_) return;
  // Capacity retired since the last touch; the priority band drains first
  // (strict priority), the anonymous band gets the remainder.
  double capacity = static_cast<double>(now - last_drain_) * static_cast<double>(servers_);
  last_drain_ = now;
  const double from_priority = std::min(capacity, band_[0]);
  band_[0] -= from_priority;
  capacity -= from_priority;
  band_[1] -= std::min(capacity, band_[1]);
}

sim::SimDuration AdmissionQueue::wait_for(RequestClass cls, sim::SimTime now) {
  drain(now);
  // Strict priority: a priority arrival waits only behind the priority band;
  // an anonymous arrival waits behind everything. With priority scheduling
  // off both classes see the combined FIFO backlog.
  double ahead = band_[0] + band_[1];
  if (priority_scheduling_ && cls == RequestClass::Priority) ahead = band_[0];
  return static_cast<sim::SimDuration>(std::ceil(ahead / static_cast<double>(servers_)));
}

void AdmissionQueue::admit(sim::SimTime now, RequestClass cls, sim::SimDuration cost) {
  drain(now);
  // Without priority scheduling everything shares the second (FIFO) band.
  const bool priority_band = priority_scheduling_ && cls == RequestClass::Priority;
  band_[priority_band ? 0 : 1] += static_cast<double>(cost);
}

sim::SimDuration AdmissionQueue::backlog(sim::SimTime now) {
  drain(now);
  return static_cast<sim::SimDuration>(band_[0] + band_[1]);
}

// --- OverloadManager --------------------------------------------------------

OverloadManager::OverloadManager(OverloadConfig config, obs::MetricsRegistry* metrics)
    : config_(config),
      queue_(config.servers, config.priority_scheduling),
      brownout_(config.brownout) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  for (std::size_t i = 0; i < kRequestClasses; ++i) {
    const std::string prefix = std::string("overload.") + to_string(static_cast<RequestClass>(i));
    ClassMetrics& m = class_metrics_[i];
    m.offered = metrics->counter(prefix + ".offered");
    m.admitted = metrics->counter(prefix + ".admitted");
    m.shed_queue = metrics->counter(prefix + ".shed_queue");
    m.shed_fail_fast = metrics->counter(prefix + ".shed_fail_fast");
    m.deadline_missed = metrics->counter(prefix + ".deadline_missed");
    m.latency_ms = metrics->histogram(prefix + ".latency_ms", obs::default_latency_bounds_ms());
  }
}

ClassStats OverloadManager::stats(RequestClass cls) const {
  const ClassMetrics& m = class_metrics_[static_cast<std::size_t>(cls)];
  ClassStats out;
  out.offered = m.offered.value();
  out.admitted = m.admitted.value();
  out.shed_queue = m.shed_queue.value();
  out.shed_fail_fast = m.shed_fail_fast.value();
  out.deadline_missed = m.deadline_missed.value();
  return out;
}

Admission OverloadManager::on_request(sim::SimTime now, RequestClass cls, bool transactional,
                                      sim::SimDuration extra_latency) {
  const sim::SimDuration cost =
      (transactional ? config_.cost_transactional : config_.cost_browse) + extra_latency;
  const sim::SimDuration budget =
      transactional ? config_.deadline_transactional : config_.deadline_browse;

  Admission admission;
  admission.queue_wait = queue_.wait_for(cls, now);
  admission.latency = admission.queue_wait + cost;
  admission.deadline = budget > 0 ? Deadline::in(now, budget) : Deadline::unbounded();

  // The controller observes every offered request, shed or served — load it
  // never sees cannot drive the state machine back down.
  brownout_.observe(now, admission.queue_wait, admission.latency);

  ClassMetrics& metrics = class_metrics_[static_cast<std::size_t>(cls)];
  metrics.offered.inc();

  if (cls == RequestClass::Anonymous && brownout_.fail_fast_anonymous()) {
    metrics.shed_fail_fast.inc();
    admission.result = AdmitResult::ShedFailFast;
    return admission;
  }

  if (config_.shedding_enabled) {
    sim::SimDuration watermark =
        cls == RequestClass::Priority ? config_.max_wait_priority : config_.max_wait_anonymous;
    if (cls == RequestClass::Anonymous) {
      watermark = static_cast<sim::SimDuration>(static_cast<double>(watermark) *
                                                brownout_.anonymous_watermark_scale());
    }
    if (admission.queue_wait > watermark) {
      metrics.shed_queue.inc();
      admission.result = AdmitResult::ShedQueueFull;
      return admission;
    }
  }

  if (admission.deadline.bounded() && now + admission.latency > admission.deadline.expires) {
    // The request cannot finish inside its budget: shedding it now is the
    // deadline-aware move; admitting it (the unprotected baseline does, in
    // effect, by never checking) wastes a full service slot on work the
    // client has already timed out on.
    metrics.deadline_missed.inc();
    admission.result = AdmitResult::ShedDeadline;
    if (!config_.shedding_enabled) {
      // Collapse baseline: the work still occupies the queue; the caller just
      // times out. This is the "piling up" failure mode overload control
      // exists to prevent. The work runs, so its latency is observed — not
      // recording it would cap the baseline's percentiles at the deadline
      // budget (survivor bias) and undersell the collapse.
      queue_.admit(now, cls, cost);
      metrics.latency_ms.observe(static_cast<double>(admission.latency));
    }
    return admission;
  }

  queue_.admit(now, cls, cost);
  metrics.admitted.inc();
  metrics.latency_ms.observe(static_cast<double>(admission.latency));
  return admission;
}

OverloadSnapshot OverloadManager::snapshot(sim::SimTime now) const {
  OverloadSnapshot snap;
  snap.enabled = config_.enabled;
  for (std::size_t i = 0; i < kRequestClasses; ++i) {
    const ClassMetrics& m = class_metrics_[i];
    auto& out = snap.cls[i];
    out.offered = m.offered.value();
    out.admitted = m.admitted.value();
    out.shed_queue = m.shed_queue.value();
    out.shed_fail_fast = m.shed_fail_fast.value();
    out.deadline_missed = m.deadline_missed.value();
    if (m.latency_ms.count() > 0) {
      out.p50_latency_ms = m.latency_ms.percentile(0.50);
      out.p99_latency_ms = m.latency_ms.percentile(0.99);
    }
  }
  snap.state = brownout_.state();
  snap.transitions = brownout_.transitions().size();
  for (std::size_t i = 0; i < kBrownoutStates; ++i) {
    snap.dwell[i] = brownout_.dwell(static_cast<BrownoutState>(i), now);
  }
  return snap;
}

void AdmissionQueue::checkpoint(util::ByteWriter& out) const {
  out.i64(last_drain_);
  for (std::size_t i = 0; i < kRequestClasses; ++i) out.f64(band_[i]);
}

void AdmissionQueue::restore(util::ByteReader& in) {
  last_drain_ = in.i64();
  for (std::size_t i = 0; i < kRequestClasses; ++i) band_[i] = in.f64();
}

void OverloadManager::checkpoint(util::ByteWriter& out) const {
  queue_.checkpoint(out);
  brownout_.checkpoint(out);
}

void OverloadManager::restore(util::ByteReader& in) {
  queue_.restore(in);
  brownout_.restore(in);
}

}  // namespace fraudsim::overload
