// Overload control: bounded admission, deadline budgets, graceful brownout.
//
// The platform's request path is modeled as a fluid queue in front of
// `servers` unit-rate workers. Every request arriving at the Application
// facade is classified (priority = identified loyalty traffic, anonymous =
// everything else) and offered to the AdmissionQueue:
//
//   * admitted  — the request's modeled cost joins its class band; its
//                 latency is the band's queueing wait plus its service cost;
//   * shed      — the wait already exceeds the class watermark (bounded
//                 queue), the brownout controller is fail-fasting the class,
//                 or the request could not finish inside its deadline budget.
//
// Under strict-priority scheduling the priority band is drained first, so a
// flood of anonymous bot traffic cannot queue ahead of identified customers —
// the per-class watermark is what turns "bounded queue" into "bounded queue
// per class". With `priority_scheduling` off both classes share one FIFO
// band (the collapse baseline the bench contrasts against).
//
// Deadline budgets attached here travel with the request into downstream
// stages (SMS retry queues, the detection pipeline's analysis budget, hold
// TTLs), so work that can no longer finish in time is shed instead of piling
// up behind live traffic.
//
// Determinism: the subsystem consumes no randomness and reads only sim-time.
// With `enabled == false` the manager is never consulted and the request path
// is byte-identical to a build without overload control.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/obs/metrics.hpp"
#include "core/overload/brownout.hpp"
#include "sim/time.hpp"

namespace fraudsim::overload {

// --- Deadline budgets -------------------------------------------------------

// An absolute completion budget carried by a request into downstream stages.
// Default-constructed deadlines are unbounded (no budget attached) so callers
// that never opt in see no behaviour change.
struct Deadline {
  static constexpr sim::SimTime kUnbounded = std::numeric_limits<sim::SimTime>::max();

  sim::SimTime expires = kUnbounded;

  [[nodiscard]] static Deadline unbounded() { return Deadline{}; }
  [[nodiscard]] static Deadline at(sim::SimTime t) { return Deadline{t}; }
  [[nodiscard]] static Deadline in(sim::SimTime now, sim::SimDuration budget) {
    return Deadline{now + budget};
  }

  [[nodiscard]] bool bounded() const { return expires != kUnbounded; }
  [[nodiscard]] bool expired(sim::SimTime now) const { return bounded() && now >= expires; }
  [[nodiscard]] sim::SimDuration remaining(sim::SimTime now) const {
    return bounded() ? expires - now : kUnbounded;
  }
};

// --- Request classification -------------------------------------------------

enum class RequestClass : std::uint8_t { Priority = 0, Anonymous = 1 };

inline constexpr std::size_t kRequestClasses = 2;

[[nodiscard]] const char* to_string(RequestClass c);

// --- Bounded admission queue ------------------------------------------------

// Fluid two-band strict-priority queue. Backlogs are tracked in milliseconds
// of work and drain continuously at `servers` ms of work per ms of sim time,
// priority band first. O(1) per operation, no randomness.
class AdmissionQueue {
 public:
  AdmissionQueue(int servers, bool priority_scheduling);

  // Queueing wait an arrival of `cls` would see at `now` (after draining).
  [[nodiscard]] sim::SimDuration wait_for(RequestClass cls, sim::SimTime now);

  // Commits an admitted request's cost to its band.
  void admit(sim::SimTime now, RequestClass cls, sim::SimDuration cost);

  // Total un-drained work across both bands, in ms (the queue-depth signal).
  [[nodiscard]] sim::SimDuration backlog(sim::SimTime now);

  // Checkpoint support.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  void drain(sim::SimTime now);

  int servers_;
  bool priority_scheduling_;
  sim::SimTime last_drain_ = 0;
  double band_[kRequestClasses] = {0.0, 0.0};  // ms of queued work per class
};

// --- Configuration ----------------------------------------------------------

struct OverloadConfig {
  // Master switch. False (the default everywhere) bypasses the subsystem
  // entirely: no queue model, no deadlines, no brownout — byte-identical to
  // the pre-overload platform.
  bool enabled = false;

  // Fluid service capacity: `servers` workers, each retiring 1 ms of modeled
  // work per ms of sim time.
  int servers = 2;
  // Modeled service cost per request kind (web::is_transactional splits the
  // catalogue).
  sim::SimDuration cost_browse = sim::seconds(0.2);
  sim::SimDuration cost_transactional = sim::seconds(0.6);

  // Bounded-queue watermarks: the maximum queueing wait a class accepts at
  // admission. The brownout controller scales the anonymous watermark down
  // as it escalates.
  bool shedding_enabled = true;
  sim::SimDuration max_wait_priority = sim::seconds(8);
  sim::SimDuration max_wait_anonymous = sim::seconds(2);
  // Strict-priority scheduling of the priority band (off = single shared
  // FIFO band, the unprotected baseline).
  bool priority_scheduling = true;

  // Deadline budgets attached at admission (0 = unbounded for that kind).
  sim::SimDuration deadline_browse = sim::seconds(10);
  sim::SimDuration deadline_transactional = sim::seconds(30);

  BrownoutConfig brownout;
};

// --- Telemetry --------------------------------------------------------------

enum class AdmitResult : std::uint8_t {
  Admitted,
  ShedQueueFull,   // class watermark exceeded (bounded queue)
  ShedFailFast,    // brownout SHED state fail-fasting the anonymous class
  ShedDeadline,    // could not finish inside the deadline budget
};

[[nodiscard]] const char* to_string(AdmitResult r);

struct Admission {
  AdmitResult result = AdmitResult::Admitted;
  sim::SimDuration queue_wait = 0;  // modeled queueing delay at arrival
  sim::SimDuration latency = 0;     // queue_wait + service cost (modeled)
  Deadline deadline;                // budget the request carries downstream
};

// By-value view of one class's admission counters, assembled from the
// metrics registry (the "overload.<class>.*" series are the source of truth).
struct ClassStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_fail_fast = 0;
  std::uint64_t deadline_missed = 0;

  [[nodiscard]] std::uint64_t shed_total() const { return shed_queue + shed_fail_fast; }
};

// Flat copyable summary for reports and CSV export.
struct OverloadSnapshot {
  bool enabled = false;
  struct PerClass {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t shed_fail_fast = 0;
    std::uint64_t deadline_missed = 0;
    double p50_latency_ms = 0.0;
    double p99_latency_ms = 0.0;
  };
  PerClass cls[kRequestClasses];
  BrownoutState state = BrownoutState::Normal;
  std::uint64_t transitions = 0;
  sim::SimDuration dwell[kBrownoutStates] = {0, 0, 0, 0};

  [[nodiscard]] const PerClass& of(RequestClass c) const {
    return cls[static_cast<std::size_t>(c)];
  }
};

// --- Manager ----------------------------------------------------------------

class OverloadManager {
 public:
  // `metrics` is the platform registry ("overload.*" series); when null the
  // manager owns a private registry so standalone tests see isolated counts.
  explicit OverloadManager(OverloadConfig config, obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] bool enabled() const { return config_.enabled; }

  // The admission decision for one request. Pre: enabled(). `extra_latency`
  // is injected slow-dependency time (FaultKind::kLatency) charged on top of
  // the modeled service cost, so a latency fault eats real deadline budget.
  Admission on_request(sim::SimTime now, RequestClass cls, bool transactional,
                       sim::SimDuration extra_latency = 0);

  [[nodiscard]] BrownoutController& brownout() { return brownout_; }
  [[nodiscard]] const BrownoutController& brownout() const { return brownout_; }
  // Counter view for one class, read from the registry.
  [[nodiscard]] ClassStats stats(RequestClass cls) const;
  [[nodiscard]] const OverloadConfig& config() const { return config_; }

  [[nodiscard]] OverloadSnapshot snapshot(sim::SimTime now) const;

  // Checkpoint support: queue bands + brownout state machine. Counter cells
  // live in the metrics registry and are restored with it.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  // Registry handles for one class's counters + latency histogram.
  struct ClassMetrics {
    obs::Counter offered;
    obs::Counter admitted;
    obs::Counter shed_queue;
    obs::Counter shed_fail_fast;
    obs::Counter deadline_missed;
    obs::Histogram latency_ms;
  };

  OverloadConfig config_;
  AdmissionQueue queue_;
  BrownoutController brownout_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  ClassMetrics class_metrics_[kRequestClasses];
};

}  // namespace fraudsim::overload
