// Platform-wide brownout controller.
//
// A four-state machine — NORMAL → ELEVATED → BROWNOUT → SHED — driven by
// EWMAs of the admission queue's backlog wait and of modeled request latency
// (both sim-time; the library never reads the wall clock). Each state maps to
// a set of progressively harsher degradations the platform reads as knobs:
//
//   state     | rate-limit scale | detector stride | NiP cap | anonymous
//   NORMAL    | 1.0              | 1               | —       | served
//   ELEVATED  | 0.5              | 1               | —       | served
//   BROWNOUT  | 0.25             | 2               | 4       | tight watermark
//   SHED      | 0.10             | 4               | 2       | fail-fast
//
// Transitions move one state at a time. Entry is triggered when either EWMA
// crosses the next state's threshold; exit requires the wait EWMA to fall
// below `exit_fraction` of the current state's entry threshold AND a minimum
// dwell to have elapsed (hysteresis, so the controller does not flap at the
// boundary). Every transition is timestamped; per-state dwell totals are the
// bench's brownout-residency metric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/archive.hpp"

namespace fraudsim::overload {

enum class BrownoutState : std::uint8_t { Normal = 0, Elevated = 1, Brownout = 2, Shed = 3 };

inline constexpr std::size_t kBrownoutStates = 4;

[[nodiscard]] const char* to_string(BrownoutState s);

struct BrownoutConfig {
  bool enabled = false;
  // Per-sample EWMA smoothing factor for both signals.
  double alpha = 0.05;
  // Entry thresholds on the smoothed queue wait (enter the state when the
  // wait EWMA is at or above the threshold). Must be increasing.
  sim::SimDuration elevated_wait = sim::seconds(0.25);
  sim::SimDuration brownout_wait = sim::seconds(1);
  sim::SimDuration shed_wait = sim::seconds(4);
  // Secondary entry signal: smoothed end-to-end modeled latency. 0 disables.
  sim::SimDuration elevated_latency = 0;
  sim::SimDuration brownout_latency = 0;
  sim::SimDuration shed_latency = 0;
  // Exit below exit_fraction * entry threshold of the current state.
  double exit_fraction = 0.5;
  // Minimum residency before stepping back down (anti-flap hysteresis).
  sim::SimDuration min_dwell = sim::seconds(30);

  // Degradation knobs per state (NORMAL, ELEVATED, BROWNOUT, SHED).
  double rate_limit_scale[kBrownoutStates] = {1.0, 0.5, 0.25, 0.10};
  int detector_stride[kBrownoutStates] = {1, 1, 2, 4};
  int nip_cap[kBrownoutStates] = {0, 0, 4, 2};  // 0 = no tightened cap
  // Scale applied to the anonymous admission watermark per state.
  double anonymous_watermark_scale[kBrownoutStates] = {1.0, 1.0, 0.5, 0.25};
  // Scale applied to new hold TTLs per state (timed-out inventory work is
  // shed faster while the platform is hot).
  double hold_ttl_scale[kBrownoutStates] = {1.0, 1.0, 0.5, 0.25};
};

class BrownoutController {
 public:
  explicit BrownoutController(BrownoutConfig config);

  // Feed one admission-time observation: the queueing wait the arriving
  // request would see and its modeled end-to-end latency. Updates the EWMAs
  // and applies at most one state transition. Disabled controllers ignore
  // observations and stay NORMAL.
  void observe(sim::SimTime now, sim::SimDuration queue_wait, sim::SimDuration latency);

  [[nodiscard]] BrownoutState state() const { return state_; }
  [[nodiscard]] bool enabled() const { return config_.enabled; }

  // --- Knobs the platform reads --------------------------------------------
  [[nodiscard]] double rate_limit_scale() const { return config_.rate_limit_scale[index()]; }
  [[nodiscard]] int detector_stride() const { return config_.detector_stride[index()]; }
  [[nodiscard]] int nip_cap() const { return config_.nip_cap[index()]; }
  [[nodiscard]] double anonymous_watermark_scale() const {
    return config_.anonymous_watermark_scale[index()];
  }
  [[nodiscard]] double hold_ttl_scale() const { return config_.hold_ttl_scale[index()]; }
  // True once the controller has escalated to SHED: anonymous requests are
  // fail-fasted at admission without consulting the queue.
  [[nodiscard]] bool fail_fast_anonymous() const { return state_ == BrownoutState::Shed; }

  // --- Telemetry -----------------------------------------------------------
  struct Transition {
    sim::SimTime time = 0;
    BrownoutState from = BrownoutState::Normal;
    BrownoutState to = BrownoutState::Normal;
  };
  [[nodiscard]] const std::vector<Transition>& transitions() const { return transitions_; }
  // Total residency per state up to `now` (includes the open interval in the
  // current state).
  [[nodiscard]] sim::SimDuration dwell(BrownoutState s, sim::SimTime now) const;
  [[nodiscard]] double wait_ewma() const { return wait_ewma_; }
  [[nodiscard]] double latency_ewma() const { return latency_ewma_; }
  [[nodiscard]] const BrownoutConfig& config() const { return config_; }

  // Checkpoint support (dynamic state only; config is reconstructed).
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  [[nodiscard]] std::size_t index() const { return static_cast<std::size_t>(state_); }
  [[nodiscard]] sim::SimDuration entry_wait(BrownoutState s) const;
  [[nodiscard]] sim::SimDuration entry_latency(BrownoutState s) const;
  void enter(sim::SimTime now, BrownoutState next);

  BrownoutConfig config_;
  BrownoutState state_ = BrownoutState::Normal;
  double wait_ewma_ = 0.0;
  double latency_ewma_ = 0.0;
  bool seeded_ = false;
  sim::SimTime entered_at_ = 0;
  sim::SimDuration dwell_[kBrownoutStates] = {0, 0, 0, 0};
  std::vector<Transition> transitions_;
};

}  // namespace fraudsim::overload
