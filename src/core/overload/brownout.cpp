#include "core/overload/brownout.hpp"

namespace fraudsim::overload {

const char* to_string(BrownoutState s) {
  switch (s) {
    case BrownoutState::Normal:
      return "NORMAL";
    case BrownoutState::Elevated:
      return "ELEVATED";
    case BrownoutState::Brownout:
      return "BROWNOUT";
    case BrownoutState::Shed:
      return "SHED";
  }
  return "?";
}

BrownoutController::BrownoutController(BrownoutConfig config) : config_(config) {}

sim::SimDuration BrownoutController::entry_wait(BrownoutState s) const {
  switch (s) {
    case BrownoutState::Elevated:
      return config_.elevated_wait;
    case BrownoutState::Brownout:
      return config_.brownout_wait;
    case BrownoutState::Shed:
      return config_.shed_wait;
    case BrownoutState::Normal:
      break;
  }
  return 0;
}

sim::SimDuration BrownoutController::entry_latency(BrownoutState s) const {
  switch (s) {
    case BrownoutState::Elevated:
      return config_.elevated_latency;
    case BrownoutState::Brownout:
      return config_.brownout_latency;
    case BrownoutState::Shed:
      return config_.shed_latency;
    case BrownoutState::Normal:
      break;
  }
  return 0;
}

void BrownoutController::enter(sim::SimTime now, BrownoutState next) {
  dwell_[index()] += now - entered_at_;
  transitions_.push_back(Transition{now, state_, next});
  state_ = next;
  entered_at_ = now;
}

void BrownoutController::observe(sim::SimTime now, sim::SimDuration queue_wait,
                                 sim::SimDuration latency) {
  if (!config_.enabled) return;
  if (!seeded_) {
    // Seed the EWMAs from the first sample so a controller constructed
    // mid-scenario does not have to climb from zero.
    wait_ewma_ = static_cast<double>(queue_wait);
    latency_ewma_ = static_cast<double>(latency);
    entered_at_ = now;
    seeded_ = true;
  } else {
    wait_ewma_ += config_.alpha * (static_cast<double>(queue_wait) - wait_ewma_);
    latency_ewma_ += config_.alpha * (static_cast<double>(latency) - latency_ewma_);
  }

  // Escalate one state at a time: either smoothed signal crossing the next
  // state's entry threshold is sufficient (latency thresholds of 0 are off).
  if (state_ != BrownoutState::Shed) {
    const auto next = static_cast<BrownoutState>(index() + 1);
    const bool wait_trip = wait_ewma_ >= static_cast<double>(entry_wait(next));
    const auto lat_entry = entry_latency(next);
    const bool latency_trip = lat_entry > 0 && latency_ewma_ >= static_cast<double>(lat_entry);
    if (wait_trip || latency_trip) {
      enter(now, next);
      return;
    }
  }

  // De-escalate one state at a time, with hysteresis: the wait EWMA must fall
  // below exit_fraction of the *current* state's entry threshold and the
  // minimum dwell must have elapsed.
  if (state_ != BrownoutState::Normal && now - entered_at_ >= config_.min_dwell &&
      wait_ewma_ < config_.exit_fraction * static_cast<double>(entry_wait(state_))) {
    enter(now, static_cast<BrownoutState>(index() - 1));
  }
}

sim::SimDuration BrownoutController::dwell(BrownoutState s, sim::SimTime now) const {
  sim::SimDuration total = dwell_[static_cast<std::size_t>(s)];
  if (seeded_ && s == state_ && now > entered_at_) total += now - entered_at_;
  return total;
}

void BrownoutController::checkpoint(util::ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(state_));
  out.f64(wait_ewma_);
  out.f64(latency_ewma_);
  out.boolean(seeded_);
  out.i64(entered_at_);
  for (std::size_t i = 0; i < kBrownoutStates; ++i) out.i64(dwell_[i]);
  out.u64(transitions_.size());
  for (const auto& t : transitions_) {
    out.i64(t.time);
    out.u8(static_cast<std::uint8_t>(t.from));
    out.u8(static_cast<std::uint8_t>(t.to));
  }
}

void BrownoutController::restore(util::ByteReader& in) {
  state_ = static_cast<BrownoutState>(in.u8());
  wait_ewma_ = in.f64();
  latency_ewma_ = in.f64();
  seeded_ = in.boolean();
  entered_at_ = in.i64();
  for (std::size_t i = 0; i < kBrownoutStates; ++i) dwell_[i] = in.i64();
  const auto n = in.u64();
  transitions_.clear();
  transitions_.reserve(n);
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    Transition t;
    t.time = in.i64();
    t.from = static_cast<BrownoutState>(in.u8());
    t.to = static_cast<BrownoutState>(in.u8());
    transitions_.push_back(t);
  }
}

}  // namespace fraudsim::overload
