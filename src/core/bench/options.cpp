#include "core/bench/options.hpp"

#include <cstdlib>
#include <cstring>
#include <string_view>

namespace fraudsim::bench {

bool Options::env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::uint64_t Options::env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

Options Options::from_env() {
  Options o;
  o.smoke = env_flag("FRAUDSIM_BENCH_SMOKE");
  o.fleet_threads = static_cast<unsigned>(env_u64("FRAUDSIM_FLEET_THREADS", 0));
  if (const char* env = std::getenv("FRAUDSIM_METRICS_OUT"); env != nullptr && env[0] != '\0') {
    o.metrics_out = env;
  }
  return o;
}

Options Options::parse(int argc, char** argv) {
  Options o = from_env();
  auto value_of = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      o.smoke = true;
    } else if (arg == "--threads") {
      if (const char* v = value_of(i)) {
        o.fleet_threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      }
    } else if (arg == "--metrics-out") {
      if (const char* v = value_of(i)) o.metrics_out = v;
    } else if (arg == "--seed") {
      if (const char* v = value_of(i)) o.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out-dir" || arg == "--out") {
      if (const char* v = value_of(i)) o.out_dir = v;
    } else {
      o.positional.emplace_back(arg);
    }
  }
  return o;
}

}  // namespace fraudsim::bench
