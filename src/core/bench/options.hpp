// Unified bench/example CLI + environment configuration.
//
// Every bench/exp_* and examples/* main used to hand-roll the same getenv
// blocks (FRAUDSIM_BENCH_SMOKE, FRAUDSIM_FLEET_THREADS, FRAUDSIM_METRICS_OUT)
// plus ad-hoc argv parsing. bench::Options parses both in one place with one
// precedence rule: environment first, argv flags override. Unrecognised
// arguments are passed through in `positional` so tool-specific flags keep
// working.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fraudsim::bench {

struct Options {
  // FRAUDSIM_BENCH_SMOKE / --smoke: benches shrink to CI-sized workloads.
  bool smoke = false;
  // FRAUDSIM_FLEET_THREADS / --threads N: fleet worker count (0 = auto).
  unsigned fleet_threads = 0;
  // FRAUDSIM_METRICS_OUT / --metrics-out PATH: profiler/metrics JSONL sink.
  std::string metrics_out;
  // --seed N: base RNG seed for tools that accept one.
  std::optional<std::uint64_t> seed;
  // --out-dir PATH (also --out PATH): artifact output directory.
  std::string out_dir;
  // Arguments this parser did not consume, in order (argv[0] excluded).
  std::vector<std::string> positional;

  // True when the env var is set to anything but "" or "0" — the repo-wide
  // truthiness convention for FRAUDSIM_* toggles.
  [[nodiscard]] static bool env_flag(const char* name);
  // Parsed positive integer from the env var; fallback when unset/invalid.
  [[nodiscard]] static std::uint64_t env_u64(const char* name, std::uint64_t fallback);

  // Environment only (no argv) — for mains with their own flag handling.
  [[nodiscard]] static Options from_env();
  // Environment, then argv overrides. Never exits: unknown flags land in
  // `positional` for the caller to judge.
  [[nodiscard]] static Options parse(int argc, char** argv);
};

}  // namespace fraudsim::bench
