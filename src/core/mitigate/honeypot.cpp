#include "core/mitigate/honeypot.hpp"

namespace fraudsim::mitigate {

HoneypotReport honeypot_report(const app::Application& application,
                               const app::ActorRegistry& registry) {
  HoneypotReport report;
  if (application.honeypot_enabled()) {
    for (const auto& r : application.decoy_inventory().reservations()) {
      if (!registry.abuser(r.actor)) continue;
      ++report.decoy_holds;
      report.decoy_seats += static_cast<std::uint64_t>(r.nip());
      ++report.decoy_requests;
    }
  }
  for (const auto& r : application.inventory().reservations()) {
    if (!registry.abuser(r.actor)) continue;
    ++report.real_holds_by_abusers;
    report.real_seats_by_abusers += static_cast<std::uint64_t>(r.nip());
  }
  return report;
}

util::Money attacker_waste(const HoneypotReport& report, util::Money proxy_cost_per_request) {
  return proxy_cost_per_request * static_cast<std::int64_t>(report.decoy_requests);
}

}  // namespace fraudsim::mitigate
