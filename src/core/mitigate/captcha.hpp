// CAPTCHA economics model (§V: "these measures add cost and complexity to
// automated attacks").
//
// The challenge *flow* lives in the rule engine and the actors; this module
// quantifies its economics: what challenges cost attackers (solver fees,
// failure rate) versus legitimate users (friction, abandonment).
#pragma once

#include <cstdint>

#include "util/money.hpp"

namespace fraudsim::mitigate {

struct CaptchaEconomics {
  // Attacker side.
  std::uint64_t bot_challenges = 0;
  std::uint64_t bot_solved = 0;
  util::Money bot_solver_spend;
  // Defender/legit side.
  std::uint64_t human_challenges = 0;
  std::uint64_t human_abandoned = 0;

  [[nodiscard]] double bot_solve_rate() const {
    return bot_challenges == 0
               ? 0.0
               : static_cast<double>(bot_solved) / static_cast<double>(bot_challenges);
  }
  [[nodiscard]] double human_abandonment_rate() const {
    return human_challenges == 0
               ? 0.0
               : static_cast<double>(human_abandoned) / static_cast<double>(human_challenges);
  }
};

// Cost to an attacker of pushing `actions` through a challenge wall, given a
// per-solve price and success probability (failed solves are also paid for).
[[nodiscard]] util::Money attacker_challenge_cost(std::uint64_t actions,
                                                  util::Money price_per_solve,
                                                  double success_prob);

}  // namespace fraudsim::mitigate
