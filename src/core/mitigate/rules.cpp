#include "core/mitigate/rules.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fraudsim::mitigate {

RuleEngine::RuleEngine(const sim::Simulation& sim, AllocationMode mode)
    : sim_(sim), mode_(mode) {}

void RuleEngine::set_blocklist_action(app::PolicyAction action) { blocklist_action_ = action; }

void RuleEngine::block_ip(net::IpV4 ip) { blocked_ips_.insert(ip.value()); }

void RuleEngine::block_cidr(net::Cidr cidr) { blocked_cidrs_.push_back(cidr); }

bool RuleEngine::ip_blocked(net::IpV4 ip) const {
  if (blocked_ips_.contains(ip.value())) return true;
  return std::any_of(blocked_cidrs_.begin(), blocked_cidrs_.end(),
                     [ip](const net::Cidr& c) { return c.contains(ip); });
}

void RuleEngine::gate_to_loyalty(web::Endpoint endpoint) { loyalty_gated_.insert(endpoint); }

void RuleEngine::clear_loyalty_gates() { loyalty_gated_.clear(); }

void RuleEngine::set_challenge_mode(ChallengeMode mode) { challenge_mode_ = mode; }

void RuleEngine::add_rate_limit(RateLimitSpec spec) {
  NamedLimiter named;
  // Only Full mode interns limiter keys; Legacy and Arena share the
  // string-keyed store so the perf ladder isolates each optimisation.
  const auto store = mode_ == AllocationMode::Full
                         ? SlidingWindowRateLimiter::KeyStore::Interned
                         : SlidingWindowRateLimiter::KeyStore::Legacy;
  named.limiter = std::make_unique<SlidingWindowRateLimiter>(spec.limit, spec.window, store);
  named.spec = std::move(spec);
  if (metrics_ != nullptr) {
    named.limiter->bind_denials(
        metrics_->counter("mitigate.rate." + named.spec.name + ".denials"));
  }
  limiters_.push_back(std::move(named));
}

void RuleEngine::bind_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  for (auto& named : limiters_) {
    named.limiter->bind_denials(
        metrics_->counter("mitigate.rate." + named.spec.name + ".denials"));
  }
}

const SlidingWindowRateLimiter* RuleEngine::limiter(const std::string& name) const {
  for (const auto& named : limiters_) {
    if (named.spec.name == name) return named.limiter.get();
  }
  return nullptr;
}

void RuleEngine::remove_rate_limit(const std::string& name) {
  limiters_.erase(std::remove_if(limiters_.begin(), limiters_.end(),
                                 [&](const NamedLimiter& n) { return n.spec.name == name; }),
                  limiters_.end());
}

std::string RuleEngine::rate_key(const RateLimitSpec& spec, const web::HttpRequest& request) {
  switch (spec.key) {
    case RateKey::Global:
      return "*";
    case RateKey::ByIp:
      return request.ip.str();
    case RateKey::BySession:
      return request.session.str();
    case RateKey::ByFingerprint:
      return request.fp_hash.str();
    case RateKey::ByBookingRef:
      // Requests without a booking reference fall back to the session key so
      // they cannot dodge the limit by omitting the field.
      return request.booking_ref.value_or("s:" + request.session.str());
  }
  return "*";
}

std::string_view RuleEngine::arena_rate_key(const RateLimitSpec& spec,
                                            const web::HttpRequest& request) {
  switch (spec.key) {
    case RateKey::Global:
      return "*";
    case RateKey::ByIp: {
      // Same dotted-quad rendering as net::IpV4::str(), minus the heap.
      char buf[20];
      const std::uint32_t v = request.ip.value();
      const int len = std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xFF,
                                    (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF);
      return arena_.copy(std::string_view(buf, static_cast<std::size_t>(len)));
    }
    case RateKey::BySession:
      return arena_.format_u64(request.session.value());
    case RateKey::ByFingerprint:
      return arena_.format_u64(request.fp_hash.value());
    case RateKey::ByBookingRef:
      // Requests without a booking reference fall back to the session key so
      // they cannot dodge the limit by omitting the field. A present ref is
      // request-owned storage — view it directly, no copy at all.
      if (request.booking_ref) return *request.booking_ref;
      return arena_.concat("s:", arena_.format_u64(request.session.value()));
  }
  return "*";
}

bool RuleEngine::looks_suspicious(const app::ClientContext& ctx) const {
  if (ctx.fingerprint.webdriver_flag || ctx.fingerprint.headless_hint) return true;
  return consistency_.inconsistency_score(ctx.fingerprint) >= 0.3;
}

app::PolicyDecision RuleEngine::evaluate(const web::HttpRequest& request,
                                         const app::ClientContext& ctx) {
  // Per-request scope for arena-backed rate keys: every view handed out below
  // dies with this call.
  if (mode_ != AllocationMode::Legacy) arena_.reset();

  // 1. IP blocking.
  if (ip_blocked(request.ip)) {
    return app::PolicyDecision{app::PolicyAction::Block, "ip-block", util::ErrorCode::kRejected};
  }

  // 2. Fingerprint blocklist (block or honeypot).
  if (blocklist_.contains(request.fp_hash)) {
    blocklist_.note_hit(request.fp_hash, sim_.now());
    if (blocklist_action_ == app::PolicyAction::Honeypot) {
      return app::PolicyDecision{app::PolicyAction::Honeypot, "fp-honeypot"};
    }
    return app::PolicyDecision{app::PolicyAction::Block, "fp-block", util::ErrorCode::kRejected};
  }

  // 3. Loyalty gating of high-risk features.
  if (loyalty_gated_.contains(request.endpoint) && !ctx.loyalty_member) {
    return app::PolicyDecision{app::PolicyAction::Block, "loyalty-gate",
                               util::ErrorCode::kRejected};
  }

  // 4. Challenge layer.
  if (!ctx.captcha_solved && challenge_mode_ != ChallengeMode::Off &&
      web::is_transactional(request.endpoint)) {
    const bool challenge = challenge_mode_ == ChallengeMode::AllTransactional
                               ? true
                               : looks_suspicious(ctx);
    if (challenge) {
      return app::PolicyDecision{app::PolicyAction::Challenge, "captcha",
                                 util::ErrorCode::kRejected};
    }
  }

  // 5. Rate limits (all matching limits must admit the request; the denial
  // names the first limit that trips). Under brownout every limit is judged
  // against a scaled-down effective limit (never below 1).
  double limit_scale = 1.0;
  if (brownout_ != nullptr && brownout_->enabled()) {
    limit_scale = brownout_->rate_limit_scale();
  }
  for (auto& named : limiters_) {
    if (named.spec.endpoint && *named.spec.endpoint != request.endpoint) continue;
    std::uint64_t effective = named.spec.limit;
    if (limit_scale < 1.0) {
      effective = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::ceil(static_cast<double>(named.spec.limit) * limit_scale)));
    }
    const bool allowed =
        mode_ == AllocationMode::Legacy
            ? named.limiter->allow(sim_.now(), rate_key(named.spec, request), effective)
            : named.limiter->allow(sim_.now(), arena_rate_key(named.spec, request), effective);
    if (!allowed) {
      return app::PolicyDecision{app::PolicyAction::RateLimited, named.spec.name,
                                 util::ErrorCode::kRateLimited};
    }
  }

  return app::PolicyDecision{};
}

void RuleEngine::checkpoint(util::ByteWriter& out) const {
  blocklist_.checkpoint(out);
  out.u8(static_cast<std::uint8_t>(blocklist_action_));
  out.u64(blocked_ips_.size());
  for (std::uint32_t ip : blocked_ips_) out.u32(ip);
  out.u64(blocked_cidrs_.size());
  for (const auto& cidr : blocked_cidrs_) {
    out.u32(cidr.base().value());
    out.i64(cidr.prefix_len());
  }
  out.u64(loyalty_gated_.size());
  for (web::Endpoint e : loyalty_gated_) out.u8(static_cast<std::uint8_t>(e));
  out.u8(static_cast<std::uint8_t>(challenge_mode_));
  out.u64(limiters_.size());
  for (const auto& nl : limiters_) {
    out.str(nl.spec.name);
    nl.limiter->checkpoint(out);
  }
}

void RuleEngine::restore(util::ByteReader& in) {
  blocklist_.restore(in);
  blocklist_action_ = static_cast<app::PolicyAction>(in.u8());
  blocked_ips_.clear();
  const auto ips = in.u64();
  for (std::uint64_t i = 0; i < ips && in.ok(); ++i) blocked_ips_.insert(in.u32());
  blocked_cidrs_.clear();
  const auto cidrs = in.u64();
  for (std::uint64_t i = 0; i < cidrs && in.ok(); ++i) {
    const net::IpV4 base{in.u32()};
    const int prefix = static_cast<int>(in.i64());
    blocked_cidrs_.emplace_back(base, prefix);
  }
  loyalty_gated_.clear();
  const auto gates = in.u64();
  for (std::uint64_t i = 0; i < gates && in.ok(); ++i) {
    loyalty_gated_.insert(static_cast<web::Endpoint>(in.u8()));
  }
  challenge_mode_ = static_cast<ChallengeMode>(in.u8());
  // Limiter specs are scenario configuration: the restoring process must have
  // re-added the same rate limits in the same order. Only window state is
  // carried over; a mismatch leaves later limiters at their fresh state.
  const auto limiter_count = in.u64();
  for (std::uint64_t i = 0; i < limiter_count && in.ok(); ++i) {
    const std::string name = in.str();
    SlidingWindowRateLimiter scratch{0, 1};
    bool matched = false;
    for (auto& nl : limiters_) {
      if (nl.spec.name == name) {
        nl.limiter->restore(in);
        matched = true;
        break;
      }
    }
    if (!matched) scratch.restore(in);  // consume the payload to stay aligned
  }
}

}  // namespace fraudsim::mitigate
