#include "core/mitigate/controller.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/detect/alert.hpp"
#include "core/obs/profile.hpp"

namespace fraudsim::mitigate {

MitigationController::MitigationController(app::Application& application, RuleEngine& engine,
                                           ControllerConfig config)
    : app_(application),
      engine_(engine),
      config_(config),
      nip_detector_(config.nip),
      name_analyzer_(config.names),
      sms_detector_(config.sms),
      biometric_detector_(config.biometric_thresholds),
      sweep_fault_(fault::FaultRegistry::global().point("detect.sweep.run")),
      sweeps_(application.metrics().counter("mitigate.sweeps")),
      sweeps_skipped_(application.metrics().counter("mitigate.sweeps_skipped")),
      actions_counter_(application.metrics().counter("mitigate.actions")) {}

void MitigationController::record_action(EnforcementAction action) {
  actions_counter_.inc();
  actions_.push_back(std::move(action));
}

void MitigationController::fit_nip_baseline(sim::SimTime from, sim::SimTime to) {
  nip_detector_.fit_baseline(app_.inventory().reservations(), from, to);
}

void MitigationController::start(sim::SimTime until) {
  until_ = until;
  schedule_next();
}

void MitigationController::schedule_next() {
  if (app_.simulation().now() + config_.sweep_interval > until_) return;
  app_.simulation().schedule_in(config_.sweep_interval, [this] {
    sweep();
    schedule_next();
  });
}

void MitigationController::sweep() {
  const obs::ScopedTimer timer(obs::Profiler::instance().phase("mitigate.sweep"));
  const sim::SimTime now = app_.simulation().now();
  if (sweep_fault_.should_fail(now)) {
    // Detection backend down: skip this sweep entirely. Enforcement resumes
    // at the next scheduled sweep after the outage.
    sweeps_skipped_.inc();
    record_action(EnforcementAction{now, "sweep-skipped", "detection outage"});
    return;
  }
  sweeps_.inc();
  const sim::SimTime from = std::max<sim::SimTime>(0, now - config_.analysis_window);

  std::unordered_set<fp::FpHash> to_block;

  // 1. Advanced feature-level detectors over the window's reservations. A
  // fingerprint is only enforceable once enough DISTINCT reservations
  // carrying it have been flagged (popular configurations are shared with
  // legitimate users).
  detect::AlertSink sink;
  nip_detector_.analyze(app_.inventory().reservations(), from, now, sink);
  std::vector<airline::Reservation> window;
  for (const auto& r : app_.inventory().reservations()) {
    if (r.created >= from && r.created < now) window.push_back(r);
  }
  name_analyzer_.analyze(window, sink);
  if (config_.block_flagged_fingerprints) {
    for (const auto& alert : sink.alerts()) {
      if (!alert.fingerprint || !alert.fingerprint->valid() || !alert.pnr) continue;
      auto& pnrs = flagged_pnrs_[*alert.fingerprint];
      pnrs.insert(*alert.pnr);
      if (pnrs.size() >= config_.min_flagged_pnrs) to_block.insert(*alert.fingerprint);
    }
  }

  // 2. Biometric enforcement (§V): fingerprints whose pointer telemetry keeps
  // failing the kinematic/replay checks. The detector and per-fp tallies are
  // persistent members so replayed geometries accumulate across sweeps.
  // Under brownout only every stride-th sample is scanned — the expensive
  // detector thins out while the platform is hot.
  if (config_.block_biometric_flagged) {
    const int stride =
        app_.overload().enabled() ? app_.overload().brownout().detector_stride() : 1;
    const auto& log = app_.biometric_log();
    for (; biometric_cursor_ < log.size(); ++biometric_cursor_) {
      if (stride > 1 && (biometric_cursor_ % static_cast<std::size_t>(stride)) != 0) continue;
      const auto& record = log[biometric_cursor_];
      std::string reason;
      if (!biometric_detector_.observe(record.features, &reason)) continue;
      if (++biometric_hits_[record.fingerprint] >= config_.min_biometric_hits) {
        to_block.insert(record.fingerprint);
      }
    }
  }

  // 3. Automation artifacts observed at ingress.
  if (config_.block_artifact_fingerprints) {
    app_.fingerprints().for_each(
        [&](fp::FpHash hash, const fp::Fingerprint& fingerprint, std::uint64_t) {
          if (fingerprint.webdriver_flag || fingerprint.headless_hint) to_block.insert(hash);
        });
  }

  for (const auto hash : to_block) {
    if (engine_.blocklist().contains(hash)) continue;
    engine_.blocklist().block(hash, now, "controller-sweep");
    record_action(EnforcementAction{now, "fp-block", hash.str()});
  }

  // 4. NiP cap (once).
  if (config_.impose_nip_cap && !nip_cap_time_) {
    const auto verdict = nip_detector_.evaluate_window(app_.inventory().reservations(), from, now);
    if (verdict.anomalous) {
      app_.inventory().set_max_nip(config_.nip_cap_value);
      nip_cap_time_ = now;
      record_action(EnforcementAction{
          now, "nip-cap", "cap=" + std::to_string(config_.nip_cap_value)});
    }
  }

  // 5. SMS feature removal on path-volume trip (once).
  if (config_.disable_sms_on_path_trip && !sms_disable_time_) {
    if (const auto trip = sms_detector_.path_limit_trip_time(app_.sms_gateway());
        trip && *trip <= now) {
      app_.boarding().set_sms_option_enabled(false);
      sms_disable_time_ = now;
      record_action(EnforcementAction{now, "sms-disable", "boarding-pass SMS removed"});
    }
  }
}

}  // namespace fraudsim::mitigate
