#include "core/mitigate/controller.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/detect/alert.hpp"
#include "core/obs/profile.hpp"

namespace fraudsim::mitigate {

MitigationController::MitigationController(app::Application& application, RuleEngine& engine,
                                           ControllerConfig config)
    : app_(application),
      engine_(engine),
      config_(config),
      nip_detector_(config.nip),
      name_analyzer_(config.names),
      sms_detector_(config.sms),
      biometric_detector_(config.biometric_thresholds),
      sweep_fault_(fault::FaultRegistry::global().point("detect.sweep.run")),
      sweeps_(application.metrics().counter("mitigate.sweeps")),
      sweeps_skipped_(application.metrics().counter("mitigate.sweeps_skipped")),
      actions_counter_(application.metrics().counter("mitigate.actions")) {}

void MitigationController::record_action(EnforcementAction action) {
  actions_counter_.inc();
  actions_.push_back(std::move(action));
}

void MitigationController::fit_nip_baseline(sim::SimTime from, sim::SimTime to) {
  nip_detector_.fit_baseline(app_.inventory().reservations(), from, to);
}

void MitigationController::start(sim::SimTime until) {
  until_ = until;
  schedule_next();
}

void MitigationController::schedule_next() {
  if (app_.simulation().now() + config_.sweep_interval > until_) return;
  app_.simulation().schedule_in(config_.sweep_interval, [this] {
    sweep();
    schedule_next();
  });
}

void MitigationController::sweep() {
  const obs::ScopedTimer timer(obs::Profiler::instance().phase("mitigate.sweep"));
  const sim::SimTime now = app_.simulation().now();
  if (sweep_fault_.should_fail(now)) {
    // Detection backend down: skip this sweep entirely. Enforcement resumes
    // at the next scheduled sweep after the outage.
    sweeps_skipped_.inc();
    record_action(EnforcementAction{now, "sweep-skipped", "detection outage"});
    return;
  }
  sweeps_.inc();
  const sim::SimTime from = std::max<sim::SimTime>(0, now - config_.analysis_window);

  std::unordered_set<fp::FpHash> to_block;

  // 1. Advanced feature-level detectors over the window's reservations. A
  // fingerprint is only enforceable once enough DISTINCT reservations
  // carrying it have been flagged (popular configurations are shared with
  // legitimate users).
  detect::AlertSink sink;
  nip_detector_.analyze(app_.inventory().reservations(), from, now, sink);
  std::vector<airline::Reservation> window;
  for (const auto& r : app_.inventory().reservations()) {
    if (r.created >= from && r.created < now) window.push_back(r);
  }
  name_analyzer_.analyze(window, sink);
  if (config_.block_flagged_fingerprints) {
    for (const auto& alert : sink.alerts()) {
      if (!alert.fingerprint || !alert.fingerprint->valid() || !alert.pnr) continue;
      auto& pnrs = flagged_pnrs_[*alert.fingerprint];
      pnrs.insert(*alert.pnr);
      if (pnrs.size() >= config_.min_flagged_pnrs) to_block.insert(*alert.fingerprint);
    }
  }

  // 2. Biometric enforcement (§V): fingerprints whose pointer telemetry keeps
  // failing the kinematic/replay checks. The detector and per-fp tallies are
  // persistent members so replayed geometries accumulate across sweeps.
  // Under brownout only every stride-th sample is scanned — the expensive
  // detector thins out while the platform is hot.
  if (config_.block_biometric_flagged) {
    const int stride =
        app_.overload().enabled() ? app_.overload().brownout().detector_stride() : 1;
    const auto& log = app_.biometric_log();
    for (; biometric_cursor_ < log.size(); ++biometric_cursor_) {
      if (stride > 1 && (biometric_cursor_ % static_cast<std::size_t>(stride)) != 0) continue;
      const auto& record = log[biometric_cursor_];
      std::string reason;
      if (!biometric_detector_.observe(record.features, &reason)) continue;
      if (++biometric_hits_[record.fingerprint] >= config_.min_biometric_hits) {
        to_block.insert(record.fingerprint);
      }
    }
  }

  // 3. Automation artifacts observed at ingress.
  if (config_.block_artifact_fingerprints) {
    app_.fingerprints().for_each(
        [&](fp::FpHash hash, const fp::Fingerprint& fingerprint, std::uint64_t) {
          if (fingerprint.webdriver_flag || fingerprint.headless_hint) to_block.insert(hash);
        });
  }

  // Enforce in hash order: to_block's unordered iteration order depends on
  // container history, which a checkpoint restore does not reproduce — the
  // action ledger (and the SOC report rendering it) must not depend on it.
  std::vector<fp::FpHash> ordered(to_block.begin(), to_block.end());
  std::sort(ordered.begin(), ordered.end(),
            [](fp::FpHash a, fp::FpHash b) { return a.value() < b.value(); });
  for (const auto hash : ordered) {
    if (engine_.blocklist().contains(hash)) continue;
    engine_.blocklist().block(hash, now, "controller-sweep");
    record_action(EnforcementAction{now, "fp-block", hash.str()});
  }

  // 4. NiP cap (once).
  if (config_.impose_nip_cap && !nip_cap_time_) {
    const auto verdict = nip_detector_.evaluate_window(app_.inventory().reservations(), from, now);
    if (verdict.anomalous) {
      app_.inventory().set_max_nip(config_.nip_cap_value);
      nip_cap_time_ = now;
      record_action(EnforcementAction{
          now, "nip-cap", "cap=" + std::to_string(config_.nip_cap_value)});
    }
  }

  // 5. SMS feature removal on path-volume trip (once).
  if (config_.disable_sms_on_path_trip && !sms_disable_time_) {
    if (const auto trip = sms_detector_.path_limit_trip_time(app_.sms_gateway());
        trip && *trip <= now) {
      app_.boarding().set_sms_option_enabled(false);
      sms_disable_time_ = now;
      record_action(EnforcementAction{now, "sms-disable", "boarding-pass SMS removed"});
    }
  }
}

void MitigationController::checkpoint(util::ByteWriter& out) const {
  // NiP baseline (refitting from reservations would scan state that may have
  // been trimmed; the histogram itself is small).
  const auto& baseline = nip_detector_.baseline().entries();
  out.u64(baseline.size());
  for (const auto& [nip, count] : baseline) {
    out.i64(nip);
    out.u64(count);
  }
  out.i64(until_);
  // flagged_pnrs_ / biometric_hits_ are unordered_maps; write hashes sorted
  // so checkpoint frames are byte-stable across standard libraries and
  // restore -> re-checkpoint round trips (the per-hash PNR sets are std::set,
  // already ordered).
  std::vector<fp::FpHash> flagged_order;
  flagged_order.reserve(flagged_pnrs_.size());
  for (const auto& [hash, pnrs] : flagged_pnrs_) flagged_order.push_back(hash);
  std::sort(flagged_order.begin(), flagged_order.end(),
            [](fp::FpHash a, fp::FpHash b) { return a.value() < b.value(); });
  out.u64(flagged_order.size());
  for (const fp::FpHash hash : flagged_order) {
    const auto& pnrs = flagged_pnrs_.at(hash);
    out.u64(hash.value());
    out.u64(pnrs.size());
    for (const auto& pnr : pnrs) out.str(pnr);
  }
  biometric_detector_.checkpoint(out);
  out.u64(biometric_cursor_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hits_order;
  hits_order.reserve(biometric_hits_.size());
  for (const auto& [hash, hits] : biometric_hits_) hits_order.emplace_back(hash.value(), hits);
  std::sort(hits_order.begin(), hits_order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u64(hits_order.size());
  for (const auto& [hash, hits] : hits_order) {
    out.u64(hash);
    out.u64(hits);
  }
  out.u64(actions_.size());
  for (const auto& a : actions_) {
    out.i64(a.time);
    out.str(a.kind);
    out.str(a.detail);
  }
  out.boolean(nip_cap_time_.has_value());
  if (nip_cap_time_) out.i64(*nip_cap_time_);
  out.boolean(sms_disable_time_.has_value());
  if (sms_disable_time_) out.i64(*sms_disable_time_);
}

void MitigationController::restore(util::ByteReader& in) {
  analytics::CategoricalHistogram<int> baseline;
  const auto baseline_entries = in.u64();
  for (std::uint64_t i = 0; i < baseline_entries && in.ok(); ++i) {
    const int nip = static_cast<int>(in.i64());
    baseline.add(nip, in.u64());
  }
  nip_detector_.fit_baseline(baseline);
  until_ = in.i64();
  flagged_pnrs_.clear();
  const auto flagged = in.u64();
  for (std::uint64_t i = 0; i < flagged && in.ok(); ++i) {
    const fp::FpHash hash{in.u64()};
    auto& pnrs = flagged_pnrs_[hash];
    const auto count = in.u64();
    for (std::uint64_t p = 0; p < count && in.ok(); ++p) pnrs.insert(in.str());
  }
  biometric_detector_.restore(in);
  biometric_cursor_ = in.u64();
  biometric_hits_.clear();
  const auto hits = in.u64();
  for (std::uint64_t i = 0; i < hits && in.ok(); ++i) {
    const fp::FpHash hash{in.u64()};
    biometric_hits_[hash] = in.u64();
  }
  actions_.clear();
  const auto action_count = in.u64();
  for (std::uint64_t i = 0; i < action_count && in.ok(); ++i) {
    EnforcementAction a;
    a.time = in.i64();
    a.kind = in.str();
    a.detail = in.str();
    actions_.push_back(std::move(a));
  }
  nip_cap_time_.reset();
  if (in.boolean()) nip_cap_time_ = in.i64();
  sms_disable_time_.reset();
  if (in.boolean()) sms_disable_time_ = in.i64();
}

}  // namespace fraudsim::mitigate
