// Mitigation controller: the automated SOC loop.
//
// Periodically sweeps recent telemetry with the advanced detectors and turns
// findings into enforcement:
//   * flagged reservations' fingerprints -> blocklist (block or honeypot)
//   * automation-artifact fingerprints   -> blocklist
//   * NiP-distribution anomaly           -> impose a NiP cap (§IV-A)
//   * SMS path-volume trip               -> disable the SMS feature (§IV-C)
//
// Every action is recorded with its timestamp so benches can measure rule
// lifetimes and attacker reaction latency.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/application.hpp"
#include "biometrics/detector.hpp"
#include "core/fault/fault.hpp"
#include "core/obs/metrics.hpp"
#include "core/detect/name_patterns.hpp"
#include "core/detect/nip_anomaly.hpp"
#include "core/detect/sms_anomaly.hpp"
#include "core/mitigate/rules.hpp"

namespace fraudsim::mitigate {

struct ControllerConfig {
  sim::SimDuration sweep_interval = sim::hours(1);
  sim::SimDuration analysis_window = sim::hours(6);
  bool block_flagged_fingerprints = true;
  bool block_artifact_fingerprints = true;
  // A fingerprint is only blocked once this many DISTINCT reservations
  // carrying it have been flagged: popular configurations are shared by many
  // legitimate users, so single-sighting blocking would be indiscriminate.
  std::uint64_t min_flagged_pnrs = 4;
  bool impose_nip_cap = false;
  int nip_cap_value = 4;
  bool disable_sms_on_path_trip = false;
  // §V behavioural enforcement: block fingerprints whose pointer telemetry
  // keeps failing the biometric checks (scripted movement / replays).
  bool block_biometric_flagged = false;
  std::uint64_t min_biometric_hits = 5;
  detect::NipAnomalyConfig nip;
  detect::NamePatternConfig names;
  detect::SmsAnomalyConfig sms;
  biometrics::BiometricThresholds biometric_thresholds;
};

struct EnforcementAction {
  sim::SimTime time = 0;
  std::string kind;    // "fp-block", "nip-cap", "sms-disable", ...
  std::string detail;
};

class MitigationController {
 public:
  MitigationController(app::Application& application, RuleEngine& engine,
                       ControllerConfig config);

  // Fit the NiP baseline from a clean reference window (call before start).
  void fit_nip_baseline(sim::SimTime from, sim::SimTime to);

  // Schedules sweeps until `until`.
  void start(sim::SimTime until);

  // One synchronous sweep over [now - window, now) — also callable directly.
  // Guarded by the "detect.sweep.run" fault point: a sweep that lands in an
  // injected outage window is skipped (and counted) instead of enforcing on
  // stale state — the SOC loop goes blind for the window, which is exactly
  // the degradation the outage bench prices.
  void sweep();

  // Sweep tallies, served from the platform metrics registry
  // ("mitigate.sweeps", "mitigate.sweeps_skipped", "mitigate.actions").
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_.value(); }
  [[nodiscard]] std::uint64_t skipped_sweeps() const { return sweeps_skipped_.value(); }

  [[nodiscard]] const std::vector<EnforcementAction>& actions() const { return actions_; }
  [[nodiscard]] std::optional<sim::SimTime> nip_cap_time() const { return nip_cap_time_; }
  [[nodiscard]] std::optional<sim::SimTime> sms_disable_time() const { return sms_disable_time_; }
  [[nodiscard]] std::size_t fingerprints_blocked() const {
    return engine_.blocklist().size();
  }

  // Checkpoint support: detector baselines, cross-sweep accumulators and the
  // action ledger. The rule engine and application are checkpointed by their
  // owners; sweep-tally counters live in the metrics registry.
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  void schedule_next();
  void record_action(EnforcementAction action);

  app::Application& app_;
  RuleEngine& engine_;
  ControllerConfig config_;
  detect::NipAnomalyDetector nip_detector_;
  detect::NamePatternAnalyzer name_analyzer_;
  detect::SmsAnomalyDetector sms_detector_;
  sim::SimTime until_ = 0;
  // Distinct flagged reservations seen per fingerprint (across sweeps).
  std::unordered_map<fp::FpHash, std::set<std::string>> flagged_pnrs_;
  // Biometric enforcement state (persistent: replay digests accumulate).
  biometrics::BiometricDetector biometric_detector_;
  std::size_t biometric_cursor_ = 0;
  std::unordered_map<fp::FpHash, std::uint64_t> biometric_hits_;
  std::vector<EnforcementAction> actions_;
  std::optional<sim::SimTime> nip_cap_time_;
  std::optional<sim::SimTime> sms_disable_time_;
  fault::FaultPoint& sweep_fault_;
  // "mitigate.*" counter handles (cells live in the application's registry).
  obs::Counter sweeps_;
  obs::Counter sweeps_skipped_;
  obs::Counter actions_counter_;
};

}  // namespace fraudsim::mitigate
