#include "core/mitigate/rate_limit.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace fraudsim::mitigate {

SlidingWindowRateLimiter::SlidingWindowRateLimiter(std::uint64_t limit, sim::SimDuration window,
                                                   KeyStore store)
    : limit_(limit), window_(window), store_(store) {}

void SlidingWindowRateLimiter::prune(sim::SimTime now, std::deque<sim::SimTime>& q) const {
  while (!q.empty() && q.front() <= now - window_) q.pop_front();
}

void SlidingWindowRateLimiter::evict_stale(sim::SimTime now) {
  if (now - last_sweep_ < window_) return;
  last_sweep_ = now;
  // A key is stale when its newest event has aged out of the window.
  if (store_ == KeyStore::Interned) {
    for (util::InternTable::Id id = 1; id <= windows_.size(); ++id) {
      if (!keys_.contains(id)) continue;
      auto& q = windows_[id - 1];
      if (q.empty() || q.back() <= now - window_) {
        q.clear();
        keys_.erase(id);
      }
    }
  } else {
    for (auto it = events_.begin(); it != events_.end();) {
      if (it->second.empty() || it->second.back() <= now - window_) {
        it = events_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::deque<sim::SimTime>& SlidingWindowRateLimiter::window_for(std::string_view key) {
  if (store_ == KeyStore::Interned) {
    const util::InternTable::Id id = keys_.intern(key);
    if (windows_.size() < id) windows_.resize(id);
    return windows_[id - 1];
  }
  auto it = events_.find(key);
  if (it == events_.end()) {
    it = events_.emplace(std::string(key), std::deque<sim::SimTime>{}).first;
  }
  return it->second;
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, std::string_view key) {
  return allow(now, key, limit_);
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, std::string_view key,
                                     std::uint64_t effective_limit) {
  evict_stale(now);
  auto& q = window_for(key);
  prune(now, q);
  if (q.size() >= effective_limit) {
    if (denials_counter_.bound()) {
      denials_counter_.inc();
    } else {
      ++local_denials_;
    }
    return false;
  }
  q.push_back(now);
  return true;
}

std::uint64_t SlidingWindowRateLimiter::current(sim::SimTime now, std::string_view key) {
  if (store_ == KeyStore::Interned) {
    const util::InternTable::Id id = keys_.find(key);
    if (id == 0) return 0;
    auto& q = windows_[id - 1];
    prune(now, q);
    if (q.empty()) {
      keys_.erase(id);
      return 0;
    }
    return q.size();
  }
  const auto it = events_.find(key);
  if (it == events_.end()) return 0;
  prune(now, it->second);
  if (it->second.empty()) {
    events_.erase(it);
    return 0;
  }
  return it->second.size();
}

std::uint64_t SlidingWindowRateLimiter::max_in_window(sim::SimTime now) const {
  std::uint64_t max = 0;
  const auto count_live = [&](const std::deque<sim::SimTime>& q) {
    std::uint64_t live = 0;
    for (sim::SimTime t : q) {
      if (t > now - window_) ++live;
    }
    max = std::max(max, live);
  };
  if (store_ == KeyStore::Interned) {
    for (util::InternTable::Id id = 1; id <= windows_.size(); ++id) {
      if (keys_.contains(id)) count_live(windows_[id - 1]);
    }
  } else {
    for (const auto& [key, q] : events_) count_live(q);
  }
  return max;
}

void SlidingWindowRateLimiter::checkpoint(util::ByteWriter& out) const {
  out.u64(local_denials_);
  out.i64(last_sweep_);
  // The active store is an unordered_map: its iteration order depends on the
  // standard library and on container history (a restore replays insertions
  // in checkpoint order, not the original arrival order). Write keys sorted
  // by string so checkpoint frames are byte-stable across implementations,
  // across a restore -> re-checkpoint round trip, and across key stores.
  std::vector<std::pair<const std::string*, const std::deque<sim::SimTime>*>> items;
  if (store_ == KeyStore::Interned) {
    items.reserve(keys_.size());
    for (util::InternTable::Id id = 1; id <= windows_.size(); ++id) {
      if (keys_.contains(id)) items.emplace_back(&keys_.str(id), &windows_[id - 1]);
    }
  } else {
    items.reserve(events_.size());
    for (const auto& [key, q] : events_) items.emplace_back(&key, &q);
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  out.u64(items.size());
  for (const auto& [key, q] : items) {
    out.str(*key);
    out.u64(q->size());
    for (sim::SimTime t : *q) out.i64(t);
  }
}

void SlidingWindowRateLimiter::restore(util::ByteReader& in) {
  local_denials_ = in.u64();
  last_sweep_ = in.i64();
  const auto n = in.u64();
  clear();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    const std::string key = in.str();
    auto& q = window_for(key);
    const auto events = in.u64();
    for (std::uint64_t e = 0; e < events && in.ok(); ++e) q.push_back(in.i64());
  }
}

}  // namespace fraudsim::mitigate
