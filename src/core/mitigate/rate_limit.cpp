#include "core/mitigate/rate_limit.hpp"

namespace fraudsim::mitigate {

SlidingWindowRateLimiter::SlidingWindowRateLimiter(std::uint64_t limit, sim::SimDuration window)
    : limit_(limit), window_(window) {}

void SlidingWindowRateLimiter::prune(sim::SimTime now, std::deque<sim::SimTime>& q) const {
  while (!q.empty() && q.front() <= now - window_) q.pop_front();
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, const std::string& key) {
  auto& q = events_[key];
  prune(now, q);
  if (q.size() >= limit_) {
    ++denials_;
    return false;
  }
  q.push_back(now);
  return true;
}

std::uint64_t SlidingWindowRateLimiter::current(sim::SimTime now, const std::string& key) {
  auto& q = events_[key];
  prune(now, q);
  return q.size();
}

}  // namespace fraudsim::mitigate
