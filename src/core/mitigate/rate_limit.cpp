#include "core/mitigate/rate_limit.hpp"

#include <algorithm>
#include <vector>

namespace fraudsim::mitigate {

SlidingWindowRateLimiter::SlidingWindowRateLimiter(std::uint64_t limit, sim::SimDuration window)
    : limit_(limit), window_(window) {}

void SlidingWindowRateLimiter::prune(sim::SimTime now, std::deque<sim::SimTime>& q) const {
  while (!q.empty() && q.front() <= now - window_) q.pop_front();
}

void SlidingWindowRateLimiter::evict_stale(sim::SimTime now) {
  if (now - last_sweep_ < window_) return;
  last_sweep_ = now;
  for (auto it = events_.begin(); it != events_.end();) {
    // A key is stale when its newest event has aged out of the window.
    if (it->second.empty() || it->second.back() <= now - window_) {
      it = events_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, const std::string& key) {
  return allow(now, key, limit_);
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, const std::string& key,
                                     std::uint64_t effective_limit) {
  evict_stale(now);
  auto& q = events_[key];
  prune(now, q);
  if (q.size() >= effective_limit) {
    if (denials_counter_.bound()) {
      denials_counter_.inc();
    } else {
      ++local_denials_;
    }
    return false;
  }
  q.push_back(now);
  return true;
}

std::uint64_t SlidingWindowRateLimiter::current(sim::SimTime now, const std::string& key) {
  const auto it = events_.find(key);
  if (it == events_.end()) return 0;
  prune(now, it->second);
  if (it->second.empty()) {
    events_.erase(it);
    return 0;
  }
  return it->second.size();
}

std::uint64_t SlidingWindowRateLimiter::max_in_window(sim::SimTime now) const {
  std::uint64_t max = 0;
  for (const auto& [key, q] : events_) {
    std::uint64_t live = 0;
    for (sim::SimTime t : q) {
      if (t > now - window_) ++live;
    }
    max = std::max(max, live);
  }
  return max;
}

void SlidingWindowRateLimiter::checkpoint(util::ByteWriter& out) const {
  out.u64(local_denials_);
  out.i64(last_sweep_);
  // events_ is an unordered_map: its iteration order depends on the standard
  // library and on container history (a restore replays insertions in
  // checkpoint order, not the original arrival order). Write keys sorted so
  // checkpoint frames are byte-stable across implementations and across a
  // restore -> re-checkpoint round trip.
  std::vector<const std::string*> keys;
  keys.reserve(events_.size());
  for (const auto& [key, q] : events_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  out.u64(events_.size());
  for (const std::string* key : keys) {
    const auto& q = events_.at(*key);
    out.str(*key);
    out.u64(q.size());
    for (sim::SimTime t : q) out.i64(t);
  }
}

void SlidingWindowRateLimiter::restore(util::ByteReader& in) {
  local_denials_ = in.u64();
  last_sweep_ = in.i64();
  const auto n = in.u64();
  events_.clear();
  for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
    const std::string key = in.str();
    auto& q = events_[key];
    const auto events = in.u64();
    for (std::uint64_t e = 0; e < events && in.ok(); ++e) q.push_back(in.i64());
  }
}

}  // namespace fraudsim::mitigate
