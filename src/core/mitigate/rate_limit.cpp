#include "core/mitigate/rate_limit.hpp"

namespace fraudsim::mitigate {

SlidingWindowRateLimiter::SlidingWindowRateLimiter(std::uint64_t limit, sim::SimDuration window)
    : limit_(limit), window_(window) {}

void SlidingWindowRateLimiter::prune(sim::SimTime now, std::deque<sim::SimTime>& q) const {
  while (!q.empty() && q.front() <= now - window_) q.pop_front();
}

void SlidingWindowRateLimiter::evict_stale(sim::SimTime now) {
  if (now - last_sweep_ < window_) return;
  last_sweep_ = now;
  for (auto it = events_.begin(); it != events_.end();) {
    // A key is stale when its newest event has aged out of the window.
    if (it->second.empty() || it->second.back() <= now - window_) {
      it = events_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, const std::string& key) {
  return allow(now, key, limit_);
}

bool SlidingWindowRateLimiter::allow(sim::SimTime now, const std::string& key,
                                     std::uint64_t effective_limit) {
  evict_stale(now);
  auto& q = events_[key];
  prune(now, q);
  if (q.size() >= effective_limit) {
    if (denials_counter_.bound()) {
      denials_counter_.inc();
    } else {
      ++local_denials_;
    }
    return false;
  }
  q.push_back(now);
  return true;
}

std::uint64_t SlidingWindowRateLimiter::current(sim::SimTime now, const std::string& key) {
  const auto it = events_.find(key);
  if (it == events_.end()) return 0;
  prune(now, it->second);
  if (it->second.empty()) {
    events_.erase(it);
    return 0;
  }
  return it->second.size();
}

}  // namespace fraudsim::mitigate
