#include "core/mitigate/captcha.hpp"

#include <cmath>

namespace fraudsim::mitigate {

util::Money attacker_challenge_cost(std::uint64_t actions, util::Money price_per_solve,
                                    double success_prob) {
  if (actions == 0) return util::Money{};
  if (success_prob <= 0.0) {
    // No solve ever succeeds; model a bounded burn before giving up.
    return price_per_solve * static_cast<std::int64_t>(actions * 3);
  }
  // Each action needs on average 1/success_prob solve attempts.
  const double attempts = static_cast<double>(actions) / success_prob;
  return price_per_solve * attempts;
}

}  // namespace fraudsim::mitigate
