// Honeypot / decoy-environment accounting (§V).
//
// The decoy itself lives inside app::Application (blocklisted identities are
// transparently served from a mirrored inventory). This module measures the
// effect: how much attacker effort landed in the decoy, what it cost them,
// and how much real inventory the decoy protected.
#pragma once

#include <cstdint>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "util/money.hpp"

namespace fraudsim::mitigate {

struct HoneypotReport {
  std::uint64_t decoy_holds = 0;       // holds served from the decoy
  std::uint64_t decoy_seats = 0;       // seats "held" that never existed
  std::uint64_t real_holds_by_abusers = 0;  // what still hit real inventory
  std::uint64_t real_seats_by_abusers = 0;
  // Attacker spend wasted on decoy traffic (proxy + captcha are attributed by
  // the caller; this report carries the request count to price).
  std::uint64_t decoy_requests = 0;

  // Fraction of abuser hold volume absorbed by the decoy.
  [[nodiscard]] double absorption_rate() const {
    const auto total = decoy_holds + real_holds_by_abusers;
    return total == 0 ? 0.0 : static_cast<double>(decoy_holds) / static_cast<double>(total);
  }
};

// Builds the report from the application's real + decoy inventories, using
// the registry to restrict to abuser actors.
[[nodiscard]] HoneypotReport honeypot_report(const app::Application& application,
                                             const app::ActorRegistry& registry);

// Money the attacker burned on decoy traffic (§V: "attackers waste resources
// believing to hold items in a false environment").
[[nodiscard]] util::Money attacker_waste(const HoneypotReport& report,
                                         util::Money proxy_cost_per_request);

}  // namespace fraudsim::mitigate
