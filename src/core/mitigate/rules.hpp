// The mitigation rule engine (the concrete IngressPolicy).
//
// Implements every §V mitigation class:
//   * fingerprint / IP blocking      (knowledge-based enforcement)
//   * honeypot redirection           (blocked identities silently decoyed)
//   * feature access restriction     (loyalty gating of high-risk endpoints)
//   * CAPTCHA layering               (challenge at critical points)
//   * ad-hoc rate limiting           (per path / IP / session / fingerprint /
//                                     booking reference)
//
// Evaluation order: IP block -> fingerprint blocklist (block or honeypot) ->
// loyalty gate -> challenge -> rate limits -> allow. First match wins.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "app/policy.hpp"
#include "core/detect/fingerprint_detect.hpp"
#include "core/mitigate/rate_limit.hpp"
#include "core/overload/brownout.hpp"
#include "fingerprint/consistency.hpp"
#include "net/ip.hpp"
#include "sim/simulation.hpp"
#include "util/arena.hpp"

namespace fraudsim::mitigate {

// How the admit path materialises rate-limit keys and limiter key state.
// The three modes form a measurement ladder for the perf harness: each step
// turns on exactly one optimisation, so BENCH_core.json can attribute the
// arena win and the interning win separately.
//   Legacy — heap std::string keys, string-keyed limiter windows (the
//            pre-optimisation baseline).
//   Arena  — keys rendered into a per-request bump arena (string_view, no
//            heap), limiter windows still string-keyed.
//   Full   — arena keys AND interned limiter key stores (the default).
// Decisions, denial tallies and checkpoint bytes are identical in all modes.
enum class AllocationMode : std::uint8_t { Legacy, Arena, Full };

enum class RateKey : std::uint8_t { Global, ByIp, BySession, ByFingerprint, ByBookingRef };

struct RateLimitSpec {
  std::string name;
  std::optional<web::Endpoint> endpoint;  // nullopt = all endpoints
  RateKey key = RateKey::ByIp;
  std::uint64_t limit = 100;
  sim::SimDuration window = sim::kHour;
};

enum class ChallengeMode : std::uint8_t {
  Off,
  SuspiciousOnly,  // automation artifacts or inconsistent fingerprints
  AllTransactional,
};

class RuleEngine final : public app::IngressPolicy {
 public:
  explicit RuleEngine(const sim::Simulation& sim, AllocationMode mode = AllocationMode::Full);

  // The mode is fixed per engine: it selects the key store of every limiter
  // added afterwards, so set it at construction (before add_rate_limit).
  [[nodiscard]] AllocationMode allocation_mode() const { return mode_; }
  // The per-request key arena — its Stats are the perf harness's allocation
  // probe for the admit path (always zero in Legacy mode).
  [[nodiscard]] const util::Arena& key_arena() const { return arena_; }

  app::PolicyDecision evaluate(const web::HttpRequest& request,
                               const app::ClientContext& ctx) override;

  // --- Fingerprint blocking / honeypot --------------------------------------
  [[nodiscard]] detect::FingerprintBlocklist& blocklist() { return blocklist_; }
  [[nodiscard]] const detect::FingerprintBlocklist& blocklist() const { return blocklist_; }
  // What happens to blocklisted fingerprints: hard block (default) or silent
  // honeypot redirection.
  void set_blocklist_action(app::PolicyAction action);

  // --- IP blocking -----------------------------------------------------------
  void block_ip(net::IpV4 ip);
  void block_cidr(net::Cidr cidr);
  [[nodiscard]] bool ip_blocked(net::IpV4 ip) const;

  // --- Feature gating ---------------------------------------------------------
  // Restrict an endpoint to loyalty members.
  void gate_to_loyalty(web::Endpoint endpoint);
  void clear_loyalty_gates();

  // --- Challenges ---------------------------------------------------------------
  void set_challenge_mode(ChallengeMode mode);
  [[nodiscard]] ChallengeMode challenge_mode() const { return challenge_mode_; }

  // --- Rate limits ----------------------------------------------------------------
  void add_rate_limit(RateLimitSpec spec);
  [[nodiscard]] const SlidingWindowRateLimiter* limiter(const std::string& name) const;
  void remove_rate_limit(const std::string& name);
  // Visits every configured limiter (spec order) — the invariant oracle walks
  // these to check per-key window counts against the configured limits.
  template <typename Fn>
  void for_each_limiter(Fn&& fn) const {
    for (const auto& named : limiters_) fn(named.spec, *named.limiter);
  }

  // --- Observability -----------------------------------------------------------
  // Publishes per-limiter denial tallies as "mitigate.rate.<name>.denials"
  // counters in `metrics` (non-owning; nullptr detaches future bindings).
  // Existing and future limiters are bound.
  void bind_metrics(obs::MetricsRegistry* metrics);

  // --- Overload coupling ------------------------------------------------------
  // Attach the platform's brownout controller (non-owning; nullptr detaches).
  // While attached and escalated, every rate limit is judged against
  // ceil(limit * rate_limit_scale) — limits tighten transiently under load
  // and relax on their own when the controller steps back down.
  void observe_overload(const overload::BrownoutController* brownout) { brownout_ = brownout; }

  // --- Checkpoint support -----------------------------------------------------
  // Serialises dynamic enforcement state (blocklist, blocked IPs/CIDRs,
  // loyalty gates, challenge mode, per-limiter windows). Restore expects the
  // same limiter specs to have been re-added in the same order before the
  // call (specs are scenario configuration, not run state).
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  [[nodiscard]] static std::string rate_key(const RateLimitSpec& spec,
                                            const web::HttpRequest& request);
  // Arena-backed twin of rate_key(): renders the exact same bytes into
  // arena_ (or views request-owned storage) instead of heap strings.
  [[nodiscard]] std::string_view arena_rate_key(const RateLimitSpec& spec,
                                                const web::HttpRequest& request);
  [[nodiscard]] bool looks_suspicious(const app::ClientContext& ctx) const;

  const sim::Simulation& sim_;
  AllocationMode mode_;
  util::Arena arena_;  // reset per evaluate(); backs arena_rate_key views
  detect::FingerprintBlocklist blocklist_;
  app::PolicyAction blocklist_action_ = app::PolicyAction::Block;
  std::set<std::uint32_t> blocked_ips_;
  std::vector<net::Cidr> blocked_cidrs_;
  std::set<web::Endpoint> loyalty_gated_;
  ChallengeMode challenge_mode_ = ChallengeMode::Off;
  fp::ConsistencyChecker consistency_;
  struct NamedLimiter {
    RateLimitSpec spec;
    std::unique_ptr<SlidingWindowRateLimiter> limiter;
  };
  std::vector<NamedLimiter> limiters_;
  const overload::BrownoutController* brownout_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;  // non-owning
};

}  // namespace fraudsim::mitigate
