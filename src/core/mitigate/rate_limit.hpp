// Sliding-window rate limiter.
//
// Keys are free-form strings so the same limiter implements every keying the
// paper's mitigations need: per path (global), per IP, per session, per
// fingerprint, per booking reference, per user profile.
//
// Memory is bounded under key churn: a key whose newest event has aged out of
// the window carries no state worth keeping, so an amortised sweep (at most
// once per window) erases such keys. Long-running scenarios with rotating
// IPs/sessions therefore hold O(active keys), not O(all keys ever seen).
//
// Two key stores back the window map, selectable per limiter:
//   * Interned (default): keys are interned to dense u32 ids and windows live
//     in an integer-keyed map — steady-state admits hash the key string once
//     and do integer work from there. Stale-key eviction releases the intern
//     id, so the table stays bounded by live keys.
//   * Legacy: the original string-keyed map. Kept so the perf harness can
//     attribute the interning win, and as the reference for equivalence tests.
// Decisions, denial tallies and checkpoint bytes are identical in both modes.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/obs/metrics.hpp"
#include "sim/time.hpp"
#include "util/intern.hpp"

namespace fraudsim::mitigate {

class SlidingWindowRateLimiter {
 public:
  enum class KeyStore : std::uint8_t { Legacy, Interned };

  SlidingWindowRateLimiter(std::uint64_t limit, sim::SimDuration window,
                           KeyStore store = KeyStore::Interned);

  // Records the event and returns true if it is within the limit; false if
  // the event exceeds it (denied events are not recorded, so a client cannot
  // extend its own penalty by hammering).
  bool allow(sim::SimTime now, std::string_view key);

  // Same, but judged against `effective_limit` instead of the configured
  // limit (brownout tightens limits transiently without rebuilding limiter
  // state; the window history is shared either way).
  bool allow(sim::SimTime now, std::string_view key, std::uint64_t effective_limit);

  // Count currently in the window for the key (after pruning). Does not
  // create state for unseen keys.
  [[nodiscard]] std::uint64_t current(sim::SimTime now, std::string_view key);

  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] sim::SimDuration window() const { return window_; }
  [[nodiscard]] KeyStore key_store() const { return store_; }
  [[nodiscard]] std::uint64_t denials() const {
    return denials_counter_.bound() ? denials_counter_.value() : local_denials_;
  }

  // Publishes this limiter's denial tally through a registry counter.
  // Denials recorded before binding are carried into the counter; afterwards
  // the counter cell is the single tally.
  void bind_denials(obs::Counter counter) {
    if (!counter.bound()) return;
    counter.inc(local_denials_);
    local_denials_ = 0;
    denials_counter_ = counter;
  }

  // Number of keys currently holding state (bounded by the number of keys
  // active within the last ~window, not by lifetime distinct keys).
  [[nodiscard]] std::size_t key_count() const {
    return store_ == KeyStore::Interned ? keys_.size() : events_.size();
  }

  // Largest in-window event count across all live keys at `now`, computed
  // without mutating limiter state (events older than now - window are
  // skipped, not pruned). The invariant oracle checks this never exceeds
  // limit(): allow() records only within-limit events and brownout only
  // tightens effective limits.
  [[nodiscard]] std::uint64_t max_in_window(sim::SimTime now) const;

  void clear() {
    events_.clear();
    windows_.clear();
    keys_.clear();
  }

  // Checkpoint support: window history per key, denial tally, sweep clock.
  // The frame lists keys sorted by string regardless of key store, so
  // checkpoints taken in Legacy and Interned mode are byte-identical and
  // restore works across modes. The denial tally is always serialised as a
  // plain count; restore adds it to whichever store (local or bound counter)
  // is active, assuming the bound counter cell was reset/restored alongside
  // (registry restore).
  void checkpoint(util::ByteWriter& out) const;
  void restore(util::ByteReader& in);

 private:
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept { return a == b; }
  };

  // The window deque for `key` in the active store, created if absent.
  [[nodiscard]] std::deque<sim::SimTime>& window_for(std::string_view key);
  void prune(sim::SimTime now, std::deque<sim::SimTime>& q) const;
  // Drops every key with no event newer than now - window. Amortised: runs at
  // most once per window span. Interned mode also releases the intern id so
  // the id space is bounded by live keys.
  void evict_stale(sim::SimTime now);

  std::uint64_t limit_;
  sim::SimDuration window_;
  KeyStore store_;
  // Legacy store: string-keyed windows (heterogeneous lookup, no temporary
  // std::string on probe).
  std::unordered_map<std::string, std::deque<sim::SimTime>, KeyHash, KeyEq> events_;
  // Interned store: key strings live once in keys_; windows are a dense
  // vector indexed by id-1, so after the single intern probe every window
  // access is an array index (and sweeps walk contiguous memory). Id
  // recycling reuses slots; erase paths clear the slot's deque so a recycled
  // id never inherits stale events.
  util::InternTable keys_;
  std::vector<std::deque<sim::SimTime>> windows_;
  // Denial tally: local until bind_denials() publishes it to a registry.
  std::uint64_t local_denials_ = 0;
  obs::Counter denials_counter_;
  sim::SimTime last_sweep_ = 0;
};

}  // namespace fraudsim::mitigate
