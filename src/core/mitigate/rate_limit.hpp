// Sliding-window rate limiter.
//
// Keys are free-form strings so the same limiter implements every keying the
// paper's mitigations need: per path (global), per IP, per session, per
// fingerprint, per booking reference, per user profile.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "sim/time.hpp"

namespace fraudsim::mitigate {

class SlidingWindowRateLimiter {
 public:
  SlidingWindowRateLimiter(std::uint64_t limit, sim::SimDuration window);

  // Records the event and returns true if it is within the limit; false if
  // the event exceeds it (denied events are not recorded, so a client cannot
  // extend its own penalty by hammering).
  bool allow(sim::SimTime now, const std::string& key);

  // Count currently in the window for the key (after pruning).
  [[nodiscard]] std::uint64_t current(sim::SimTime now, const std::string& key);

  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] sim::SimDuration window() const { return window_; }
  [[nodiscard]] std::uint64_t denials() const { return denials_; }

  void clear() { events_.clear(); }

 private:
  void prune(sim::SimTime now, std::deque<sim::SimTime>& q) const;

  std::uint64_t limit_;
  sim::SimDuration window_;
  std::unordered_map<std::string, std::deque<sim::SimTime>> events_;
  std::uint64_t denials_ = 0;
};

}  // namespace fraudsim::mitigate
