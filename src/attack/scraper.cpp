#include "attack/scraper.hpp"

#include <algorithm>
#include <memory>

namespace fraudsim::attack {

ScraperBot::ScraperBot(app::Application& application, app::ActorRegistry& actors,
                       net::ProxyPool& proxies, const fp::PopulationModel& population,
                       ScraperConfig config, sim::Rng rng)
    : app_(application),
      proxies_(proxies),
      population_(population),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::Scraper)) {}

void ScraperBot::start() {
  app_.simulation().schedule_in(0, [this] { run_session(config_.sessions); });
}

void ScraperBot::run_session(int remaining_sessions) {
  if (remaining_sessions <= 0) return;
  ++stats_.sessions;

  auto ctx = std::make_shared<app::ClientContext>();
  const auto exit = proxies_.exit(rng_, std::nullopt);
  ctx->ip = exit.ip;
  ctx->session = web::SessionId{(actor_.value() << 20) | session_seq_++};
  ctx->fingerprint = config_.naive ? population_.sample_naive_bot(rng_)
                                   : population_.sample_spoofed(rng_, fp::SpoofOptions{});
  ctx->actor = actor_;

  sim::SimDuration at = 0;
  for (int i = 0; i < config_.requests_per_session; ++i) {
    at += std::max<sim::SimDuration>(
        100, static_cast<sim::SimDuration>(rng_.exponential(config_.mean_gap_seconds) *
                                           sim::kSecond));
    app_.simulation().schedule_in(at, [this, ctx] {
      web::Endpoint endpoint = web::Endpoint::SearchFlights;
      if (rng_.bernoulli(0.35)) endpoint = web::Endpoint::FlightDetails;
      if (config_.naive && rng_.bernoulli(config_.trap_hit_prob)) endpoint = web::Endpoint::TrapFile;
      const auto status = app_.browse(*ctx, endpoint);
      ++stats_.requests;
      if (status == app::CallStatus::Blocked) ++stats_.blocked;
    });
  }
  app_.simulation().schedule_in(at + config_.session_gap, [this, remaining_sessions] {
    run_session(remaining_sessions - 1);
  });
}

}  // namespace fraudsim::attack
