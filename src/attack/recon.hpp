// Attacker reconnaissance (paper §IV-A): "the attackers conducted preliminary
// reconnaissance before executing the attack. They carefully studied the
// airline's reservation system, identifying the seat hold duration and
// maximum number of passengers per booking."
//
// The probe learns both parameters empirically, exactly as a human operator
// would: binary-search the NiP cap with throwaway hold requests, then place
// one canary hold and poll the booking until it lapses.
#pragma once

#include <functional>
#include <optional>

#include "attack/bot_base.hpp"
#include "attack/identity_gen.hpp"

namespace fraudsim::attack {

struct ReconConfig {
  airline::FlightId probe_flight;  // any bookable flight works
  int max_nip_to_probe = 12;       // upper bound of the cap search
  // Polling cadence while waiting for the canary hold to lapse.
  sim::SimDuration poll_interval = sim::minutes(5);
  sim::SimDuration max_wait = sim::hours(12);
};

struct ReconFindings {
  std::optional<int> max_nip;                     // the airline's NiP cap
  std::optional<sim::SimDuration> hold_duration;  // rounded up to the poll tick
  std::uint64_t probes_sent = 0;
};

class ReconProbe {
 public:
  ReconProbe(app::Application& application, app::ActorRegistry& actors, net::ProxyPool& proxies,
             const fp::PopulationModel& population, ReconConfig config, sim::Rng rng);

  // Runs the probe; `done` fires once both parameters are learned (or the
  // wait budget runs out).
  void start(std::function<void(const ReconFindings&)> done);

  [[nodiscard]] const ReconFindings& findings() const { return findings_; }

 private:
  void probe_nip_cap(int lo, int hi);
  void plant_canary();
  void poll_canary(sim::SimTime planted_at, const std::string& pnr);

  app::Application& app_;
  ReconConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  EvasionStack stack_;
  IdentityGenerator identities_;
  ReconFindings findings_;
  std::function<void(const ReconFindings&)> done_;
};

}  // namespace fraudsim::attack
