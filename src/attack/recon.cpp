#include "attack/recon.hpp"

#include <algorithm>

namespace fraudsim::attack {

ReconProbe::ReconProbe(app::Application& application, app::ActorRegistry& actors,
                       net::ProxyPool& proxies, const fp::PopulationModel& population,
                       ReconConfig config, sim::Rng rng)
    : app_(application),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::SeatSpinBot)),
      stack_(population, proxies, fp::RotationConfig{}, rng_.fork("evasion"), actor_),
      identities_(IdentityGenConfig{IdentityRegime::PlausibleRandom, 6, 0.0, 8},
                  rng_.fork("identities")) {}

void ReconProbe::start(std::function<void(const ReconFindings&)> done) {
  done_ = std::move(done);
  probe_nip_cap(1, config_.max_nip_to_probe);
}

void ReconProbe::probe_nip_cap(int lo, int hi) {
  // Invariant: a hold of `lo` passengers is known (or assumed) to succeed;
  // `hi + 1` is known (or assumed) to fail. Binary search with throwaway
  // holds; each probe is spaced out so the trickle looks like browsing.
  if (lo >= hi) {
    findings_.max_nip = lo;
    plant_canary();
    return;
  }
  const int mid = (lo + hi + 1) / 2;
  auto ctx = stack_.context(app_.simulation().now());
  ++findings_.probes_sent;
  const auto result = app_.hold(ctx, config_.probe_flight, identities_.make_party(mid));
  int next_lo = lo;
  int next_hi = hi;
  if (result.status == app::CallStatus::Ok) {
    next_lo = mid;
    // Clean up: no reason to keep blocking inventory during recon. A real
    // operator can't cancel without logging in, so the hold simply lapses;
    // we leave it to expire for fidelity.
  } else if (result.status == app::CallStatus::BusinessReject && result.rejection &&
             result.rejection->reason == airline::HoldRejection::Reason::NipCapExceeded) {
    next_hi = mid - 1;
  } else {
    // Availability or policy noise: retry the same range later.
  }
  const auto gap = static_cast<sim::SimDuration>(rng_.uniform(60.0, 300.0) * sim::kSecond);
  app_.simulation().schedule_in(gap, [this, next_lo, next_hi] {
    probe_nip_cap(next_lo, next_hi);
  });
}

void ReconProbe::plant_canary() {
  auto ctx = stack_.context(app_.simulation().now());
  ++findings_.probes_sent;
  const auto result = app_.hold(ctx, config_.probe_flight, identities_.make_party(1));
  if (result.status != app::CallStatus::Ok) {
    // Couldn't plant; report what we have.
    if (done_) done_(findings_);
    return;
  }
  const sim::SimTime planted = app_.simulation().now();
  poll_canary(planted, result.pnr);
}

void ReconProbe::poll_canary(sim::SimTime planted_at, const std::string& pnr) {
  const sim::SimTime now = app_.simulation().now();
  if (now - planted_at > config_.max_wait) {
    if (done_) done_(findings_);
    return;
  }
  // "Retrieve my booking": once the hold lapses, the public view flips —
  // the observable signal of the hold window's length.
  auto ctx = stack_.context(now);
  const auto view = app_.retrieve_booking(ctx, pnr);
  if (view.found && !view.held) {
    findings_.hold_duration = now - planted_at;
    if (done_) done_(findings_);
    return;
  }
  app_.simulation().schedule_in(config_.poll_interval, [this, planted_at, pnr] {
    poll_canary(planted_at, pnr);
  });
}

}  // namespace fraudsim::attack
