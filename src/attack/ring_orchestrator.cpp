#include "attack/ring_orchestrator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fraudsim::attack {

RingOrchestrator::RingOrchestrator(app::Application& application, app::ActorRegistry& actors,
                                   net::ProxyPool& proxies,
                                   const fp::PopulationModel& population, RingConfig config,
                                   sim::Rng rng)
    : app_(application),
      proxies_(proxies),
      config_(config),
      rng_(std::move(rng)),
      identities_(IdentityGenConfig{IdentityRegime::PlausibleRandom, 6, 0.0, 8},
                  rng_.fork("identities")) {
  // The scarce pools are drawn once, up front: the ring buys a small stock of
  // spoofed fingerprints and tokenized cards, then rotates through them for
  // the whole campaign. Exits come from the residential pool on demand.
  auto pool_rng = rng_.fork("pools");
  fingerprints_.reserve(static_cast<std::size_t>(config_.shared_fingerprints));
  for (int i = 0; i < config_.shared_fingerprints; ++i) {
    fingerprints_.push_back(population.sample_spoofed(pool_rng, fp::SpoofOptions{}));
  }
  tokens_.reserve(static_cast<std::size_t>(config_.shared_payment_tokens));
  for (int i = 0; i < config_.shared_payment_tokens; ++i) {
    tokens_.push_back("tok-" + pool_rng.random_digits(12));
  }
  // The campaign operates out of one country: exits and the phone pool agree.
  country_ = proxies_.exit(pool_rng, std::nullopt).country;
  sms::NumberGenerator numbers(rng_.fork("numbers"));
  numbers_ = numbers.build_pool(country_, 32);

  members_.reserve(static_cast<std::size_t>(config_.members));
  member_rngs_.reserve(static_cast<std::size_t>(config_.members));
  state_.resize(static_cast<std::size_t>(config_.members));
  for (int i = 0; i < config_.members; ++i) {
    members_.push_back(actors.register_actor(app::ActorKind::RingBot));
    member_rngs_.push_back(rng_.fork("member-" + std::to_string(i)));
  }
}

void RingOrchestrator::start(sim::SimTime horizon) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    // Per-member start jitter: the ring never thunders in at one instant.
    const auto jitter = static_cast<sim::SimDuration>(
        member_rngs_[i].exponential(static_cast<double>(config_.mean_action_gap)));
    const sim::SimTime at = config_.start + jitter;
    if (at >= stop_time(horizon)) continue;
    app_.simulation().schedule_at(at, [this, i, horizon] { act(i, horizon); });
  }
}

sim::SimTime RingOrchestrator::stop_time(sim::SimTime horizon) const {
  return config_.stop > 0 ? std::min(config_.stop, horizon) : horizon;
}

sim::SimDuration RingOrchestrator::think(sim::Rng& rng) {
  // Human-scale think time between funnel steps, same shape as the legit
  // generator's (lognormal around ~20 s).
  const double seconds = std::clamp(rng.lognormal(3.0, 0.6), 3.0, 240.0);
  return static_cast<sim::SimDuration>(seconds * sim::kSecond);
}

void RingOrchestrator::roll_session(std::size_t member, sim::SimTime now) {
  const auto epoch = static_cast<std::uint64_t>(
      config_.rotate_every > 0 ? now / config_.rotate_every : 0);
  MemberState& st = state_[member];
  if (st.epoch != epoch) {
    st.epoch = epoch;
    bump_session(member);
  }
}

void RingOrchestrator::bump_session(std::size_t member) {
  MemberState& st = state_[member];
  ++st.serial;
  st.fresh = true;
  st.searched = false;
  if (--st.exit_sessions_left <= 0) {
    st.exit = proxies_.exit(member_rngs_[member], country_).ip;
    st.exit_sessions_left = std::max(1, config_.sessions_per_exit);
  }
}

app::ClientContext RingOrchestrator::context(std::size_t member) const {
  const MemberState& st = state_[member];
  app::ClientContext ctx;
  ctx.actor = members_[member];
  ctx.session = web::SessionId{kSessionBand + (static_cast<std::uint64_t>(member) << 16) +
                               (st.serial & 0xFFFFull)};
  ctx.fingerprint = fingerprints_[(member + st.epoch) % fingerprints_.size()];
  ctx.ip = st.exit;
  // No payment token on page views: it is only presented at payment time.
  return ctx;
}

void RingOrchestrator::note(app::CallStatus status) {
  ++stats_.requests;
  if (status == app::CallStatus::Blocked || status == app::CallStatus::Challenged ||
      status == app::CallStatus::RateLimited || status == app::CallStatus::Overloaded) {
    ++stats_.denied;
  }
}

void RingOrchestrator::schedule_next(std::size_t member, sim::SimTime horizon) {
  const sim::SimTime now = app_.simulation().now();
  const auto gap = std::max<sim::SimDuration>(
      sim::seconds(5),
      static_cast<sim::SimDuration>(
          member_rngs_[member].exponential(static_cast<double>(config_.mean_action_gap))));
  if (now + gap < stop_time(horizon)) {
    app_.simulation().schedule_in(gap, [this, member, horizon] { act(member, horizon); });
  }
}

void RingOrchestrator::end_session_and_continue(std::size_t member, sim::SimTime horizon) {
  bump_session(member);
  schedule_next(member, horizon);
}

void RingOrchestrator::act(std::size_t member, sim::SimTime horizon) {
  const sim::SimTime now = app_.simulation().now();
  if (now >= stop_time(horizon)) return;
  sim::Rng& rng = member_rngs_[member];
  ++stats_.actions;
  roll_session(member, now);
  MemberState& st = state_[member];
  const auto ctx = context(member);

  // Every session opens on the home page, like every legitimate journey.
  if (st.fresh) {
    st.fresh = false;
    note(app_.browse(ctx, web::Endpoint::Home));
    schedule_next(member, horizon);
    return;
  }

  // The first page after Home is always a flight search: legitimate journeys
  // overwhelmingly open Home -> Search, and a Details-first session is exactly
  // the shape the navigation model's clean threshold penalizes.
  if (!st.searched) {
    st.searched = true;
    note(app_.browse(ctx, web::Endpoint::SearchFlights));
    schedule_next(member, horizon);
    return;
  }

  if (!app_.inventory().flights().empty() && rng.bernoulli(config_.p_hold)) {
    // Booking funnel: Details -> SeatMap -> Hold, each a think apart. The
    // member goes quiet until the funnel resolves (one journey at a time).
    note(app_.browse(ctx, web::Endpoint::FlightDetails));
    app_.simulation().schedule_in(
        think(rng), [this, member, ctx, horizon] { funnel_seatmap(member, ctx, horizon); });
    return;
  }

  note(app_.browse(ctx, rng.bernoulli(0.6) ? web::Endpoint::SearchFlights
                                           : web::Endpoint::FlightDetails));
  schedule_next(member, horizon);
}

void RingOrchestrator::funnel_seatmap(std::size_t member, app::ClientContext ctx,
                                      sim::SimTime horizon) {
  if (app_.simulation().now() >= stop_time(horizon)) return;
  note(app_.browse(ctx, web::Endpoint::SeatMap));
  app_.simulation().schedule_in(
      think(member_rngs_[member]),
      [this, member, ctx, horizon] { funnel_hold(member, ctx, horizon); });
}

void RingOrchestrator::funnel_hold(std::size_t member, app::ClientContext ctx,
                                   sim::SimTime horizon) {
  if (app_.simulation().now() >= stop_time(horizon)) return;
  sim::Rng& rng = member_rngs_[member];
  const int nip = static_cast<int>(
      rng.uniform_int(config_.party_min, std::max(config_.party_min, config_.party_max)));
  // Like a real customer, only book flights with room for the party.
  std::vector<airline::FlightId> candidates;
  for (const auto f : app_.inventory().flights()) {
    if (app_.inventory().available_seats(f) >= nip) candidates.push_back(f);
  }
  if (candidates.empty()) {
    end_session_and_continue(member, horizon);
    return;
  }
  const auto flight = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  ++stats_.holds_attempted;
  const auto hold = app_.hold(ctx, flight, identities_.make_party(nip));
  note(hold.status);
  if (hold.status == app::CallStatus::Ok) {
    ++stats_.holds_ok;
    if (rng.bernoulli(config_.p_pay)) {
      app_.simulation().schedule_in(think(rng), [this, member, ctx, pnr = hold.pnr, horizon] {
        funnel_pay(member, ctx, pnr, horizon);
      });
      return;
    }
  }
  end_session_and_continue(member, horizon);
}

void RingOrchestrator::funnel_pay(std::size_t member, app::ClientContext ctx, std::string pnr,
                                  sim::SimTime horizon) {
  if (app_.simulation().now() >= stop_time(horizon)) return;
  sim::Rng& rng = member_rngs_[member];
  ctx.payment_token = tokens_[member % tokens_.size()];
  const auto pay = app_.pay(ctx, pnr);
  note(pay);
  if (pay == app::CallStatus::Ok) {
    ++stats_.pays_ok;
    if (rng.bernoulli(config_.p_sms)) {
      app_.simulation().schedule_in(
          think(rng), [this, member, ctx, pnr = std::move(pnr), horizon] {
            funnel_sms(member, ctx, pnr, horizon);
          });
      return;
    }
  }
  end_session_and_continue(member, horizon);
}

void RingOrchestrator::funnel_sms(std::size_t member, app::ClientContext ctx, std::string pnr,
                                  sim::SimTime horizon) {
  if (app_.simulation().now() >= stop_time(horizon)) return;
  sim::Rng& rng = member_rngs_[member];
  const auto& number = numbers_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(numbers_.size()) - 1))];
  note(app_.request_boarding_sms(ctx, pnr, number).status);
  ++stats_.sms_requested;
  end_session_and_continue(member, horizon);
}

}  // namespace fraudsim::attack
