#include "attack/manual_spinner.hpp"

#include <algorithm>

namespace fraudsim::attack {

ManualSpinner::ManualSpinner(app::Application& application, app::ActorRegistry& actors,
                             net::ProxyPool& proxies, const fp::PopulationModel& population,
                             ManualSpinnerConfig config, sim::Rng rng)
    : app_(application),
      proxies_(proxies),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::ManualSpinner)),
      identities_(config.identity, rng_.fork("identities")) {
  // One or two real devices, sampled from the genuine population.
  devices_.push_back(population.sample(rng_));
  if (rng_.bernoulli(0.3)) devices_.push_back(population.sample(rng_));
}

void ManualSpinner::start() { schedule_next_session(); }

void ManualSpinner::schedule_next_session() {
  const double gap_hours = rng_.exponential(24.0 / config_.sessions_per_day);
  const auto delay = static_cast<sim::SimDuration>(gap_hours * sim::kHour);
  app_.simulation().schedule_in(std::max<sim::SimDuration>(delay, sim::minutes(5)),
                                [this] { run_session(); });
}

void ManualSpinner::run_session() {
  const sim::SimTime now = app_.simulation().now();
  const airline::Flight* flight = app_.inventory().flight(config_.target);
  if (flight == nullptr) return;
  if (now >= flight->departure - config_.stop_before_departure) {
    stats_.stopped_at = now;
    return;
  }
  ++stats_.sessions;

  app::ClientContext ctx;
  const auto exit = proxies_.exit(rng_, std::nullopt);  // VPN hop, any country
  ctx.ip = exit.ip;
  ctx.session = web::SessionId{(actor_.value() << 20) | session_seq_++};
  ctx.fingerprint = devices_[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(devices_.size()) - 1))];
  ctx.actor = actor_;

  // Human browsing trail with human pacing.
  app_.browse(ctx, web::Endpoint::Home);
  sim::SimDuration at = static_cast<sim::SimDuration>(rng_.uniform(8.0, 40.0) * sim::kSecond);
  app_.simulation().schedule_in(at, [this, ctx]() mutable {
    app_.browse(ctx, web::Endpoint::SearchFlights);
  });
  at += static_cast<sim::SimDuration>(rng_.uniform(10.0, 60.0) * sim::kSecond);
  app_.simulation().schedule_in(at, [this, ctx]() mutable {
    app_.browse(ctx, web::Endpoint::SeatMap);
  });
  at += static_cast<sim::SimDuration>(rng_.uniform(15.0, 90.0) * sim::kSecond);
  app_.simulation().schedule_in(at, [this, ctx]() mutable {
    // A human at a real mouse: genuinely human pointer telemetry.
    ctx.pointer_biometrics = biometrics::extract(
        biometrics::human_trajectory(rng_, biometrics::TrajectoryTarget{}));
    const int nip = static_cast<int>(rng_.uniform_int(config_.min_nip, config_.max_nip));
    auto party = identities_.make_party(nip);
    ++stats_.holds_attempted;
    auto result = app_.hold(ctx, config_.target, party);
    if (result.status == app::CallStatus::Challenged) {
      ++stats_.challenged;
      if (rng_.bernoulli(config_.p_solve_captcha)) {
        ctx.captcha_solved = true;
        result = app_.hold(ctx, config_.target, std::move(party));
        ctx.captcha_solved = false;
      }
    }
    if (result.status == app::CallStatus::Ok) {
      ++stats_.holds_succeeded;
    } else if (result.status == app::CallStatus::Blocked) {
      ++stats_.blocked;
    }
    schedule_next_session();
  });
}

}  // namespace fraudsim::attack
