// Organized abuse ring: N coordinated accounts sharing scarce
// infrastructure, each individually under every per-entity threshold.
//
// The campaign shape the paper's case studies converge on once per-entity
// controls (NiP caps, rate limits, SMS quotas, IP reputation, navigation
// modelling) are deployed: split the activity across enough accounts and
// sessions that no single entity crosses any band — but keep the operation
// economical by re-using the assets that are expensive to multiply: a small
// pool of spoofed device fingerprints and a handful of tokenized payment
// instruments. Residential exits are cheap, so those rotate fast instead.
// Per-entity detectors see hundreds of quiet, human-shaped sessions; the
// entity graph (core/detect/graph) sees one component tied together by the
// shared fingerprints and tokens, with an amplified aggregate.
//
// Evasion, by construction:
//   * every member registers its own ActorKind::RingBot ground-truth actor;
//   * actions pace with exponential gaps far under the volume thresholds,
//     and every funnel step is separated by human-scale think time;
//   * sessions follow the legitimate navigation funnel (Home -> browse ->
//     FlightDetails -> SeatMap -> Hold -> Payment), never the API-style
//     shortcuts the navigation model flags;
//   * the session cookie burns after every booking funnel and on the epoch
//     cadence; each residential exit serves at most `sessions_per_exit`
//     sessions, under IP-reputation's address-reuse bar;
//   * parties are small (1-2) with plausible-random identities; no pointer
//     biometrics are ever attached (absence is silent to the detector);
//   * the shared payment token is only presented at payment time.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "attack/bot_base.hpp"
#include "attack/identity_gen.hpp"
#include "net/proxy.hpp"
#include "sms/number.hpp"

namespace fraudsim::attack {

struct RingConfig {
  int members = 16;
  // The scarce shared pools — the structural tie the entity graph links on.
  // The smaller they are, the stronger the sharing factor the graph detector
  // sees (sessions per distinct fingerprint / payment token).
  int shared_fingerprints = 4;
  int shared_payment_tokens = 3;
  // Residential exits are cheap: each drawn exit serves at most this many
  // sessions before the member rotates to a fresh one, staying under the
  // IP-reputation address-reuse bar.
  int sessions_per_exit = 2;
  // Epoch cadence: every epoch each member burns its cookie and the
  // fingerprint assignments shift by one so members cycle the shared pool.
  sim::SimDuration rotate_every = sim::hours(1);
  // Pacing. Mean gap between one member's page views — far under the volume
  // thresholds (max_requests_per_minute, min interarrival) by construction.
  sim::SimDuration mean_action_gap = sim::minutes(6);
  sim::SimTime start = sim::hours(1);
  sim::SimTime stop = 0;  // 0 = run until the horizon passed to start()
  // Per-action behaviour: one page view per action; with p_hold the member
  // enters a booking funnel (Details -> SeatMap -> Hold) instead, paying a
  // successful hold with p_pay and requesting boarding SMS with p_sms.
  double p_hold = 0.25;
  int party_min = 1;
  int party_max = 2;
  double p_pay = 0.15;
  double p_sms = 0.25;
};

struct RingStats {
  std::uint64_t actions = 0;
  std::uint64_t requests = 0;
  std::uint64_t holds_attempted = 0;
  std::uint64_t holds_ok = 0;
  std::uint64_t pays_ok = 0;
  std::uint64_t sms_requested = 0;
  std::uint64_t denied = 0;  // blocked / challenged / rate limited / shed
};

class RingOrchestrator {
 public:
  RingOrchestrator(app::Application& application, app::ActorRegistry& actors,
                   net::ProxyPool& proxies, const fp::PopulationModel& population,
                   RingConfig config, sim::Rng rng);

  // Schedules every member's first action (config.start + per-member jitter).
  void start(sim::SimTime horizon);

  [[nodiscard]] const RingStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<web::ActorId>& members() const { return members_; }
  [[nodiscard]] const std::vector<std::string>& payment_tokens() const { return tokens_; }

  // Session-id band: high bit pattern distinct from the legit generator's
  // ids and the seat-spin script's 0x0100... band.
  static constexpr std::uint64_t kSessionBand = 0x0200'0000'0000'0000ull;

 private:
  // Per-member session state: the current cookie serial, whether the next
  // page view opens the session (Home first, like every legit journey), and
  // the residential exit with its remaining session budget.
  struct MemberState {
    std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();
    std::uint32_t serial = 0;
    bool fresh = true;
    bool searched = false;  // session has hit SearchFlights (Home -> Search
                            // first, like every legitimate journey)
    net::IpV4 exit{};
    int exit_sessions_left = 0;
  };

  void act(std::size_t member, sim::SimTime horizon);
  void funnel_seatmap(std::size_t member, app::ClientContext ctx, sim::SimTime horizon);
  void funnel_hold(std::size_t member, app::ClientContext ctx, sim::SimTime horizon);
  void funnel_pay(std::size_t member, app::ClientContext ctx, std::string pnr,
                  sim::SimTime horizon);
  void funnel_sms(std::size_t member, app::ClientContext ctx, std::string pnr,
                  sim::SimTime horizon);

  // Epoch rollover check (act time): a new epoch burns the cookie.
  void roll_session(std::size_t member, sim::SimTime now);
  // Burn the cookie: next page view is fresh; rotate the exit when spent.
  void bump_session(std::size_t member);
  void end_session_and_continue(std::size_t member, sim::SimTime horizon);
  void schedule_next(std::size_t member, sim::SimTime horizon);

  [[nodiscard]] app::ClientContext context(std::size_t member) const;
  [[nodiscard]] sim::SimTime stop_time(sim::SimTime horizon) const;
  [[nodiscard]] sim::SimDuration think(sim::Rng& rng);
  void note(app::CallStatus status);

  app::Application& app_;
  net::ProxyPool& proxies_;
  RingConfig config_;
  sim::Rng rng_;
  IdentityGenerator identities_;
  net::CountryCode country_{};
  std::vector<web::ActorId> members_;
  std::vector<sim::Rng> member_rngs_;
  std::vector<MemberState> state_;
  // The scarce shared pools (fixed for the campaign; assignments rotate).
  std::vector<fp::Fingerprint> fingerprints_;
  std::vector<std::string> tokens_;
  std::vector<sms::PhoneNumber> numbers_;
  RingStats stats_;
};

}  // namespace fraudsim::attack
