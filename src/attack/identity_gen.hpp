// Attacker identity regimes (paper §IV-B).
//
// The case studies report four distinct passenger-identity patterns:
//   * Gibberish            — fully random entries ("affjgdui ddfjrei")
//   * FixedNameRotatingBirthdate — Airline B (Oct 2024): first passenger's
//     name fixed, birthdate rotated systematically; companions drawn from a
//     small overlapping name set with varying birthdates
//   * PermutedFixedSet     — Airline C (Dec 2024), manual: the same small set
//     of real names reused in different orders, with occasional misspellings
//   * PlausibleRandom      — stolen/fabricated but realistic identities
//     (the SMS-pumping ticket purchases of §IV-C)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "airline/passenger.hpp"
#include "sim/rng.hpp"

namespace fraudsim::attack {

enum class IdentityRegime : std::uint8_t {
  PlausibleRandom,
  Gibberish,
  FixedNameRotatingBirthdate,
  PermutedFixedSet,
};

[[nodiscard]] const char* to_string(IdentityRegime r);

struct IdentityGenConfig {
  IdentityRegime regime = IdentityRegime::Gibberish;
  // PermutedFixedSet: size of the fixed name pool.
  int fixed_set_size = 6;
  // PermutedFixedSet: per-name probability of a one-character misspelling.
  double misspell_prob = 0.08;
  // FixedNameRotatingBirthdate: size of the companion name pool that
  // overlaps across reservations.
  int companion_pool_size = 8;
};

class IdentityGenerator {
 public:
  IdentityGenerator(IdentityGenConfig config, sim::Rng rng);

  // A party of `nip` passengers under the configured regime.
  [[nodiscard]] std::vector<airline::Passenger> make_party(int nip);

  [[nodiscard]] IdentityRegime regime() const { return config_.regime; }

 private:
  [[nodiscard]] airline::Passenger gibberish_passenger();

  IdentityGenConfig config_;
  sim::Rng rng_;
  // FixedNameRotatingBirthdate state.
  airline::Passenger lead_;           // fixed name, birthdate rotated per party
  int birthdate_step_ = 0;
  std::vector<airline::Passenger> companions_;
  // PermutedFixedSet state.
  std::vector<airline::Passenger> fixed_set_;
};

}  // namespace fraudsim::attack
