// Automated Seat Spinning (Denial of Inventory) bot — paper §IV-A.
//
// The bot keeps a target flight's availability at zero by holding seats and
// re-holding the moment a hold expires. It reproduces the observed attacker
// behaviours:
//   * reconnaissance-informed NiP choice (high but below the airline max,
//     to avoid the statistically-rare maximum)
//   * adaptation to a NiP cap (shift to the new cap and persist)
//   * fingerprint rotation ~5.3 h after each blocking rule
//   * IP rotation through residential proxies
//   * full stop `stop_before_departure` before the flight leaves
//   * low per-session request footprint (no crawling, just holds)
#pragma once

#include <string>
#include <vector>

#include "attack/bot_base.hpp"
#include "attack/identity_gen.hpp"

namespace fraudsim::attack {

struct SeatSpinConfig {
  airline::FlightId target;
  int initial_nip = 6;
  bool adapt_to_cap = true;        // shift NiP when the cap rejects us
  bool fill_remainder = true;      // hold fewer seats when < NiP remain
  IdentityGenConfig identity{IdentityRegime::Gibberish, 6, 0.08, 8};
  fp::RotationConfig rotation;     // defaults: mean 5.3 h reaction
  CaptchaSolverConfig solver;
  sim::SimDuration check_interval = sim::minutes(2);
  sim::SimDuration stop_before_departure = sim::days(2);
  int max_holds_per_tick = 12;
  // Seat budget: stop topping up once this many seats are held (0 = pin the
  // whole flight). The low-and-slow generation holds only part of the cabin
  // — enough to hoard the valuable seats or skew dynamic pricing — so its
  // volume blends into normal booking traffic (§IV-A closing paragraph).
  int max_concurrent_seats = 0;
  // How the bot fakes pointer telemetry when the site collects it.
  PointerMode pointer = PointerMode::Scripted;
};

struct SeatSpinStats {
  BotCounters counters;
  std::uint64_t holds_attempted = 0;
  std::uint64_t holds_succeeded = 0;
  std::uint64_t reholds_after_expiry = 0;
  int peak_seats_held = 0;
  int current_nip = 0;
  sim::SimTime stopped_at = -1;  // -1 while running
  std::uint64_t nip_cap_rejections = 0;
};

class SeatSpinBot {
 public:
  SeatSpinBot(app::Application& application, app::ActorRegistry& actors, net::ProxyPool& proxies,
              const fp::PopulationModel& population, SeatSpinConfig config, sim::Rng rng);

  void start();

  [[nodiscard]] const SeatSpinStats& stats() const { return stats_; }
  [[nodiscard]] web::ActorId actor() const { return actor_; }
  [[nodiscard]] const EvasionStack& evasion() const { return stack_; }
  // Seats currently held by live (unexpired) holds of this bot.
  [[nodiscard]] int seats_held(sim::SimTime now) const;

 private:
  void tick();
  void schedule_tick(bool backoff);
  void attempt_hold(int remaining);

  app::Application& app_;
  SeatSpinConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  EvasionStack stack_;
  IdentityGenerator identities_;
  biometrics::MouseTrajectory recorded_;  // the ReplayedHuman source sample
  SeatSpinStats stats_;

  struct ActiveHold {
    std::string pnr;
    sim::SimTime expiry;
    int nip;
  };
  std::vector<ActiveHold> holds_;
};

}  // namespace fraudsim::attack
