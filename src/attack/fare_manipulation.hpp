// Dynamic-pricing manipulation through inventory holds (paper §II-A):
// "attackers strategically hold reservations and items at lower fares
// without an investment to force price drops before making a legitimate
// purchase."
//
// Three phases:
//   1. suppress — hold a large share of the cabin on repeat, for free;
//      revenue management sees a "booked" flight and nobody else buys
//   2. release  — stop re-holding shortly before departure; the holds lapse
//      and the flight suddenly looks empty days before take-off
//   3. buy      — purchase real tickets at the distressed-inventory price
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/bot_base.hpp"
#include "attack/identity_gen.hpp"

namespace fraudsim::attack {

struct FareManipulationConfig {
  airline::FlightId target;
  // Seats kept held during suppression (fraction of capacity).
  double suppress_fraction = 0.7;
  int hold_nip = 2;                       // normal-looking party sizes
  sim::SimDuration release_before_departure = sim::days(2);
  // How long after release to wait before buying (own holds must lapse).
  sim::SimDuration buy_delay_after_release = sim::hours(5);
  int tickets_to_buy = 10;
  IdentityGenConfig identity{IdentityRegime::PlausibleRandom, 6, 0.0, 8};
  fp::RotationConfig rotation;
  CaptchaSolverConfig solver;
  sim::SimDuration check_interval = sim::minutes(4);
};

struct FareManipulationStats {
  BotCounters counters;
  std::uint64_t suppression_holds = 0;
  int peak_seats_held = 0;
  std::optional<util::Money> quote_during_suppression;  // what others faced
  std::optional<util::Money> quote_at_buy;              // what the ring paid
  util::Money total_paid;
  int tickets_bought = 0;
  sim::SimTime released_at = -1;
  sim::SimTime bought_at = -1;
};

class FareManipulationBot {
 public:
  FareManipulationBot(app::Application& application, app::ActorRegistry& actors,
                      net::ProxyPool& proxies, const fp::PopulationModel& population,
                      FareManipulationConfig config, sim::Rng rng);

  void start();

  [[nodiscard]] const FareManipulationStats& stats() const { return stats_; }
  [[nodiscard]] web::ActorId actor() const { return actor_; }

 private:
  void suppress_tick();
  void buy();
  [[nodiscard]] int seats_held(sim::SimTime now) const;

  app::Application& app_;
  FareManipulationConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  EvasionStack stack_;
  IdentityGenerator identities_;
  biometrics::MouseTrajectory recorded_;
  struct ActiveHold {
    std::string pnr;
    sim::SimTime expiry;
    int nip;
  };
  std::vector<ActiveHold> holds_;
  FareManipulationStats stats_;
};

}  // namespace fraudsim::attack
