// Manual Seat Spinning (paper §IV-B, Airline C, Dec 2024).
//
// A human attacker holding seats on an upcoming flight to secure preferred
// seating: the same small set of real passenger names reused in different
// orders, occasional hand-typed misspellings, a broad range of (VPN) IP
// addresses — but a real browser with no automation artifacts, human think
// times, and low volume. Bot-detection alerts stay silent; only the
// identity-pattern detectors catch it.
#pragma once

#include <string>
#include <vector>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "attack/identity_gen.hpp"
#include "biometrics/features.hpp"
#include "fingerprint/population.hpp"
#include "net/proxy.hpp"

namespace fraudsim::attack {

struct ManualSpinnerConfig {
  airline::FlightId target;
  double sessions_per_day = 8.0;   // "unusually high number of seat holdings"
  int min_nip = 1;
  int max_nip = 3;
  IdentityGenConfig identity{IdentityRegime::PermutedFixedSet, 5, 0.10, 8};
  double p_solve_captcha = 0.97;   // humans pass challenges
  sim::SimDuration stop_before_departure = sim::hours(6);
};

struct ManualSpinnerStats {
  std::uint64_t sessions = 0;
  std::uint64_t holds_attempted = 0;
  std::uint64_t holds_succeeded = 0;
  std::uint64_t blocked = 0;
  std::uint64_t challenged = 0;
  sim::SimTime stopped_at = -1;
};

class ManualSpinner {
 public:
  ManualSpinner(app::Application& application, app::ActorRegistry& actors,
                net::ProxyPool& proxies, const fp::PopulationModel& population,
                ManualSpinnerConfig config, sim::Rng rng);

  void start();

  [[nodiscard]] const ManualSpinnerStats& stats() const { return stats_; }
  [[nodiscard]] web::ActorId actor() const { return actor_; }

 private:
  void schedule_next_session();
  void run_session();

  app::Application& app_;
  net::ProxyPool& proxies_;
  ManualSpinnerConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  IdentityGenerator identities_;
  // The attacker's real device: one persistent fingerprint (maybe a second
  // device), no automation artifacts.
  std::vector<fp::Fingerprint> devices_;
  ManualSpinnerStats stats_;
  std::uint64_t session_seq_ = 1;
};

}  // namespace fraudsim::attack
