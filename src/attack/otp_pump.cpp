#include "attack/otp_pump.hpp"

#include <algorithm>

namespace fraudsim::attack {

OtpPumpBot::OtpPumpBot(app::Application& application, app::ActorRegistry& actors,
                       net::ProxyPool& proxies, const fp::PopulationModel& population,
                       const sms::TariffTable& tariffs, OtpPumpConfig config, sim::Rng rng)
    : app_(application),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::SmsPumpBot)),
      stack_(population, proxies, config.rotation, rng_.fork("evasion"), actor_),
      numbers_(rng_.fork("numbers")),
      plan_(build_destination_plan(tariffs, config.target_country_count)) {
  auto capture_rng = rng_.fork("pointer-capture");
  recorded_ = biometrics::human_trajectory(capture_rng, biometrics::TrajectoryTarget{});
  for (const auto country : plan_.countries) {
    pools_[country] = numbers_.build_pool(country, config_.numbers_per_country);
  }
}

void OtpPumpBot::start() {
  app_.simulation().schedule_in(0, [this] { pump(); });
}

void OtpPumpBot::pump() {
  const sim::SimTime now = app_.simulation().now();
  if (config_.stop_at > 0 && now >= config_.stop_at) {
    stats_.stopped_at = now;
    return;
  }
  if (consecutive_failures_ >= config_.give_up_after_failures) {
    stats_.gave_up = true;
    stats_.stopped_at = now;
    return;
  }

  const auto country = plan_.countries[rng_.weighted_index(plan_.weights)];
  const auto& pool = pools_[country];
  const auto& number = pool[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];

  auto ctx = stack_.context(now, country);
  attach_pointer(ctx, rng_, config_.pointer, recorded_);
  // A fresh "account" per burst: the login page does not verify the account
  // exists before offering to send the OTP.
  const std::string account = "ghost" + std::to_string(account_seq_++);
  ++stats_.requests;
  const auto status = with_captcha_solver(
      [&] { return app_.request_otp(ctx, account, number).status; }, config_.solver, rng_, ctx,
      stats_.counters);

  if (status == app::CallStatus::Ok) {
    ++stats_.otp_sent;
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
    if (status == app::CallStatus::Blocked) stack_.note_blocked(now);
  }

  const auto gap = std::max<sim::SimDuration>(
      sim::kSecond, static_cast<sim::SimDuration>(
                        rng_.exponential(static_cast<double>(config_.mean_request_gap))));
  app_.simulation().schedule_in(gap, [this] { pump(); });
}

}  // namespace fraudsim::attack
