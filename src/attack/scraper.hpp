// Web scraper bot — the "simple" functional abuse the paper contrasts
// against (§I, §III-A). High request volume, deep search crawling, machine
// pacing; naive variants carry automation artifacts and fall into trap URLs.
// Behaviour-based detectors catch this easily — which is exactly the contrast
// bench/exp_detection_comparison draws against low-volume DoI bots.
#pragma once

#include "app/actors.hpp"
#include "app/application.hpp"
#include "fingerprint/population.hpp"
#include "net/proxy.hpp"
#include "sim/rng.hpp"

namespace fraudsim::attack {

struct ScraperConfig {
  int requests_per_session = 300;
  double mean_gap_seconds = 1.5;   // machine pacing
  bool naive = true;               // webdriver artifacts + trap-file hits
  double trap_hit_prob = 0.02;     // per request, naive only
  int sessions = 4;
  sim::SimDuration session_gap = sim::hours(3);
};

struct ScraperStats {
  std::uint64_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t blocked = 0;
};

class ScraperBot {
 public:
  ScraperBot(app::Application& application, app::ActorRegistry& actors, net::ProxyPool& proxies,
             const fp::PopulationModel& population, ScraperConfig config, sim::Rng rng);

  void start();

  [[nodiscard]] const ScraperStats& stats() const { return stats_; }
  [[nodiscard]] web::ActorId actor() const { return actor_; }

 private:
  void run_session(int remaining_sessions);

  app::Application& app_;
  net::ProxyPool& proxies_;
  const fp::PopulationModel& population_;
  ScraperConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  ScraperStats stats_;
  std::uint64_t session_seq_ = 1;
};

}  // namespace fraudsim::attack
