#include "attack/sms_pump.hpp"

#include <algorithm>

namespace fraudsim::attack {

SmsPumpBot::SmsPumpBot(app::Application& application, app::ActorRegistry& actors,
                       net::ProxyPool& proxies, const fp::PopulationModel& population,
                       const sms::TariffTable& tariffs, SmsPumpConfig config, sim::Rng rng)
    : app_(application),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::SmsPumpBot)),
      stack_(population, proxies, config.rotation, rng_.fork("evasion"), actor_),
      identities_(IdentityGenConfig{IdentityRegime::PlausibleRandom, 6, 0.0, 8},
                  rng_.fork("identities")),
      numbers_(rng_.fork("numbers")) {
  auto capture_rng = rng_.fork("pointer-capture");
  recorded_ = biometrics::human_trajectory(capture_rng, biometrics::TrajectoryTarget{});
  // Destination list: the ring's number inventory is concentrated where the
  // kickback per SMS is highest (the colluding premium routes), with a tail
  // across the biggest ordinary markets — where mobile numbers are simply
  // plentiful (§IV-C: "destinations based on the larger availability ... of
  // mobile numbers to exploit and/or the potential for higher revenue").
  auto plan = build_destination_plan(tariffs, config_.target_country_count);
  countries_ = std::move(plan.countries);
  country_weights_ = std::move(plan.weights);
  for (const auto country : countries_) {
    pools_[country] = numbers_.build_pool(country, config_.numbers_per_country);
  }
}

void SmsPumpBot::start() {
  app_.simulation().schedule_in(0, [this] { buy_tickets(); });
}

void SmsPumpBot::buy_tickets() {
  const sim::SimTime now = app_.simulation().now();
  const auto flights = app_.inventory().flights();
  if (flights.empty()) return;
  for (int i = 0; i < config_.tickets_to_buy; ++i) {
    auto ctx = stack_.context(now);
    attach_pointer(ctx, rng_, config_.pointer, recorded_);
    // Fabricated but plausible passenger; one per ticket.
    auto party = identities_.make_party(1);
    const auto flight = flights[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(flights.size()) - 1))];
    app::HoldResult hold;
    auto status = with_captcha_solver(
        [&] {
          hold = app_.hold(ctx, flight, party);
          return hold.status;
        },
        config_.solver, rng_, ctx, stats_.counters);
    if (status != app::CallStatus::Ok) continue;
    // Pay with a stolen card (from the app's perspective the payment clears).
    status = with_captcha_solver([&] { return app_.pay(ctx, hold.pnr); }, config_.solver, rng_,
                                 ctx, stats_.counters);
    if (status == app::CallStatus::Ok) {
      pnrs_.push_back(hold.pnr);
      ++stats_.tickets_bought;
    }
  }
  if (pnrs_.empty()) {
    stats_.gave_up = true;
    stats_.stopped_at = now;
    return;
  }
  app_.simulation().schedule_in(sim::minutes(5), [this] { pump(); });
}

net::CountryCode SmsPumpBot::pick_country() {
  return countries_[rng_.weighted_index(country_weights_)];
}

void SmsPumpBot::pump() {
  const sim::SimTime now = app_.simulation().now();
  if (config_.stop_at > 0 && now >= config_.stop_at) {
    stats_.stopped_at = now;
    return;
  }
  if (consecutive_failures_ >= config_.give_up_after_failures) {
    stats_.gave_up = true;
    stats_.stopped_at = now;
    return;
  }

  const auto country = pick_country();
  const auto& pool = pools_[country];
  const auto& number = pool[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  const auto& pnr = pnrs_[next_pnr_++ % pnrs_.size()];

  // Exit through a residential proxy in the destination's country so the
  // request geography matches the number (§IV-C).
  auto ctx = stack_.context(now, country);
  attach_pointer(ctx, rng_, config_.pointer, recorded_);
  ++stats_.pump_requests;
  app::BoardingSmsResult result;
  const auto status = with_captcha_solver(
      [&] {
        result = app_.request_boarding_sms(ctx, pnr, number);
        return result.status;
      },
      config_.solver, rng_, ctx, stats_.counters);

  if (status == app::CallStatus::Ok) {
    ++stats_.sms_delivered;
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
    if (status == app::CallStatus::Blocked) {
      stack_.note_blocked(now);
    }
    if (status == app::CallStatus::BusinessReject &&
        result.detail == airline::BoardingPassService::SmsResult::FeatureDisabled) {
      ++stats_.feature_disabled_hits;
    }
  }

  const auto gap = std::max<sim::SimDuration>(
      sim::kSecond, static_cast<sim::SimDuration>(
                        rng_.exponential(static_cast<double>(config_.mean_request_gap))));
  app_.simulation().schedule_in(gap, [this] { pump(); });
}

}  // namespace fraudsim::attack
