#include "attack/seat_spin.hpp"

#include <algorithm>

namespace fraudsim::attack {

SeatSpinBot::SeatSpinBot(app::Application& application, app::ActorRegistry& actors,
                         net::ProxyPool& proxies, const fp::PopulationModel& population,
                         SeatSpinConfig config, sim::Rng rng)
    : app_(application),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::SeatSpinBot)),
      stack_(population, proxies, config.rotation, rng_.fork("evasion"), actor_),
      identities_(config.identity, rng_.fork("identities")) {
  stats_.current_nip = config_.initial_nip;
  // One captured human session feeds the ReplayedHuman pointer mode.
  auto capture_rng = rng_.fork("pointer-capture");
  recorded_ = biometrics::human_trajectory(capture_rng, biometrics::TrajectoryTarget{});
}

void SeatSpinBot::start() {
  app_.simulation().schedule_in(0, [this] { tick(); });
}

int SeatSpinBot::seats_held(sim::SimTime now) const {
  int seats = 0;
  for (const auto& h : holds_) {
    if (h.expiry > now) seats += h.nip;
  }
  return seats;
}

void SeatSpinBot::tick() {
  const sim::SimTime now = app_.simulation().now();
  const airline::Flight* flight = app_.inventory().flight(config_.target);
  if (flight == nullptr) return;

  // Reconnaissance told the operator the departure time; activity stops well
  // before it (holds past departure earn nothing and risk attention).
  if (now >= flight->departure - config_.stop_before_departure) {
    stats_.stopped_at = now;
    return;
  }

  // Drop expired holds from our books.
  const std::size_t before = holds_.size();
  holds_.erase(std::remove_if(holds_.begin(), holds_.end(),
                              [now](const ActiveHold& h) { return h.expiry <= now; }),
               holds_.end());
  stats_.reholds_after_expiry += before - holds_.size();

  if (app_.inventory().available_seats(config_.target) > 0) {
    // Open a human-looking trail (a real user checks the seat map, reads it,
    // then books), then place holds one by one with human-scale gaps.
    auto ctx = stack_.context(now);
    app_.browse(ctx, web::Endpoint::SeatMap);
    const auto read_time = static_cast<sim::SimDuration>(rng_.uniform(6.0, 25.0) * sim::kSecond);
    const int budget = config_.max_holds_per_tick;
    app_.simulation().schedule_in(read_time, [this, budget] { attempt_hold(budget); });
    return;
  }
  schedule_tick(/*backoff=*/false);
}

void SeatSpinBot::schedule_tick(bool backoff) {
  // Re-check cadence: short enough to re-hold promptly after expiry, with
  // jitter so the cadence itself is not a trivial signature. After a block,
  // wait for the rotation to land instead of hammering.
  sim::SimDuration delay = config_.check_interval +
                           static_cast<sim::SimDuration>(rng_.uniform(0.0, 1.0) *
                                                         static_cast<double>(sim::kMinute));
  if (backoff) delay = std::max<sim::SimDuration>(delay, sim::minutes(10));
  app_.simulation().schedule_in(delay, [this] { tick(); });
}

void SeatSpinBot::attempt_hold(int remaining) {
  const sim::SimTime now = app_.simulation().now();
  if (remaining <= 0) {
    schedule_tick(false);
    return;
  }
  const int available = app_.inventory().available_seats(config_.target);
  if (available <= 0) {
    schedule_tick(false);  // mission accomplished for this window
    return;
  }
  if (config_.max_concurrent_seats > 0 &&
      seats_held(now) >= config_.max_concurrent_seats) {
    schedule_tick(false);  // seat budget reached; stay low
    return;
  }
  int nip = stats_.current_nip;
  if (config_.fill_remainder) nip = std::min(nip, available);
  if (nip <= 0) {
    schedule_tick(false);
    return;
  }

  auto ctx = stack_.context(now);
  attach_pointer(ctx, rng_, config_.pointer, recorded_);
  auto party = identities_.make_party(nip);
  ++stats_.holds_attempted;

  app::HoldResult result;
  const auto status = with_captcha_solver(
      [&] {
        result = app_.hold(ctx, config_.target, party);
        return result.status;
      },
      config_.solver, rng_, ctx, stats_.counters);

  // Human-scale pause before the next action (form filling takes time).
  const auto gap = static_cast<sim::SimDuration>(rng_.uniform(10.0, 45.0) * sim::kSecond);

  switch (status) {
    case app::CallStatus::Ok:
      ++stats_.holds_succeeded;
      holds_.push_back(ActiveHold{result.pnr, now + app_.inventory().hold_duration(), nip});
      stats_.peak_seats_held = std::max(stats_.peak_seats_held, seats_held(now));
      app_.simulation().schedule_in(gap, [this, remaining] { attempt_hold(remaining - 1); });
      return;
    case app::CallStatus::Blocked:
      // The anti-bot stack caught this identity; rotate (mean 5.3 h) and
      // idle until the rotation completes.
      stack_.note_blocked(now);
      schedule_tick(/*backoff=*/true);
      return;
    case app::CallStatus::RateLimited:
    case app::CallStatus::Challenged:  // solve failed; try again later
    case app::CallStatus::Overloaded:  // shed at the door; the site is slow
      schedule_tick(/*backoff=*/true);
      return;
    case app::CallStatus::BusinessReject:
      if (result.rejection &&
          result.rejection->reason == airline::HoldRejection::Reason::NipCapExceeded) {
        ++stats_.nip_cap_rejections;
        if (config_.adapt_to_cap) {
          // Shift strategy to the newly-imposed cap and keep going (§IV-A:
          // "attackers adapted their strategy and persisted").
          stats_.current_nip = std::max(1, app_.inventory().max_nip());
          app_.simulation().schedule_in(gap, [this, remaining] { attempt_hold(remaining); });
          return;
        }
      }
      schedule_tick(false);  // no availability or other business rejection
      return;
  }
}

}  // namespace fraudsim::attack
