#include "attack/identity_gen.hpp"

#include <algorithm>

#include "workload/names.hpp"

namespace fraudsim::attack {

const char* to_string(IdentityRegime r) {
  switch (r) {
    case IdentityRegime::PlausibleRandom:
      return "plausible-random";
    case IdentityRegime::Gibberish:
      return "gibberish";
    case IdentityRegime::FixedNameRotatingBirthdate:
      return "fixed-name-rotating-birthdate";
    case IdentityRegime::PermutedFixedSet:
      return "permuted-fixed-set";
  }
  return "?";
}

IdentityGenerator::IdentityGenerator(IdentityGenConfig config, sim::Rng rng)
    : config_(config), rng_(std::move(rng)) {
  // Pre-build persistent state for the stateful regimes.
  lead_ = workload::random_passenger(rng_);
  for (int i = 0; i < config_.companion_pool_size; ++i) {
    companions_.push_back(workload::random_passenger(rng_));
  }
  for (int i = 0; i < config_.fixed_set_size; ++i) {
    fixed_set_.push_back(workload::random_passenger(rng_));
  }
}

namespace {

// Keyboard-mash strings like the paper's "affjgdui"/"ddfjrei": consonant-
// heavy, occasionally doubled, structurally unlike natural names.
std::string keyboard_mash(sim::Rng& rng, std::size_t length) {
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxz";
  static constexpr char kVowels[] = "aeiou";
  std::string s;
  s.reserve(length);
  while (s.size() < length) {
    const char c = rng.bernoulli(0.82)
                       ? kConsonants[static_cast<std::size_t>(rng.uniform_int(0, 19))]
                       : kVowels[static_cast<std::size_t>(rng.uniform_int(0, 4))];
    s.push_back(c);
    if (rng.bernoulli(0.18) && s.size() < length) s.push_back(c);  // "dd", "ff"
  }
  return s;
}

}  // namespace

airline::Passenger IdentityGenerator::gibberish_passenger() {
  airline::Passenger p;
  p.first_name = keyboard_mash(rng_, static_cast<std::size_t>(rng_.uniform_int(6, 9)));
  p.surname = keyboard_mash(rng_, static_cast<std::size_t>(rng_.uniform_int(6, 9)));
  p.birthdate = airline::random_birthdate(rng_);
  p.email = p.surname + "@mailbox.example";
  return p;
}

std::vector<airline::Passenger> IdentityGenerator::make_party(int nip) {
  std::vector<airline::Passenger> party;
  party.reserve(static_cast<std::size_t>(std::max(nip, 0)));
  switch (config_.regime) {
    case IdentityRegime::PlausibleRandom: {
      for (int i = 0; i < nip; ++i) party.push_back(workload::random_passenger(rng_));
      break;
    }
    case IdentityRegime::Gibberish: {
      for (int i = 0; i < nip; ++i) party.push_back(gibberish_passenger());
      break;
    }
    case IdentityRegime::FixedNameRotatingBirthdate: {
      // First passenger: fixed name+surname, birthdate stepped systematically
      // (day advancing by one per reservation — the Airline B signature).
      airline::Passenger lead = lead_;
      ++birthdate_step_;
      lead.birthdate.day = 1 + (lead.birthdate.day - 1 + birthdate_step_) %
                                   airline::days_in_month(lead.birthdate.year,
                                                          lead.birthdate.month);
      party.push_back(lead);
      // Companions: overlapping name-surname combos, varying birthdates.
      for (int i = 1; i < nip; ++i) {
        airline::Passenger c = companions_[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(companions_.size()) - 1))];
        c.birthdate = airline::random_birthdate(rng_);
        party.push_back(std::move(c));
      }
      break;
    }
    case IdentityRegime::PermutedFixedSet: {
      // Same people, different order; occasional manual typos.
      std::vector<std::size_t> order(fixed_set_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng_.shuffle(order.begin(), order.end());
      for (int i = 0; i < nip && i < static_cast<int>(order.size()); ++i) {
        airline::Passenger p = fixed_set_[order[static_cast<std::size_t>(i)]];
        if (rng_.bernoulli(config_.misspell_prob)) {
          p.first_name = workload::misspell(rng_, p.first_name);
        }
        if (rng_.bernoulli(config_.misspell_prob)) {
          p.surname = workload::misspell(rng_, p.surname);
        }
        party.push_back(std::move(p));
      }
      // A fixed set smaller than the party repeats members (the flaw that
      // allowed duplicate names in §IV-B).
      while (static_cast<int>(party.size()) < nip) {
        party.push_back(fixed_set_[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(fixed_set_.size()) - 1))]);
      }
      break;
    }
  }
  return party;
}

}  // namespace fraudsim::attack
