// Classic OTP-based SMS pumping (paper §II-B, §IV-C intro: "SMS Pumping
// attacks typically target OTP services, which are ... easily accessible,
// since they are often required during login").
//
// Unlike the advanced boarding-pass variant, this needs no account, no
// payment and no PNR: every login attempt can trigger an OTP send. The
// natural mitigation is an ad-hoc rate limit on the OTP path plus a
// challenge layer — both modelled in core/mitigate.
#pragma once

#include <unordered_map>
#include <vector>

#include "attack/bot_base.hpp"

namespace fraudsim::attack {

struct OtpPumpConfig {
  int target_country_count = 42;
  sim::SimDuration mean_request_gap = sim::seconds(20);
  std::size_t numbers_per_country = 250;
  fp::RotationConfig rotation;
  CaptchaSolverConfig solver;
  int give_up_after_failures = 40;
  sim::SimTime stop_at = 0;  // 0 = run until stopped or given up
  PointerMode pointer = PointerMode::Scripted;
};

struct OtpPumpStats {
  BotCounters counters;
  std::uint64_t requests = 0;
  std::uint64_t otp_sent = 0;
  sim::SimTime stopped_at = -1;
  bool gave_up = false;
};

class OtpPumpBot {
 public:
  OtpPumpBot(app::Application& application, app::ActorRegistry& actors, net::ProxyPool& proxies,
             const fp::PopulationModel& population, const sms::TariffTable& tariffs,
             OtpPumpConfig config, sim::Rng rng);

  void start();

  [[nodiscard]] const OtpPumpStats& stats() const { return stats_; }
  [[nodiscard]] web::ActorId actor() const { return actor_; }

 private:
  void pump();

  app::Application& app_;
  OtpPumpConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  EvasionStack stack_;
  sms::NumberGenerator numbers_;
  DestinationPlan plan_;
  biometrics::MouseTrajectory recorded_;
  std::unordered_map<net::CountryCode, std::vector<sms::PhoneNumber>> pools_;
  int consecutive_failures_ = 0;
  std::uint64_t account_seq_ = 0;
  OtpPumpStats stats_;
};

}  // namespace fraudsim::attack
