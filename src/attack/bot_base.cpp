#include "attack/bot_base.hpp"

#include <algorithm>

#include "biometrics/features.hpp"

namespace fraudsim::attack {

void attach_pointer(app::ClientContext& ctx, sim::Rng& rng, PointerMode mode,
                    const biometrics::MouseTrajectory& recorded) {
  switch (mode) {
    case PointerMode::None:
      ctx.pointer_biometrics.reset();
      return;
    case PointerMode::Scripted: {
      const biometrics::TrajectoryTarget target{rng.uniform(50, 400), rng.uniform(200, 700),
                                                rng.uniform(500, 1200), rng.uniform(100, 600)};
      ctx.pointer_biometrics = biometrics::extract(biometrics::scripted_trajectory(rng, target));
      return;
    }
    case PointerMode::ReplayedHuman: {
      // Small offsets shift the geometry but not its shape; the quantised
      // digest still collides across replays.
      const auto replay = biometrics::replay_trajectory(recorded, rng.uniform(-0.4, 0.4),
                                                        rng.uniform(-0.4, 0.4));
      ctx.pointer_biometrics = biometrics::extract(replay);
      return;
    }
  }
}

DestinationPlan build_destination_plan(const sms::TariffTable& tariffs, int country_count,
                                       double tail_total_weight) {
  DestinationPlan plan;
  for (const auto country : tariffs.by_attacker_revenue()) {
    if (static_cast<int>(plan.countries.size()) >= country_count) break;
    const double revenue = tariffs.attacker_revenue_per_sms(country).to_double();
    if (revenue <= 0.0) break;  // ranked list: premium routes come first
    plan.countries.push_back(country);
    plan.weights.push_back(revenue);
  }
  // Fill the rest with the largest markets by population weight (number
  // availability scales with market size).
  std::vector<const net::CountryInfo*> tail;
  for (const auto& info : net::world_countries()) {
    if (tariffs.attacker_revenue_per_sms(info.code) > util::Money{}) continue;
    tail.push_back(&info);
  }
  std::stable_sort(tail.begin(), tail.end(),
                   [](const net::CountryInfo* a, const net::CountryInfo* b) {
                     return a->population_weight > b->population_weight;
                   });
  double tail_pop = 0.0;
  std::vector<const net::CountryInfo*> chosen;
  for (const auto* info : tail) {
    if (static_cast<int>(plan.countries.size() + chosen.size()) >= country_count) break;
    chosen.push_back(info);
    tail_pop += info->population_weight;
  }
  for (const auto* info : chosen) {
    plan.countries.push_back(info->code);
    plan.weights.push_back(
        tail_pop > 0.0 ? tail_total_weight * info->population_weight / tail_pop
                       : tail_total_weight);
  }
  return plan;
}

EvasionStack::EvasionStack(const fp::PopulationModel& population, net::ProxyPool& proxies,
                           fp::RotationConfig rotation, sim::Rng rng, web::ActorId actor,
                           sim::SimDuration session_lifetime)
    : proxies_(proxies),
      identity_(rotation, population, rng.fork("identity")),
      rng_(std::move(rng)),
      actor_(actor),
      session_lifetime_(session_lifetime) {
  last_fp_ = identity_.current().hash();
}

app::ClientContext EvasionStack::context(sim::SimTime now,
                                         std::optional<net::CountryCode> country) {
  identity_.advance(now);
  const fp::FpHash fp_hash = identity_.current().hash();
  if (fp_hash != last_fp_) {
    // New fingerprint epoch: new session cookie too (a rotated bot does not
    // reuse the cookie that got it flagged).
    ++session_epoch_;
    session_started_ = now;
    last_fp_ = fp_hash;
  } else if (session_lifetime_ > 0 && now - session_started_ >= session_lifetime_) {
    // Routine cookie churn keeps per-session volume unremarkable.
    ++session_epoch_;
    session_started_ = now;
  }
  app::ClientContext ctx;
  const auto exit = proxies_.exit(rng_, country);
  ctx.ip = exit.ip;
  // Session ids are derived from (actor, epoch) so each rotation epoch looks
  // like a fresh visitor. High bits keep them from colliding with the legit
  // generator's small sequential ids.
  ctx.session = web::SessionId{(actor_.value() << 20) | session_epoch_};
  ctx.fingerprint = identity_.current();
  ctx.actor = actor_;
  return ctx;
}

sim::SimTime EvasionStack::note_blocked(sim::SimTime now) { return identity_.on_blocked(now); }

}  // namespace fraudsim::attack
