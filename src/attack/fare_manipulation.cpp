#include "attack/fare_manipulation.hpp"

#include <algorithm>

namespace fraudsim::attack {

FareManipulationBot::FareManipulationBot(app::Application& application,
                                         app::ActorRegistry& actors, net::ProxyPool& proxies,
                                         const fp::PopulationModel& population,
                                         FareManipulationConfig config, sim::Rng rng)
    : app_(application),
      config_(config),
      rng_(std::move(rng)),
      actor_(actors.register_actor(app::ActorKind::SeatSpinBot)),
      stack_(population, proxies, config.rotation, rng_.fork("evasion"), actor_),
      identities_(config.identity, rng_.fork("identities")) {
  auto capture_rng = rng_.fork("pointer-capture");
  recorded_ = biometrics::human_trajectory(capture_rng, biometrics::TrajectoryTarget{});
}

void FareManipulationBot::start() {
  app_.simulation().schedule_in(0, [this] { suppress_tick(); });
}

int FareManipulationBot::seats_held(sim::SimTime now) const {
  int seats = 0;
  for (const auto& h : holds_) {
    if (h.expiry > now) seats += h.nip;
  }
  return seats;
}

void FareManipulationBot::suppress_tick() {
  const sim::SimTime now = app_.simulation().now();
  const airline::Flight* flight = app_.inventory().flight(config_.target);
  if (flight == nullptr) return;

  // Phase transition: stop re-holding and let everything lapse.
  if (now >= flight->departure - config_.release_before_departure) {
    stats_.released_at = now;
    app_.simulation().schedule_in(config_.buy_delay_after_release, [this] { buy(); });
    return;
  }

  holds_.erase(std::remove_if(holds_.begin(), holds_.end(),
                              [now](const ActiveHold& h) { return h.expiry <= now; }),
               holds_.end());

  const int budget =
      static_cast<int>(config_.suppress_fraction * static_cast<double>(flight->capacity));
  int attempts = 0;
  while (seats_held(now) < budget && attempts < 10) {
    const int available = app_.inventory().available_seats(config_.target);
    if (available <= 0) break;
    const int nip = std::min(config_.hold_nip, available);
    auto ctx = stack_.context(now);
    attach_pointer(ctx, rng_, PointerMode::Scripted, recorded_);
    ++attempts;
    app::HoldResult result;
    const auto status = with_captcha_solver(
        [&] {
          result = app_.hold(ctx, config_.target, identities_.make_party(nip));
          return result.status;
        },
        config_.solver, rng_, ctx, stats_.counters);
    if (status == app::CallStatus::Ok) {
      ++stats_.suppression_holds;
      holds_.push_back(ActiveHold{result.pnr, now + app_.inventory().hold_duration(), nip});
      stats_.peak_seats_held = std::max(stats_.peak_seats_held, seats_held(now));
    } else if (status == app::CallStatus::Blocked) {
      stack_.note_blocked(now);
      break;
    } else {
      break;
    }
  }

  // Record what everyone else is being quoted while the cabin looks full.
  if (!stats_.quote_during_suppression && seats_held(now) >= budget / 2) {
    auto ctx = stack_.context(now);
    stats_.quote_during_suppression = app_.quote_fare(ctx, config_.target);
  }

  app_.simulation().schedule_in(
      config_.check_interval + static_cast<sim::SimDuration>(
                                   rng_.uniform(0.0, 60.0) * sim::kSecond),
      [this] { suppress_tick(); });
}

void FareManipulationBot::buy() {
  const sim::SimTime now = app_.simulation().now();
  auto ctx = stack_.context(now);
  stats_.quote_at_buy = app_.quote_fare(ctx, config_.target);
  for (int i = 0; i < config_.tickets_to_buy; ++i) {
    auto buy_ctx = stack_.context(app_.simulation().now());
    attach_pointer(buy_ctx, rng_, PointerMode::Scripted, recorded_);
    app::HoldResult hold;
    auto status = with_captcha_solver(
        [&] {
          hold = app_.hold(buy_ctx, config_.target, identities_.make_party(1));
          return hold.status;
        },
        config_.solver, rng_, buy_ctx, stats_.counters);
    if (status != app::CallStatus::Ok) continue;
    status = with_captcha_solver([&] { return app_.pay(buy_ctx, hold.pnr); }, config_.solver,
                                 rng_, buy_ctx, stats_.counters);
    if (status != app::CallStatus::Ok) continue;
    // Pays the going rate at the moment of each purchase.
    const auto quote = app_.quote_fare(buy_ctx, config_.target);
    stats_.total_paid += quote;
    ++stats_.tickets_bought;
  }
  stats_.bought_at = app_.simulation().now();
}

}  // namespace fraudsim::attack
