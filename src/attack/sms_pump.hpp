// Advanced SMS Pumping bot (paper §IV-C, Airline D, Dec 2022).
//
// Two phases:
//   1. Setup: purchase a handful of tickets with fabricated identities and
//      stolen cards — the "initial financial transaction" that puts the bot
//      behind the login+payment gateway.
//   2. Pump: repeatedly request boarding-pass delivery via SMS for those few
//      PNRs, to mobile numbers across ~42 countries weighted toward premium
//      high-revenue destinations, with the residential-proxy exit country
//      matched to each number and continuous fingerprint rotation.
//
// The bot stops on its own once the SMS feature is disabled (consecutive
// feature-disabled responses) — "the SMS option was then temporarily removed
// and the attack ceased."
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "attack/bot_base.hpp"
#include "attack/identity_gen.hpp"
#include "sms/tariff.hpp"

namespace fraudsim::attack {

struct SmsPumpConfig {
  int tickets_to_buy = 6;
  int target_country_count = 42;
  // Mean pause between pump requests (human-mimicking pacing).
  sim::SimDuration mean_request_gap = sim::seconds(45);
  // Numbers available to the ring per country (lists from colluding
  // operators).
  std::size_t numbers_per_country = 250;
  fp::RotationConfig rotation;  // periodic + reactive rotation
  CaptchaSolverConfig solver;
  // Give up after this many consecutive hard failures (feature disabled).
  int give_up_after_failures = 25;
  sim::SimTime stop_at = 0;  // hard stop (0 = run until stopped/failed)
  // §IV-C: the ring "mimicked human-like behaviors" — it replays captured
  // human pointer movement rather than synthesising obvious straight lines.
  PointerMode pointer = PointerMode::ReplayedHuman;
};

struct SmsPumpStats {
  BotCounters counters;
  std::uint64_t tickets_bought = 0;
  std::uint64_t pump_requests = 0;
  std::uint64_t sms_delivered = 0;
  std::uint64_t feature_disabled_hits = 0;
  sim::SimTime stopped_at = -1;
  bool gave_up = false;
};

class SmsPumpBot {
 public:
  SmsPumpBot(app::Application& application, app::ActorRegistry& actors, net::ProxyPool& proxies,
             const fp::PopulationModel& population, const sms::TariffTable& tariffs,
             SmsPumpConfig config, sim::Rng rng);

  void start();

  [[nodiscard]] const SmsPumpStats& stats() const { return stats_; }
  [[nodiscard]] web::ActorId actor() const { return actor_; }
  [[nodiscard]] const std::vector<net::CountryCode>& target_countries() const {
    return countries_;
  }

 private:
  void buy_tickets();
  void pump();
  [[nodiscard]] net::CountryCode pick_country();

  app::Application& app_;
  SmsPumpConfig config_;
  sim::Rng rng_;
  web::ActorId actor_;
  EvasionStack stack_;
  IdentityGenerator identities_;
  sms::NumberGenerator numbers_;
  std::vector<net::CountryCode> countries_;  // the ring's destination list
  std::vector<double> country_weights_;      // revenue-driven targeting
  std::unordered_map<net::CountryCode, std::vector<sms::PhoneNumber>> pools_;
  biometrics::MouseTrajectory recorded_;  // ReplayedHuman source sample
  std::vector<std::string> pnrs_;
  std::size_t next_pnr_ = 0;
  int consecutive_failures_ = 0;
  SmsPumpStats stats_;
};

}  // namespace fraudsim::attack
