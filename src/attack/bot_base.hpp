// Shared bot plumbing: evasion stack (proxies + rotating fingerprints),
// CAPTCHA-solving economics, and common counters.
#pragma once

#include <cstdint>
#include <memory>

#include "app/actors.hpp"
#include "app/application.hpp"
#include "biometrics/mouse.hpp"
#include "fingerprint/rotation.hpp"
#include "net/proxy.hpp"
#include "sim/rng.hpp"
#include "sms/tariff.hpp"

namespace fraudsim::attack {

// How a bot fakes the pointer-movement telemetry (when the site collects it).
enum class PointerMode : std::uint8_t {
  None,           // telemetry script bypassed (an absence that is itself a tell)
  Scripted,       // synthetic straight/teleport movement
  ReplayedHuman,  // a recorded human trajectory replayed with small offsets
};

// Attaches a pointer sample to the context according to the mode. `recorded`
// is the bot's captured human trajectory, used by ReplayedHuman.
void attach_pointer(app::ClientContext& ctx, sim::Rng& rng, PointerMode mode,
                    const biometrics::MouseTrajectory& recorded);

// A pumping ring's destination plan: premium kickback routes first (weighted
// by revenue per SMS), padded with the largest ordinary markets where mobile
// numbers are plentiful (§IV-C).
struct DestinationPlan {
  std::vector<net::CountryCode> countries;
  std::vector<double> weights;
};

[[nodiscard]] DestinationPlan build_destination_plan(const sms::TariffTable& tariffs,
                                                     int country_count,
                                                     double tail_total_weight = 0.06);

// Commercial CAPTCHA-solving service model (§V: challenges "add cost and
// complexity to automated attacks" even when solvable).
struct CaptchaSolverConfig {
  double success_prob = 0.92;
  sim::SimDuration mean_solve_time = sim::seconds(25);
  util::Money cost_per_solve = util::Money::from_double(0.003);  // ~$3/1000
};

struct BotCounters {
  std::uint64_t requests = 0;
  std::uint64_t blocked = 0;
  std::uint64_t challenged = 0;
  std::uint64_t captchas_attempted = 0;
  std::uint64_t captchas_solved = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t shed = 0;  // 503s from overload admission control
  util::Money captcha_spend;
  util::Money proxy_spend;
};

// The client identity a bot presents: a proxy exit IP + a rotating spoofed
// fingerprint + a fresh session cookie per rotation epoch.
class EvasionStack {
 public:
  // `session_lifetime`: bots discard their cookie jar regularly so no single
  // session accumulates a telltale request volume (the low-footprint tactic
  // of §II-A / §III-A).
  EvasionStack(const fp::PopulationModel& population, net::ProxyPool& proxies,
               fp::RotationConfig rotation, sim::Rng rng, web::ActorId actor,
               sim::SimDuration session_lifetime = sim::minutes(20));

  // Context for the next request at `now`, optionally pinning the exit
  // country (SMS pumping matches proxy country to the destination number).
  app::ClientContext context(sim::SimTime now,
                             std::optional<net::CountryCode> country = std::nullopt);

  // The platform refused us; schedule a fingerprint rotation (the ~5.3 h
  // reaction of §IV-A). Returns when the new fingerprint becomes active.
  sim::SimTime note_blocked(sim::SimTime now);

  [[nodiscard]] const fp::RotatingIdentity& identity() const { return identity_; }
  [[nodiscard]] util::Money proxy_spend() const { return proxies_.total_cost(); }

 private:
  net::ProxyPool& proxies_;
  fp::RotatingIdentity identity_;
  sim::Rng rng_;
  web::ActorId actor_;
  sim::SimDuration session_lifetime_;
  sim::SimTime session_started_ = 0;
  std::uint64_t session_epoch_ = 1;
  fp::FpHash last_fp_;
};

// Runs a policy-guarded call with CAPTCHA-solving on challenge. `Action` is
// retried once after a successful solve. Updates counters; the solve delay is
// modelled as money+probability only (bots parallelise waiting).
template <typename Action>
app::CallStatus with_captcha_solver(Action&& action, const CaptchaSolverConfig& solver,
                                    sim::Rng& rng, app::ClientContext& ctx,
                                    BotCounters& counters) {
  app::CallStatus status = action();
  ++counters.requests;
  if (status != app::CallStatus::Challenged) {
    if (status == app::CallStatus::Blocked) ++counters.blocked;
    if (status == app::CallStatus::RateLimited) ++counters.rate_limited;
    if (status == app::CallStatus::Overloaded) ++counters.shed;
    return status;
  }
  ++counters.challenged;
  ++counters.captchas_attempted;
  counters.captcha_spend += solver.cost_per_solve;
  if (!rng.bernoulli(solver.success_prob)) return status;
  ++counters.captchas_solved;
  ctx.captcha_solved = true;
  status = action();
  ++counters.requests;
  ctx.captcha_solved = false;
  if (status == app::CallStatus::Blocked) ++counters.blocked;
  if (status == app::CallStatus::RateLimited) ++counters.rate_limited;
  if (status == app::CallStatus::Overloaded) ++counters.shed;
  return status;
}

}  // namespace fraudsim::attack
